//! Seeded fault injection for schedule replay.
//!
//! The paper's simulator assumes execution times are exact and processors
//! never fail; real clusters exhibit stragglers, crashed tasks and node
//! failures. This module makes those first-class, deterministically:
//!
//! * [`FaultSpec`] — the user-facing fault description, parsed from a
//!   `key=value,...` string (see [`FaultSpec::parse`] for the grammar),
//! * [`FaultPlan`] — one concrete, seeded realization of a spec for one
//!   trial: a perturbation factor per task, a bounded crash list per task
//!   and an optional failure time per processor. Same spec + seed + trial
//!   ⇒ same plan, always,
//! * [`execute_with_faults`] — a dynamic re-simulation of a schedule under
//!   a plan: tasks keep their planned processors but start when their
//!   predecessors and processors actually allow it, crashed attempts retry
//!   after exponential backoff, and a processor failure triggers the
//!   [`sched::Rescheduler`] over the unfinished remainder of the graph on
//!   the surviving processors,
//! * [`fault_trials`] / [`FaultSummary`] — the makespan-degradation
//!   distribution (mean/p95/worst vs fault-free) over N independent trials.
//!
//! Under the *empty* plan the re-simulation provably reproduces the input
//! schedule bit-for-bit: every duration is re-read from the same
//! [`TimeMatrix`] the mapper used, the perturbation factor is exactly
//! `1.0`, and each start time is the IEEE-exact `max` of predecessor
//! finishes and processor releases — the same expression the mapper
//! evaluated. The property tests in `tests/prop_faults.rs` hold this
//! guarantee against random DAGGEN graphs.

use crate::event::EventKind;
use exec_model::TimeMatrix;
use obs::{NoopRecorder, Recorder};
use ptg::{Ptg, TaskId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, Rescheduler, ResumeState, RunningTask, Schedule};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Upper bound on `retries=` — beyond this the exponential backoff horizon
/// dwarfs any schedule and almost certainly indicates a typo.
pub const MAX_RETRIES: u32 = 16;

/// A parse or validation error in a fault specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// An item was not of the form `key=value`.
    BadPair(String),
    /// The key is not part of the grammar.
    UnknownKey(String),
    /// The value failed to parse or is out of range for its key.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::BadPair(item) => {
                write!(f, "fault spec item {item:?} is not of the form key=value")
            }
            FaultSpecError::UnknownKey(key) => write!(
                f,
                "unknown fault spec key {key:?} (known: seed, perturb, straggler_prob, \
                 straggler_factor, crash, retries, backoff, procfail)"
            ),
            FaultSpecError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "fault spec {key}={value}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A user-facing fault description; one spec drives many seeded trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Base RNG seed; trial `i` uses a stream derived from `(seed, i)`.
    pub seed: u64,
    /// Multiplicative execution-time noise: each task's duration is scaled
    /// by a factor drawn uniformly from `[1, 1 + perturb]`.
    pub perturb: f64,
    /// Probability that a task is a straggler (its factor is additionally
    /// multiplied by `straggler_factor`).
    pub straggler_prob: f64,
    /// Slowdown factor applied to stragglers (≥ 1).
    pub straggler_factor: f64,
    /// Per-attempt crash probability: each attempt of a task crashes with
    /// this probability at a uniform progress point, up to `retries` times.
    pub crash: f64,
    /// Retry budget per task. Attempt `retries` (0-based) never crashes,
    /// so every run completes — that is what *bounded* retry buys.
    pub retries: u32,
    /// Backoff before retry `k` (0-based crashed attempt): `backoff · 2^k`
    /// seconds.
    pub backoff: f64,
    /// Per-processor probability of permanent failure at a uniform time
    /// within the fault-free makespan. At least one processor always
    /// survives (see [`FaultPlan::realize`]).
    pub procfail: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            perturb: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 3.0,
            crash: 0.0,
            retries: 3,
            backoff: 0.0,
            procfail: 0.0,
        }
    }
}

impl FaultSpec {
    /// Parses a `key=value,...` spec. Grammar (all items optional, any
    /// order): `seed=<u64>`, `perturb=<f64 ≥ 0>`, `straggler_prob=<prob>`,
    /// `straggler_factor=<f64 ≥ 1>`, `crash=<prob>`, `retries=<0..=16>`,
    /// `backoff=<f64 ≥ 0>`, `procfail=<prob>`. The empty string is the
    /// fault-free spec.
    pub fn parse(s: &str) -> Result<FaultSpec, FaultSpecError> {
        let mut spec = FaultSpec::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| FaultSpecError::BadPair(item.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |expected: &'static str| FaultSpecError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
                expected,
            };
            let prob = |field: &mut f64| -> Result<(), FaultSpecError> {
                *field = value
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| bad("a probability in [0, 1]"))?;
                Ok(())
            };
            match key {
                "seed" => {
                    spec.seed = value.parse().map_err(|_| bad("an unsigned integer"))?;
                }
                "perturb" => {
                    spec.perturb = value
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or_else(|| bad("a finite value ≥ 0"))?;
                }
                "straggler_prob" => prob(&mut spec.straggler_prob)?,
                "straggler_factor" => {
                    spec.straggler_factor = value
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 1.0)
                        .ok_or_else(|| bad("a finite value ≥ 1"))?;
                }
                "crash" => prob(&mut spec.crash)?,
                "retries" => {
                    spec.retries = value
                        .parse::<u32>()
                        .ok()
                        .filter(|r| *r <= MAX_RETRIES)
                        .ok_or_else(|| bad("an integer in 0..=16"))?;
                }
                "backoff" => {
                    spec.backoff = value
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or_else(|| bad("a finite value ≥ 0"))?;
                }
                "procfail" => prob(&mut spec.procfail)?,
                _ => return Err(FaultSpecError::UnknownKey(key.to_string())),
            }
        }
        Ok(spec)
    }

    /// Canonical `key=value,...` rendering; parses back to `self`.
    pub fn canonical(&self) -> String {
        format!(
            "seed={},perturb={},straggler_prob={},straggler_factor={},crash={},retries={},backoff={},procfail={}",
            self.seed,
            self.perturb,
            self.straggler_prob,
            self.straggler_factor,
            self.crash,
            self.retries,
            self.backoff,
            self.procfail
        )
    }

    /// True when no realization of this spec can inject any fault.
    pub fn is_fault_free(&self) -> bool {
        self.perturb == 0.0
            && self.straggler_prob == 0.0
            && self.crash == 0.0
            && self.procfail == 0.0
    }
}

/// One concrete, deterministic realization of a [`FaultSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Multiplicative duration factor per task (exactly `1.0` ⇒ no
    /// perturbation; multiplying by `1.0` is IEEE-exact).
    pub factors: Vec<f64>,
    /// Crash-progress points per task: attempt `k` (0-based) crashes at
    /// progress `crashes[v][k]` iff `k < crashes[v].len()`. Lists are
    /// bounded by the retry budget, so the attempt after the last listed
    /// crash always completes.
    pub crashes: Vec<Vec<f64>>,
    /// Backoff before retry `k`: `backoff_base · 2^k` seconds.
    pub backoff_base: f64,
    /// Permanent failure time per processor (`None` ⇒ the processor
    /// survives the whole run). Never all `Some`.
    pub proc_fail: Vec<Option<f64>>,
}

impl FaultPlan {
    /// The fault-free plan: unit factors, no crashes, no failures. Replay
    /// under this plan is bit-identical to the input schedule.
    pub fn empty(tasks: usize, processors: u32) -> FaultPlan {
        FaultPlan {
            factors: vec![1.0; tasks],
            crashes: vec![Vec::new(); tasks],
            backoff_base: 0.0,
            proc_fail: vec![None; processors as usize],
        }
    }

    /// Realizes `spec` for `trial` over `tasks` tasks and `processors`
    /// processors. `horizon` bounds processor-failure times (pass the
    /// fault-free makespan). Fully determined by
    /// `(spec, trial, tasks, processors, horizon)`.
    ///
    /// If every processor draws a failure, the one failing *last* is kept
    /// alive instead, so the rescheduler always has a survivor.
    pub fn realize(
        spec: &FaultSpec,
        trial: u64,
        tasks: usize,
        processors: u32,
        horizon: f64,
    ) -> FaultPlan {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "bad horizon {horizon}"
        );
        // Distinct, collision-free stream per (seed, trial).
        let mut rng =
            ChaCha8Rng::seed_from_u64(spec.seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut factors = Vec::with_capacity(tasks);
        for _ in 0..tasks {
            let mut f = if spec.perturb > 0.0 {
                1.0 + rng.gen_range(0.0..=spec.perturb)
            } else {
                1.0
            };
            if spec.straggler_prob > 0.0 && rng.gen_bool(spec.straggler_prob) {
                f *= spec.straggler_factor;
            }
            factors.push(f);
        }
        let mut crashes = vec![Vec::new(); tasks];
        if spec.crash > 0.0 {
            for list in &mut crashes {
                while (list.len() as u32) < spec.retries && rng.gen_bool(spec.crash) {
                    list.push(rng.gen_range(0.0..1.0));
                }
            }
        }
        let mut proc_fail = vec![None; processors as usize];
        if spec.procfail > 0.0 {
            for slot in &mut proc_fail {
                if rng.gen_bool(spec.procfail) {
                    *slot = Some(rng.gen_range(0.0..horizon));
                }
            }
            if proc_fail.iter().all(Option::is_some) {
                // Keep the processor that would fail last alive.
                let survivor = proc_fail
                    .iter()
                    .enumerate()
                    .max_by(|(qa, a), (qb, b)| {
                        a.unwrap()
                            .partial_cmp(&b.unwrap())
                            .expect("failure times are finite")
                            .then_with(|| qb.cmp(qa))
                    })
                    .map(|(q, _)| q)
                    .expect("at least one processor");
                proc_fail[survivor] = None;
            }
        }
        FaultPlan {
            factors,
            crashes,
            backoff_base: spec.backoff,
            proc_fail,
        }
    }

    /// True when this plan injects nothing (replay is bit-identical).
    pub fn is_empty(&self) -> bool {
        self.factors.iter().all(|&f| f == 1.0)
            && self.crashes.iter().all(Vec::is_empty)
            && self.proc_fail.iter().all(Option::is_none)
    }
}

/// One logged event of a faulty replay, in simulation order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time.
    pub time: f64,
    /// The task involved.
    pub task: TaskId,
    /// What happened.
    pub kind: FaultEventKind,
}

/// Kinds of faulty-replay events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// An attempt began executing.
    Start,
    /// The task completed.
    Finish,
    /// The attempt crashed; the task will retry after backoff.
    Crash,
    /// The attempt was killed by a processor failure; the task will be
    /// rescheduled (its retry budget is not charged).
    Kill,
}

/// Result of one faulty replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyReport {
    /// Time of the last finish.
    pub makespan: f64,
    /// Chronological event log (starts, finishes, crashes, kills).
    pub events: Vec<FaultEvent>,
    /// Crashed attempts that were retried.
    pub retries: usize,
    /// Attempts killed by processor failures.
    pub tasks_killed: usize,
    /// Processors that failed during the run (failures after the last
    /// finish never surface).
    pub processor_failures: Vec<u32>,
    /// Times the rescheduler replanned the remainder.
    pub reschedules: usize,
}

impl FaultyReport {
    /// `(time, task, is_start)` triples of the start/finish events —
    /// directly comparable against [`crate::trace::trace_schedule`].
    pub fn start_finish_trace(&self) -> Vec<(f64, TaskId, bool)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultEventKind::Start => Some((e.time, e.task, true)),
                FaultEventKind::Finish => Some((e.time, e.task, false)),
                _ => None,
            })
            .collect()
    }
}

/// A wake-up of the faulty replay loop. Min-ordered by time; at equal
/// times finishes run first (matching [`crate::event::EventQueue`]), then
/// crashes, then backoff expiries, then processor failures; final ties
/// break by id for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Wake {
    time: f64,
    /// 0 = finish, 1 = crash, 2 = backoff expiry, 3 = processor failure.
    rank: u8,
    /// Task id for ranks 0–2, processor id for rank 3.
    id: u32,
    /// Start epoch the event belongs to (ranks 0–1); stale epochs are
    /// dropped.
    epoch: u32,
}

impl Eq for Wake {}
impl Ord for Wake {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .expect("wake times are finite")
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Wake {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-task dynamic state of the faulty replay.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Waiting to start; not before `ready_at` (backoff).
    Pending { ready_at: f64 },
    /// Executing since `start`; `finish`/`crash_at` are this attempt's
    /// terminal event.
    Running { finish: f64 },
    /// Done at `finish`.
    Finished { finish: f64 },
}

/// Replays `schedule` for `g` under `plan`, dynamically.
///
/// Tasks keep their planned processor sets but start when their
/// predecessors have finished, all their processors are free *and* their
/// (re)planned start time has been reached — the dispatcher follows the
/// schedule, it never runs ahead of it. Under the empty plan that
/// reproduces the planned starts bit-for-bit. Crashed
/// attempts release their processors, back off exponentially and retry;
/// a processor failure kills the attempts running on it (retry budget
/// untouched) and hands every unfinished, non-running task to the
/// [`Rescheduler`], which replans the remainder onto the survivors.
/// `alloc` must be the allocation the schedule was mapped from; the
/// rescheduler clamps it to the surviving processor count.
///
/// # Panics
/// Panics if `plan`/`alloc`/`schedule` sizes disagree with `g`, or the
/// replay stalls — all indicate caller or internal bugs, never bad user
/// input.
pub fn execute_with_faults(
    g: &Ptg,
    matrix: &TimeMatrix,
    schedule: &Schedule,
    alloc: &Allocation,
    plan: &FaultPlan,
) -> FaultyReport {
    let n = g.task_count();
    assert_eq!(schedule.task_count(), n, "schedule/PTG size mismatch");
    assert_eq!(plan.factors.len(), n, "plan factors/PTG size mismatch");
    assert_eq!(plan.crashes.len(), n, "plan crashes/PTG size mismatch");
    assert_eq!(alloc.len(), n, "allocation/PTG size mismatch");
    let p_total = schedule.processors as usize;
    assert_eq!(plan.proc_fail.len(), p_total, "plan/platform size mismatch");

    // Assignments start as planned; the rescheduler may replace them.
    let mut procs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut duration = vec![0.0f64; n];
    // Start-priority when several pending tasks compete for freed
    // processors: planned start, then id. Fault-free there is no
    // contention and each task starts exactly at its planned time.
    let mut priority = vec![0.0f64; n];
    for pl in &schedule.placements {
        let v = pl.task.index();
        procs[v] = pl.processors.clone();
        duration[v] = matrix.time(pl.task, pl.width()) * plan.factors[v];
        priority[v] = pl.start;
    }

    let mut state = vec![TaskState::Pending { ready_at: 0.0 }; n];
    let mut attempt = vec![0usize; n];
    let mut epoch = vec![0u32; n];
    let mut unfinished_preds: Vec<usize> = g.task_ids().map(|v| g.predecessors(v).len()).collect();
    let mut alive = vec![true; p_total];
    let mut owner: Vec<Option<TaskId>> = vec![None; p_total];
    let mut unfinished = n;

    let mut queue: BinaryHeap<Wake> = BinaryHeap::new();
    for (q, fail) in plan.proc_fail.iter().enumerate() {
        if let Some(t) = fail {
            queue.push(Wake {
                time: *t,
                rank: 3,
                id: q as u32,
                epoch: 0,
            });
        }
    }
    // One wake-up per planned start, so a task gated on its planned time
    // (rather than on a finish event) still gets a dispatch scan. Stale
    // wakes are harmless: rank 2 only triggers a scan.
    for (i, &start) in priority.iter().enumerate() {
        if start > 0.0 {
            queue.push(Wake {
                time: start,
                rank: 2,
                id: i as u32,
                epoch: 0,
            });
        }
    }

    let mut events = Vec::with_capacity(2 * n);
    let mut retries = 0usize;
    let mut tasks_killed = 0usize;
    let mut processor_failures = Vec::new();
    let mut reschedules = 0usize;
    let mut makespan = 0.0f64;

    // Ordered list of pending candidates, rebuilt lazily: scanning all
    // tasks per wake is O(V) and V ≤ a few hundred here; keep it simple.
    let start_scan = |now: f64,
                      state: &mut Vec<TaskState>,
                      attempt: &[usize],
                      epoch: &mut Vec<u32>,
                      unfinished_preds: &[usize],
                      procs: &[Vec<u32>],
                      duration: &[f64],
                      priority: &[f64],
                      owner: &mut Vec<Option<TaskId>>,
                      queue: &mut BinaryHeap<Wake>,
                      events: &mut Vec<FaultEvent>| {
        // A task is dispatchable once its backoff expired, its
        // predecessors finished *and* its (re)planned start has been
        // reached: the dispatcher follows the schedule, it never runs
        // ahead of it. Without the planned-start gate a task whose
        // processors happen to be idle early would jump the plan, and the
        // fault-free replay would no longer be bit-identical to the
        // baseline.
        let mut candidates: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|v| {
                matches!(state[v.index()], TaskState::Pending { ready_at } if ready_at <= now)
                    && unfinished_preds[v.index()] == 0
                    && priority[v.index()] <= now
            })
            .collect();
        candidates.sort_unstable_by(|a, b| {
            priority[a.index()]
                .partial_cmp(&priority[b.index()])
                .expect("priorities are finite")
                .then_with(|| a.cmp(b))
        });
        for v in candidates {
            let i = v.index();
            // Atomic check-and-start: take the processors only if *all*
            // are free and alive — no hold-and-wait, hence no deadlock.
            if !procs[i].iter().all(|&q| owner[q as usize].is_none()) {
                continue;
            }
            debug_assert!(!procs[i].is_empty(), "{v} has no processors");
            for &q in &procs[i] {
                owner[q as usize] = Some(v);
            }
            epoch[i] += 1;
            let crash_list = &plan.crashes[i];
            let (finish, rank) = if attempt[i] < crash_list.len() {
                (now + crash_list[attempt[i]] * duration[i], 1)
            } else {
                (now + duration[i], 0)
            };
            state[i] = TaskState::Running { finish };
            queue.push(Wake {
                time: finish,
                rank,
                id: v.0,
                epoch: epoch[i],
            });
            events.push(FaultEvent {
                time: now,
                task: v,
                kind: FaultEventKind::Start,
            });
        }
    };

    start_scan(
        0.0,
        &mut state,
        &attempt,
        &mut epoch,
        &unfinished_preds,
        &procs,
        &duration,
        &priority,
        &mut owner,
        &mut queue,
        &mut events,
    );

    while unfinished > 0 {
        let head = queue
            .pop()
            .expect("faulty replay stalled with unfinished tasks");
        let now = head.time;
        // Batch every wake at this instant before the start scan, so
        // same-time finishes are all logged (and their processors all
        // freed) before any start — matching the event-queue ordering of
        // the baseline replay.
        let mut batch = vec![head];
        while let Some(next) = queue.peek() {
            if next.time == now {
                batch.push(queue.pop().expect("peeked"));
            } else {
                break;
            }
        }
        for wake in batch {
            match wake.rank {
                // Finish.
                0 => {
                    let v = TaskId(wake.id);
                    let i = v.index();
                    if wake.epoch != epoch[i] {
                        continue; // attempt was killed; stale event
                    }
                    let TaskState::Running { finish } = state[i] else {
                        continue;
                    };
                    debug_assert_eq!(finish, now);
                    state[i] = TaskState::Finished { finish: now };
                    for &q in &procs[i] {
                        debug_assert_eq!(owner[q as usize], Some(v));
                        owner[q as usize] = None;
                    }
                    for &w in g.successors(v) {
                        unfinished_preds[w.index()] -= 1;
                    }
                    unfinished -= 1;
                    makespan = makespan.max(now);
                    events.push(FaultEvent {
                        time: now,
                        task: v,
                        kind: FaultEventKind::Finish,
                    });
                }
                // Crash.
                1 => {
                    let v = TaskId(wake.id);
                    let i = v.index();
                    if wake.epoch != epoch[i] {
                        continue;
                    }
                    if !matches!(state[i], TaskState::Running { .. }) {
                        continue;
                    }
                    for &q in &procs[i] {
                        owner[q as usize] = None;
                    }
                    let backoff = plan.backoff_base * (1u64 << attempt[i].min(63)) as f64;
                    attempt[i] += 1;
                    retries += 1;
                    let ready_at = now + backoff;
                    state[i] = TaskState::Pending { ready_at };
                    queue.push(Wake {
                        time: ready_at,
                        rank: 2,
                        id: v.0,
                        epoch: 0,
                    });
                    events.push(FaultEvent {
                        time: now,
                        task: v,
                        kind: FaultEventKind::Crash,
                    });
                }
                // Backoff expiry: no state change, just a wake-up.
                2 => {}
                // Processor failure.
                3 => {
                    let q = wake.id as usize;
                    if !alive[q] {
                        continue;
                    }
                    alive[q] = false;
                    processor_failures.push(wake.id);
                    // Kill every attempt running on the dead processor;
                    // the retry budget is not charged for hardware.
                    for i in 0..n {
                        if !matches!(state[i], TaskState::Running { .. }) {
                            continue;
                        }
                        if !procs[i].contains(&wake.id) {
                            continue;
                        }
                        let v = TaskId(i as u32);
                        for &p in &procs[i] {
                            owner[p as usize] = None;
                        }
                        epoch[i] += 1; // invalidate the pending terminal event
                        state[i] = TaskState::Pending { ready_at: now };
                        tasks_killed += 1;
                        events.push(FaultEvent {
                            time: now,
                            task: v,
                            kind: FaultEventKind::Kill,
                        });
                    }
                    // Replan the unfinished remainder onto the survivors.
                    let resume = ResumeState {
                        now,
                        alive: alive.clone(),
                        finished: state
                            .iter()
                            .map(|s| match s {
                                TaskState::Finished { finish } => Some(*finish),
                                _ => None,
                            })
                            .collect(),
                        running: state
                            .iter()
                            .enumerate()
                            .filter_map(|(i, s)| match s {
                                TaskState::Running { finish } => Some(RunningTask {
                                    task: TaskId(i as u32),
                                    finish: *finish,
                                    processors: procs[i].clone(),
                                }),
                                _ => None,
                            })
                            .collect(),
                    };
                    let replanned = Rescheduler.reschedule(g, matrix, alloc, &resume);
                    reschedules += 1;
                    for pl in replanned {
                        let i = pl.task.index();
                        duration[i] = matrix.time(pl.task, pl.width()) * plan.factors[i];
                        procs[i] = pl.processors;
                        priority[i] = pl.start;
                        // Re-arm the dispatch gate at the new planned start.
                        queue.push(Wake {
                            time: pl.start.max(now),
                            rank: 2,
                            id: pl.task.0,
                            epoch: 0,
                        });
                    }
                }
                _ => unreachable!(),
            }
        }
        start_scan(
            now,
            &mut state,
            &attempt,
            &mut epoch,
            &unfinished_preds,
            &procs,
            &duration,
            &priority,
            &mut owner,
            &mut queue,
            &mut events,
        );
    }

    FaultyReport {
        makespan,
        events,
        retries,
        tasks_killed,
        processor_failures,
        reschedules,
    }
}

/// Degradation distribution over N seeded fault trials of one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// The spec string the trials were realized from.
    pub spec: String,
    /// Number of independent trials.
    pub trials: usize,
    /// Makespan of the undisturbed schedule (the baseline).
    pub fault_free_makespan: f64,
    /// Mean of `faulty_makespan / fault_free_makespan` over the trials.
    pub mean_degradation: f64,
    /// 95th percentile of the degradation ratios.
    pub p95_degradation: f64,
    /// Worst (largest) degradation ratio.
    pub worst_degradation: f64,
    /// Total crashed attempts across all trials.
    pub retries: usize,
    /// Total attempts killed by processor failures across all trials.
    pub tasks_killed: usize,
    /// Total processor failures across all trials.
    pub processor_failures: usize,
    /// Total rescheduler invocations across all trials.
    pub reschedules: usize,
}

/// Runs `trials` independent realizations of `spec` against `schedule`
/// and summarizes the makespan-degradation distribution. Deterministic:
/// trial `i` always uses the plan `FaultPlan::realize(spec, i, ..)`.
pub fn fault_trials(
    g: &Ptg,
    matrix: &TimeMatrix,
    schedule: &Schedule,
    alloc: &Allocation,
    spec: &FaultSpec,
    trials: usize,
) -> FaultSummary {
    fault_trials_obs(g, matrix, schedule, alloc, spec, trials, &NoopRecorder)
}

/// [`fault_trials`] with telemetry: each trial runs under a
/// `faults.trial` trace span, and trials that injected retries, kills or
/// reschedules drop timeline instants (`faults.retry`, `faults.kill`,
/// `faults.reschedule`) so a fault-injected episode can be located in a
/// flight-recorder export. Never changes any result — the trial loop is
/// deterministic with or without a recorder.
pub fn fault_trials_obs<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    schedule: &Schedule,
    alloc: &Allocation,
    spec: &FaultSpec,
    trials: usize,
    rec: &R,
) -> FaultSummary {
    assert!(trials >= 1, "at least one trial");
    let baseline = schedule.makespan();
    let mut degradations = Vec::with_capacity(trials);
    let mut retries = 0;
    let mut tasks_killed = 0;
    let mut processor_failures = 0;
    let mut reschedules = 0;
    for trial in 0..trials {
        let trial_span = rec.trace_span("faults.trial");
        let plan = FaultPlan::realize(
            spec,
            trial as u64,
            g.task_count(),
            schedule.processors,
            baseline,
        );
        let report = execute_with_faults(g, matrix, schedule, alloc, &plan);
        if R::ENABLED {
            if report.retries > 0 {
                rec.event("faults.retry", report.retries as u64);
            }
            if report.tasks_killed > 0 {
                rec.event("faults.kill", report.tasks_killed as u64);
            }
            if report.reschedules > 0 {
                rec.event("faults.reschedule", report.reschedules as u64);
            }
        }
        drop(trial_span);
        degradations.push(report.makespan / baseline);
        retries += report.retries;
        tasks_killed += report.tasks_killed;
        processor_failures += report.processor_failures.len();
        reschedules += report.reschedules;
    }
    degradations.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite degradations"));
    let mean = degradations.iter().sum::<f64>() / trials as f64;
    let p95_index = ((trials as f64 * 0.95).ceil() as usize).max(1) - 1;
    FaultSummary {
        spec: spec.canonical(),
        trials,
        fault_free_makespan: baseline,
        mean_degradation: mean,
        p95_degradation: degradations[p95_index.min(trials - 1)],
        worst_degradation: *degradations.last().expect("at least one trial"),
        retries,
        tasks_killed,
        processor_failures,
        reschedules,
    }
}

/// Maps a [`FaultEventKind`] onto the baseline ordering ranks (finish
/// before start at equal times) — used by tests comparing traces.
pub fn baseline_kind(kind: FaultEventKind) -> Option<EventKind> {
    match kind {
        FaultEventKind::Start => Some(EventKind::Start),
        FaultEventKind::Finish => Some(EventKind::Finish),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_schedule;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;
    use sched::{ListScheduler, Mapper};

    fn diamond() -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 2e9, 0.5);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    fn mapped(alloc: Vec<u32>) -> (Ptg, TimeMatrix, Allocation, Schedule) {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let a = Allocation::from_vec(alloc);
        let s = ListScheduler.map(&g, &m, &a);
        (g, m, a, s)
    }

    #[test]
    fn spec_grammar_round_trips() {
        let spec = FaultSpec::parse(
            "seed=42, perturb=0.2, straggler_prob=0.05, straggler_factor=4, \
             crash=0.1, retries=2, backoff=0.5, procfail=0.02",
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.perturb, 0.2);
        assert_eq!(spec.straggler_factor, 4.0);
        assert_eq!(spec.retries, 2);
        assert!(!spec.is_fault_free());
        assert!(FaultSpec::parse("").unwrap().is_fault_free());
        assert!(FaultSpec::parse("seed=7").unwrap().is_fault_free());
    }

    #[test]
    fn spec_errors_are_one_line_diagnostics() {
        for (input, needle) in [
            ("perturb", "key=value"),
            ("bogus=1", "unknown fault spec key"),
            ("crash=1.5", "probability in [0, 1]"),
            ("retries=99", "0..=16"),
            ("perturb=-1", "≥ 0"),
            ("straggler_factor=0.5", "≥ 1"),
            ("seed=abc", "unsigned integer"),
        ] {
            let err = FaultSpec::parse(input).unwrap_err().to_string();
            assert!(err.contains(needle), "{input}: {err}");
            assert!(!err.contains('\n'));
        }
    }

    #[test]
    fn plans_are_deterministic_per_trial_and_distinct_across_trials() {
        let spec = FaultSpec::parse("seed=3,perturb=0.3,crash=0.5,procfail=0.2").unwrap();
        let a = FaultPlan::realize(&spec, 0, 40, 8, 100.0);
        let b = FaultPlan::realize(&spec, 0, 40, 8, 100.0);
        let c = FaultPlan::realize(&spec, 1, 40, 8, 100.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn crash_lists_respect_the_retry_budget() {
        let spec = FaultSpec::parse("crash=1,retries=2").unwrap();
        let plan = FaultPlan::realize(&spec, 0, 10, 4, 100.0);
        assert!(plan.crashes.iter().all(|l| l.len() == 2));
        let none = FaultSpec::parse("crash=1,retries=0").unwrap();
        let plan = FaultPlan::realize(&none, 0, 10, 4, 100.0);
        assert!(plan.crashes.iter().all(Vec::is_empty));
    }

    #[test]
    fn at_least_one_processor_always_survives() {
        let spec = FaultSpec::parse("procfail=1").unwrap();
        for trial in 0..20 {
            let plan = FaultPlan::realize(&spec, trial, 5, 6, 50.0);
            assert!(plan.proc_fail.iter().any(Option::is_none), "trial {trial}");
        }
    }

    #[test]
    fn empty_plan_replay_is_bit_identical() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let plan = FaultPlan::empty(4, 4);
        let report = execute_with_faults(&g, &m, &s, &a, &plan);
        assert_eq!(report.makespan, s.makespan(), "bit-identical makespan");
        let baseline: Vec<(f64, TaskId, bool)> = trace_schedule(&g, &s)
            .iter()
            .map(|e| (e.time, e.task, e.is_start))
            .collect();
        assert_eq!(report.start_finish_trace(), baseline);
        assert_eq!(report.retries, 0);
        assert_eq!(report.reschedules, 0);
    }

    #[test]
    fn perturbation_slows_the_run_down() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let mut plan = FaultPlan::empty(4, 4);
        plan.factors = vec![2.0; 4];
        let report = execute_with_faults(&g, &m, &s, &a, &plan);
        assert!(report.makespan > s.makespan());
        // Dependencies still hold under the perturbed timeline.
        let finish_of = |t: u32| {
            report
                .events
                .iter()
                .find(|e| e.task == TaskId(t) && e.kind == FaultEventKind::Finish)
                .unwrap()
                .time
        };
        let start_of = |t: u32| {
            report
                .events
                .iter()
                .find(|e| e.task == TaskId(t) && e.kind == FaultEventKind::Start)
                .unwrap()
                .time
        };
        assert!(start_of(3) >= finish_of(1).max(finish_of(2)));
    }

    #[test]
    fn crashes_retry_with_backoff_and_complete() {
        let (g, m, a, s) = mapped(vec![1, 1, 1, 1]);
        let mut plan = FaultPlan::empty(4, 4);
        plan.crashes[0] = vec![0.5, 0.5]; // two crashes, then success
        plan.backoff_base = 1.0;
        let report = execute_with_faults(&g, &m, &s, &a, &plan);
        assert_eq!(report.retries, 2);
        let crashes: Vec<f64> = report
            .events
            .iter()
            .filter(|e| e.kind == FaultEventKind::Crash)
            .map(|e| e.time)
            .collect();
        assert_eq!(crashes.len(), 2);
        let starts: Vec<f64> = report
            .events
            .iter()
            .filter(|e| e.task == TaskId(0) && e.kind == FaultEventKind::Start)
            .map(|e| e.time)
            .collect();
        assert_eq!(starts.len(), 3);
        // Backoff doubles: retry 0 waits 1s, retry 1 waits 2s.
        assert!((starts[1] - crashes[0] - 1.0).abs() < 1e-12);
        assert!((starts[2] - crashes[1] - 2.0).abs() < 1e-12);
        assert!(report.makespan > s.makespan());
        // Everything still finishes exactly once.
        let finishes = report
            .events
            .iter()
            .filter(|e| e.kind == FaultEventKind::Finish)
            .count();
        assert_eq!(finishes, 4);
    }

    #[test]
    fn processor_failure_triggers_reschedule_and_the_run_completes() {
        let (g, m, a, s) = mapped(vec![4, 2, 2, 4]);
        let mut plan = FaultPlan::empty(4, 4);
        // Kill processor 3 mid-run (during the wide source task).
        let t0 = s.placements[0].finish / 2.0;
        plan.proc_fail[3] = Some(t0);
        let report = execute_with_faults(&g, &m, &s, &a, &plan);
        assert_eq!(report.processor_failures, vec![3]);
        assert!(report.reschedules >= 1);
        assert!(report.tasks_killed >= 1);
        assert!(report.makespan > s.makespan());
        // Nothing starts on the dead processor after the failure, and all
        // tasks finish.
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| e.kind == FaultEventKind::Finish)
                .count(),
            4
        );
    }

    #[test]
    fn fault_trials_summarize_the_degradation_distribution() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let spec = FaultSpec::parse("seed=9,perturb=0.5").unwrap();
        let summary = fault_trials(&g, &m, &s, &a, &spec, 20);
        assert_eq!(summary.trials, 20);
        assert_eq!(summary.fault_free_makespan, s.makespan());
        assert!(summary.mean_degradation >= 1.0);
        assert!(summary.p95_degradation >= summary.mean_degradation * 0.9);
        assert!(summary.worst_degradation >= summary.p95_degradation);
        // Deterministic: same spec, same summary.
        let again = fault_trials(&g, &m, &s, &a, &spec, 20);
        assert_eq!(summary, again);
    }

    #[test]
    fn fault_free_trials_report_unit_degradation() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let spec = FaultSpec::default();
        let summary = fault_trials(&g, &m, &s, &a, &spec, 3);
        assert_eq!(summary.mean_degradation, 1.0);
        assert_eq!(summary.p95_degradation, 1.0);
        assert_eq!(summary.worst_degradation, 1.0);
        assert_eq!(summary.retries, 0);
    }
}
