//! Seeded fault injection for schedule replay.
//!
//! The paper's simulator assumes execution times are exact and processors
//! never fail; real clusters exhibit stragglers, crashed tasks and node
//! failures. This module makes those first-class, deterministically:
//!
//! * [`FaultSpec`] — the user-facing fault description, parsed from a
//!   `key=value,...` string (see [`FaultSpec::parse`] for the grammar),
//! * [`FaultPlan`] — one concrete, seeded realization of a spec for one
//!   trial: a perturbation factor per task, a bounded crash list per task
//!   and an optional failure time per processor. Same spec + seed + trial
//!   ⇒ same plan, always,
//! * [`execute_with_faults`] — a dynamic re-simulation of a schedule under
//!   a plan: tasks keep their planned processors but start when their
//!   predecessors and processors actually allow it, crashed attempts retry
//!   after exponential backoff, and a processor failure triggers the
//!   [`sched::Rescheduler`] over the unfinished remainder of the graph on
//!   the surviving processors,
//! * [`fault_trials`] / [`FaultSummary`] — the makespan-degradation
//!   distribution (mean/p95/worst vs fault-free) over N independent trials.
//!
//! Under the *empty* plan the re-simulation provably reproduces the input
//! schedule bit-for-bit: every duration is re-read from the same
//! [`TimeMatrix`] the mapper used, the perturbation factor is exactly
//! `1.0`, and each start time is the IEEE-exact `max` of predecessor
//! finishes and processor releases — the same expression the mapper
//! evaluated. The property tests in `tests/prop_faults.rs` hold this
//! guarantee against random DAGGEN graphs.

use crate::event::EventKind;
use exec_model::TimeMatrix;
use obs::{NoopRecorder, Recorder};
use ptg::{Ptg, TaskId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, RescheduleError, Rescheduler, ResumeState, RunningTask, Schedule};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Upper bound on `retries=` — beyond this the exponential backoff horizon
/// dwarfs any schedule and almost certainly indicates a typo.
pub const MAX_RETRIES: u32 = 16;

/// A parse or validation error in a fault specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// An item was not of the form `key=value`.
    BadPair(String),
    /// The key is not part of the grammar.
    UnknownKey(String),
    /// The value failed to parse or is out of range for its key.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::BadPair(item) => {
                write!(f, "fault spec item {item:?} is not of the form key=value")
            }
            FaultSpecError::UnknownKey(key) => write!(
                f,
                "unknown fault spec key {key:?} (known: seed, perturb, straggler_prob, \
                 straggler_factor, crash, retries, backoff, procfail, kill_all)"
            ),
            FaultSpecError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "fault spec {key}={value}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A user-facing fault description; one spec drives many seeded trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Base RNG seed; trial `i` uses a stream derived from `(seed, i)`.
    pub seed: u64,
    /// Multiplicative execution-time noise: each task's duration is scaled
    /// by a factor drawn uniformly from `[1, 1 + perturb]`.
    pub perturb: f64,
    /// Probability that a task is a straggler (its factor is additionally
    /// multiplied by `straggler_factor`).
    pub straggler_prob: f64,
    /// Slowdown factor applied to stragglers (≥ 1).
    pub straggler_factor: f64,
    /// Per-attempt crash probability: each attempt of a task crashes with
    /// this probability at a uniform progress point, up to `retries` times.
    pub crash: f64,
    /// Retry budget per task. Attempt `retries` (0-based) never crashes,
    /// so every run completes — that is what *bounded* retry buys.
    pub retries: u32,
    /// Backoff before retry `k` (0-based crashed attempt): `backoff · 2^k`
    /// seconds.
    pub backoff: f64,
    /// Per-processor probability of permanent failure at a uniform time
    /// within the fault-free makespan. At least one processor always
    /// survives (see [`FaultPlan::realize`]).
    pub procfail: f64,
    /// Catastrophic total failure: when set, *every* processor fails at
    /// this fraction of the fault-free makespan, overriding the
    /// keep-one-survivor rule. The replay then has no platform left and
    /// reports [`RescheduleError::NoSurvivors`] — the negative path the
    /// typed error exists for.
    #[serde(default)]
    pub kill_all: Option<f64>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            perturb: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 3.0,
            crash: 0.0,
            retries: 3,
            backoff: 0.0,
            procfail: 0.0,
            kill_all: None,
        }
    }
}

impl FaultSpec {
    /// Parses a `key=value,...` spec. Grammar (all items optional, any
    /// order): `seed=<u64>`, `perturb=<f64 ≥ 0>`, `straggler_prob=<prob>`,
    /// `straggler_factor=<f64 ≥ 1>`, `crash=<prob>`, `retries=<0..=16>`,
    /// `backoff=<f64 ≥ 0>`, `procfail=<prob>`,
    /// `kill_all=<fraction in [0, 1]>`. The empty string is the
    /// fault-free spec.
    pub fn parse(s: &str) -> Result<FaultSpec, FaultSpecError> {
        let mut spec = FaultSpec::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| FaultSpecError::BadPair(item.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |expected: &'static str| FaultSpecError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
                expected,
            };
            let prob = |field: &mut f64| -> Result<(), FaultSpecError> {
                *field = value
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| bad("a probability in [0, 1]"))?;
                Ok(())
            };
            match key {
                "seed" => {
                    spec.seed = value.parse().map_err(|_| bad("an unsigned integer"))?;
                }
                "perturb" => {
                    spec.perturb = value
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or_else(|| bad("a finite value ≥ 0"))?;
                }
                "straggler_prob" => prob(&mut spec.straggler_prob)?,
                "straggler_factor" => {
                    spec.straggler_factor = value
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 1.0)
                        .ok_or_else(|| bad("a finite value ≥ 1"))?;
                }
                "crash" => prob(&mut spec.crash)?,
                "retries" => {
                    spec.retries = value
                        .parse::<u32>()
                        .ok()
                        .filter(|r| *r <= MAX_RETRIES)
                        .ok_or_else(|| bad("an integer in 0..=16"))?;
                }
                "backoff" => {
                    spec.backoff = value
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or_else(|| bad("a finite value ≥ 0"))?;
                }
                "procfail" => prob(&mut spec.procfail)?,
                "kill_all" => {
                    spec.kill_all = Some(
                        value
                            .parse::<f64>()
                            .ok()
                            .filter(|x| (0.0..=1.0).contains(x))
                            .ok_or_else(|| bad("a makespan fraction in [0, 1]"))?,
                    );
                }
                _ => return Err(FaultSpecError::UnknownKey(key.to_string())),
            }
        }
        Ok(spec)
    }

    /// Canonical `key=value,...` rendering; parses back to `self`.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "seed={},perturb={},straggler_prob={},straggler_factor={},crash={},retries={},backoff={},procfail={}",
            self.seed,
            self.perturb,
            self.straggler_prob,
            self.straggler_factor,
            self.crash,
            self.retries,
            self.backoff,
            self.procfail
        );
        if let Some(frac) = self.kill_all {
            s.push_str(&format!(",kill_all={frac}"));
        }
        s
    }

    /// True when no realization of this spec can inject any fault.
    pub fn is_fault_free(&self) -> bool {
        self.perturb == 0.0
            && self.straggler_prob == 0.0
            && self.crash == 0.0
            && self.procfail == 0.0
            && self.kill_all.is_none()
    }
}

/// One concrete, deterministic realization of a [`FaultSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Multiplicative duration factor per task (exactly `1.0` ⇒ no
    /// perturbation; multiplying by `1.0` is IEEE-exact).
    pub factors: Vec<f64>,
    /// Crash-progress points per task: attempt `k` (0-based) crashes at
    /// progress `crashes[v][k]` iff `k < crashes[v].len()`. Lists are
    /// bounded by the retry budget, so the attempt after the last listed
    /// crash always completes.
    pub crashes: Vec<Vec<f64>>,
    /// Backoff before retry `k`: `backoff_base · 2^k` seconds.
    pub backoff_base: f64,
    /// Permanent failure time per processor (`None` ⇒ the processor
    /// survives the whole run). All `Some` only under `kill_all`.
    pub proc_fail: Vec<Option<f64>>,
    /// Per-task: did the straggler draw fire? (Distinguishes the
    /// straggler contribution to `factors` from plain perturbation for
    /// the per-kind breakdown.)
    pub stragglers: Vec<bool>,
    /// Per-task: did a non-unit perturbation draw land? (`factors[v]`
    /// may still be 1.0 when only the straggler multiplier fired.)
    pub perturbed: Vec<bool>,
}

impl FaultPlan {
    /// The fault-free plan: unit factors, no crashes, no failures. Replay
    /// under this plan is bit-identical to the input schedule.
    pub fn empty(tasks: usize, processors: u32) -> FaultPlan {
        FaultPlan {
            factors: vec![1.0; tasks],
            crashes: vec![Vec::new(); tasks],
            backoff_base: 0.0,
            proc_fail: vec![None; processors as usize],
            stragglers: vec![false; tasks],
            perturbed: vec![false; tasks],
        }
    }

    /// Realizes `spec` for `trial` over `tasks` tasks and `processors`
    /// processors. `horizon` bounds processor-failure times (pass the
    /// fault-free makespan). Fully determined by
    /// `(spec, trial, tasks, processors, horizon)`.
    ///
    /// If every processor draws a failure, the one failing *last* is kept
    /// alive instead, so the rescheduler always has a survivor.
    pub fn realize(
        spec: &FaultSpec,
        trial: u64,
        tasks: usize,
        processors: u32,
        horizon: f64,
    ) -> FaultPlan {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "bad horizon {horizon}"
        );
        // Distinct, collision-free stream per (seed, trial).
        let mut rng =
            ChaCha8Rng::seed_from_u64(spec.seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut factors = Vec::with_capacity(tasks);
        let mut stragglers = vec![false; tasks];
        let mut perturbed = vec![false; tasks];
        for i in 0..tasks {
            let mut f = if spec.perturb > 0.0 {
                1.0 + rng.gen_range(0.0..=spec.perturb)
            } else {
                1.0
            };
            perturbed[i] = f != 1.0;
            if spec.straggler_prob > 0.0 && rng.gen_bool(spec.straggler_prob) {
                f *= spec.straggler_factor;
                stragglers[i] = true;
            }
            factors.push(f);
        }
        let mut crashes = vec![Vec::new(); tasks];
        if spec.crash > 0.0 {
            for list in &mut crashes {
                while (list.len() as u32) < spec.retries && rng.gen_bool(spec.crash) {
                    list.push(rng.gen_range(0.0..1.0));
                }
            }
        }
        let mut proc_fail = vec![None; processors as usize];
        if spec.procfail > 0.0 {
            for slot in &mut proc_fail {
                if rng.gen_bool(spec.procfail) {
                    *slot = Some(rng.gen_range(0.0..horizon));
                }
            }
            if proc_fail.iter().all(Option::is_some) {
                // Keep the processor that would fail last alive.
                let survivor = proc_fail
                    .iter()
                    .enumerate()
                    .max_by(|(qa, a), (qb, b)| {
                        a.unwrap()
                            .partial_cmp(&b.unwrap())
                            .expect("failure times are finite")
                            .then_with(|| qb.cmp(qa))
                    })
                    .map(|(q, _)| q)
                    .expect("at least one processor");
                proc_fail[survivor] = None;
            }
        }
        if let Some(frac) = spec.kill_all {
            // Catastrophe drill: the whole platform goes down at once —
            // deliberately *not* subject to the keep-one-survivor rule.
            proc_fail.fill(Some(frac * horizon));
        }
        FaultPlan {
            factors,
            crashes,
            backoff_base: spec.backoff,
            proc_fail,
            stragglers,
            perturbed,
        }
    }

    /// True when this plan injects nothing (replay is bit-identical).
    pub fn is_empty(&self) -> bool {
        self.factors.iter().all(|&f| f == 1.0)
            && self.crashes.iter().all(Vec::is_empty)
            && self.proc_fail.iter().all(Option::is_none)
    }
}

/// One logged event of a faulty replay, in simulation order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time.
    pub time: f64,
    /// The task involved.
    pub task: TaskId,
    /// What happened.
    pub kind: FaultEventKind,
}

/// Kinds of faulty-replay events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// An attempt began executing.
    Start,
    /// The task completed.
    Finish,
    /// The attempt crashed; the task will retry after backoff.
    Crash,
    /// The attempt was killed by a processor failure; the task will be
    /// rescheduled (its retry budget is not charged).
    Kill,
}

/// Result of one faulty replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyReport {
    /// Time of the last finish.
    pub makespan: f64,
    /// Chronological event log (starts, finishes, crashes, kills).
    pub events: Vec<FaultEvent>,
    /// Crashed attempts that were retried.
    pub retries: usize,
    /// Attempts killed by processor failures.
    pub tasks_killed: usize,
    /// Processors that failed during the run (failures after the last
    /// finish never surface).
    pub processor_failures: Vec<u32>,
    /// Times the rescheduler replanned the remainder.
    pub reschedules: usize,
}

impl FaultyReport {
    /// `(time, task, is_start)` triples of the start/finish events —
    /// directly comparable against [`crate::trace::trace_schedule`].
    pub fn start_finish_trace(&self) -> Vec<(f64, TaskId, bool)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultEventKind::Start => Some((e.time, e.task, true)),
                FaultEventKind::Finish => Some((e.time, e.task, false)),
                _ => None,
            })
            .collect()
    }
}

/// A wake-up of the faulty replay loop. Min-ordered by time; at equal
/// times finishes run first (matching [`crate::event::EventQueue`]), then
/// crashes, then backoff expiries, then processor failures; final ties
/// break by id for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Wake {
    time: f64,
    /// 0 = finish, 1 = crash, 2 = backoff expiry, 3 = processor failure.
    rank: u8,
    /// Task id for ranks 0–2, processor id for rank 3.
    id: u32,
    /// Start epoch the event belongs to (ranks 0–1); stale epochs are
    /// dropped.
    epoch: u32,
}

impl Eq for Wake {}
impl Ord for Wake {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .expect("wake times are finite")
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Wake {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-task dynamic state of the faulty replay.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Waiting to start; not before `ready_at` (backoff).
    Pending { ready_at: f64 },
    /// Executing since `start`; `finish`/`crash_at` are this attempt's
    /// terminal event.
    Running { finish: f64 },
    /// Done at `finish`.
    Finished { finish: f64 },
}

/// Replays `schedule` for `g` under `plan`, dynamically.
///
/// Tasks keep their planned processor sets but start when their
/// predecessors have finished, all their processors are free *and* their
/// (re)planned start time has been reached — the dispatcher follows the
/// schedule, it never runs ahead of it. Under the empty plan that
/// reproduces the planned starts bit-for-bit. Crashed
/// attempts release their processors, back off exponentially and retry;
/// a processor failure kills the attempts running on it (retry budget
/// untouched) and hands every unfinished, non-running task to the
/// [`Rescheduler`], which replans the remainder onto the survivors.
/// `alloc` must be the allocation the schedule was mapped from; the
/// rescheduler clamps it to the surviving processor count.
///
/// Returns [`RescheduleError::NoSurvivors`] when a failure leaves no
/// processor alive (only reachable via `kill_all`, since `realize` keeps
/// a survivor otherwise) — graceful degradation has a floor, and hitting
/// it is a reportable outcome, not a crash.
///
/// # Panics
/// Panics if `plan`/`alloc`/`schedule` sizes disagree with `g`, or the
/// replay stalls — all indicate caller or internal bugs, never bad user
/// input.
pub fn execute_with_faults(
    g: &Ptg,
    matrix: &TimeMatrix,
    schedule: &Schedule,
    alloc: &Allocation,
    plan: &FaultPlan,
) -> Result<FaultyReport, RescheduleError> {
    let n = g.task_count();
    assert_eq!(schedule.task_count(), n, "schedule/PTG size mismatch");
    assert_eq!(plan.factors.len(), n, "plan factors/PTG size mismatch");
    assert_eq!(plan.crashes.len(), n, "plan crashes/PTG size mismatch");
    assert_eq!(alloc.len(), n, "allocation/PTG size mismatch");
    let p_total = schedule.processors as usize;
    assert_eq!(plan.proc_fail.len(), p_total, "plan/platform size mismatch");

    // Assignments start as planned; the rescheduler may replace them.
    let mut procs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut duration = vec![0.0f64; n];
    // Start-priority when several pending tasks compete for freed
    // processors: planned start, then id. Fault-free there is no
    // contention and each task starts exactly at its planned time.
    let mut priority = vec![0.0f64; n];
    for pl in &schedule.placements {
        let v = pl.task.index();
        procs[v] = pl.processors.clone();
        duration[v] = matrix.time(pl.task, pl.width()) * plan.factors[v];
        priority[v] = pl.start;
    }

    let mut state = vec![TaskState::Pending { ready_at: 0.0 }; n];
    let mut attempt = vec![0usize; n];
    let mut epoch = vec![0u32; n];
    let mut unfinished_preds: Vec<usize> = g.task_ids().map(|v| g.predecessors(v).len()).collect();
    let mut alive = vec![true; p_total];
    let mut owner: Vec<Option<TaskId>> = vec![None; p_total];
    let mut unfinished = n;

    let mut queue: BinaryHeap<Wake> = BinaryHeap::new();
    for (q, fail) in plan.proc_fail.iter().enumerate() {
        if let Some(t) = fail {
            queue.push(Wake {
                time: *t,
                rank: 3,
                id: q as u32,
                epoch: 0,
            });
        }
    }
    // One wake-up per planned start, so a task gated on its planned time
    // (rather than on a finish event) still gets a dispatch scan. Stale
    // wakes are harmless: rank 2 only triggers a scan.
    for (i, &start) in priority.iter().enumerate() {
        if start > 0.0 {
            queue.push(Wake {
                time: start,
                rank: 2,
                id: i as u32,
                epoch: 0,
            });
        }
    }

    let mut events = Vec::with_capacity(2 * n);
    let mut retries = 0usize;
    let mut tasks_killed = 0usize;
    let mut processor_failures = Vec::new();
    let mut reschedules = 0usize;
    let mut makespan = 0.0f64;

    // Ordered list of pending candidates, rebuilt lazily: scanning all
    // tasks per wake is O(V) and V ≤ a few hundred here; keep it simple.
    let start_scan = |now: f64,
                      state: &mut Vec<TaskState>,
                      attempt: &[usize],
                      epoch: &mut Vec<u32>,
                      unfinished_preds: &[usize],
                      procs: &[Vec<u32>],
                      duration: &[f64],
                      priority: &[f64],
                      owner: &mut Vec<Option<TaskId>>,
                      queue: &mut BinaryHeap<Wake>,
                      events: &mut Vec<FaultEvent>| {
        // A task is dispatchable once its backoff expired, its
        // predecessors finished *and* its (re)planned start has been
        // reached: the dispatcher follows the schedule, it never runs
        // ahead of it. Without the planned-start gate a task whose
        // processors happen to be idle early would jump the plan, and the
        // fault-free replay would no longer be bit-identical to the
        // baseline.
        let mut candidates: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|v| {
                matches!(state[v.index()], TaskState::Pending { ready_at } if ready_at <= now)
                    && unfinished_preds[v.index()] == 0
                    && priority[v.index()] <= now
            })
            .collect();
        candidates.sort_unstable_by(|a, b| {
            priority[a.index()]
                .partial_cmp(&priority[b.index()])
                .expect("priorities are finite")
                .then_with(|| a.cmp(b))
        });
        for v in candidates {
            let i = v.index();
            // Atomic check-and-start: take the processors only if *all*
            // are free and alive — no hold-and-wait, hence no deadlock.
            if !procs[i].iter().all(|&q| owner[q as usize].is_none()) {
                continue;
            }
            debug_assert!(!procs[i].is_empty(), "{v} has no processors");
            for &q in &procs[i] {
                owner[q as usize] = Some(v);
            }
            epoch[i] += 1;
            let crash_list = &plan.crashes[i];
            let (finish, rank) = if attempt[i] < crash_list.len() {
                (now + crash_list[attempt[i]] * duration[i], 1)
            } else {
                (now + duration[i], 0)
            };
            state[i] = TaskState::Running { finish };
            queue.push(Wake {
                time: finish,
                rank,
                id: v.0,
                epoch: epoch[i],
            });
            events.push(FaultEvent {
                time: now,
                task: v,
                kind: FaultEventKind::Start,
            });
        }
    };

    start_scan(
        0.0,
        &mut state,
        &attempt,
        &mut epoch,
        &unfinished_preds,
        &procs,
        &duration,
        &priority,
        &mut owner,
        &mut queue,
        &mut events,
    );

    while unfinished > 0 {
        let head = queue
            .pop()
            .expect("faulty replay stalled with unfinished tasks");
        let now = head.time;
        // Batch every wake at this instant before the start scan, so
        // same-time finishes are all logged (and their processors all
        // freed) before any start — matching the event-queue ordering of
        // the baseline replay.
        let mut batch = vec![head];
        while let Some(next) = queue.peek() {
            if next.time == now {
                batch.push(queue.pop().expect("peeked"));
            } else {
                break;
            }
        }
        for wake in batch {
            match wake.rank {
                // Finish.
                0 => {
                    let v = TaskId(wake.id);
                    let i = v.index();
                    if wake.epoch != epoch[i] {
                        continue; // attempt was killed; stale event
                    }
                    let TaskState::Running { finish } = state[i] else {
                        continue;
                    };
                    debug_assert_eq!(finish, now);
                    state[i] = TaskState::Finished { finish: now };
                    for &q in &procs[i] {
                        debug_assert_eq!(owner[q as usize], Some(v));
                        owner[q as usize] = None;
                    }
                    for &w in g.successors(v) {
                        unfinished_preds[w.index()] -= 1;
                    }
                    unfinished -= 1;
                    makespan = makespan.max(now);
                    events.push(FaultEvent {
                        time: now,
                        task: v,
                        kind: FaultEventKind::Finish,
                    });
                }
                // Crash.
                1 => {
                    let v = TaskId(wake.id);
                    let i = v.index();
                    if wake.epoch != epoch[i] {
                        continue;
                    }
                    if !matches!(state[i], TaskState::Running { .. }) {
                        continue;
                    }
                    for &q in &procs[i] {
                        owner[q as usize] = None;
                    }
                    let backoff = plan.backoff_base * (1u64 << attempt[i].min(63)) as f64;
                    attempt[i] += 1;
                    retries += 1;
                    let ready_at = now + backoff;
                    state[i] = TaskState::Pending { ready_at };
                    queue.push(Wake {
                        time: ready_at,
                        rank: 2,
                        id: v.0,
                        epoch: 0,
                    });
                    events.push(FaultEvent {
                        time: now,
                        task: v,
                        kind: FaultEventKind::Crash,
                    });
                }
                // Backoff expiry: no state change, just a wake-up.
                2 => {}
                // Processor failure.
                3 => {
                    let q = wake.id as usize;
                    if !alive[q] {
                        continue;
                    }
                    alive[q] = false;
                    processor_failures.push(wake.id);
                    // Kill every attempt running on the dead processor;
                    // the retry budget is not charged for hardware.
                    for i in 0..n {
                        if !matches!(state[i], TaskState::Running { .. }) {
                            continue;
                        }
                        if !procs[i].contains(&wake.id) {
                            continue;
                        }
                        let v = TaskId(i as u32);
                        for &p in &procs[i] {
                            owner[p as usize] = None;
                        }
                        epoch[i] += 1; // invalidate the pending terminal event
                        state[i] = TaskState::Pending { ready_at: now };
                        tasks_killed += 1;
                        events.push(FaultEvent {
                            time: now,
                            task: v,
                            kind: FaultEventKind::Kill,
                        });
                    }
                    // Replan the unfinished remainder onto the survivors.
                    let resume = ResumeState {
                        now,
                        alive: alive.clone(),
                        finished: state
                            .iter()
                            .map(|s| match s {
                                TaskState::Finished { finish } => Some(*finish),
                                _ => None,
                            })
                            .collect(),
                        running: state
                            .iter()
                            .enumerate()
                            .filter_map(|(i, s)| match s {
                                TaskState::Running { finish } => Some(RunningTask {
                                    task: TaskId(i as u32),
                                    finish: *finish,
                                    processors: procs[i].clone(),
                                }),
                                _ => None,
                            })
                            .collect(),
                        busy_until: Vec::new(),
                    };
                    let replanned = Rescheduler.reschedule(g, matrix, alloc, &resume)?;
                    reschedules += 1;
                    for pl in replanned {
                        let i = pl.task.index();
                        duration[i] = matrix.time(pl.task, pl.width()) * plan.factors[i];
                        procs[i] = pl.processors;
                        priority[i] = pl.start;
                        // Re-arm the dispatch gate at the new planned start.
                        queue.push(Wake {
                            time: pl.start.max(now),
                            rank: 2,
                            id: pl.task.0,
                            epoch: 0,
                        });
                    }
                }
                _ => unreachable!(),
            }
        }
        start_scan(
            now,
            &mut state,
            &attempt,
            &mut epoch,
            &unfinished_preds,
            &procs,
            &duration,
            &priority,
            &mut owner,
            &mut queue,
            &mut events,
        );
    }

    Ok(FaultyReport {
        makespan,
        events,
        retries,
        tasks_killed,
        processor_failures,
        reschedules,
    })
}

/// Occurrence and impact of one fault kind across a trial batch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KindStat {
    /// Trials in which this kind fired at least once.
    pub trials_affected: usize,
    /// Total individual events of this kind across all trials (crashed
    /// attempts, straggler tasks, perturbed tasks, failed processors).
    pub events: usize,
    /// Mean makespan degradation over the *affected* trials only
    /// (`0.0` when no trial was affected). Kinds co-occur within a
    /// trial, so these means attribute shared degradation to every kind
    /// present — they rank kinds, they do not decompose the total.
    pub mean_degradation: f64,
}

/// Per-fault-kind breakdown of a trial batch: which injection source
/// fired, how often, and how bad the affected trials were.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultKindBreakdown {
    /// Task-attempt crashes (retried after backoff).
    pub crash: KindStat,
    /// Straggler slowdowns (`straggler_factor` multiplier).
    pub straggler: KindStat,
    /// Plain execution-time perturbation (`[1, 1 + perturb]` noise).
    pub perturb: KindStat,
    /// Permanent processor failures (rescheduler invoked).
    pub node_failure: KindStat,
}

/// Degradation distribution over N seeded fault trials of one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// The spec string the trials were realized from.
    pub spec: String,
    /// Number of independent trials.
    pub trials: usize,
    /// Makespan of the undisturbed schedule (the baseline).
    pub fault_free_makespan: f64,
    /// Mean of `faulty_makespan / fault_free_makespan` over the trials.
    pub mean_degradation: f64,
    /// 95th percentile of the degradation ratios.
    pub p95_degradation: f64,
    /// Worst (largest) degradation ratio.
    pub worst_degradation: f64,
    /// Total crashed attempts across all trials.
    pub retries: usize,
    /// Total attempts killed by processor failures across all trials.
    pub tasks_killed: usize,
    /// Total processor failures across all trials.
    pub processor_failures: usize,
    /// Total rescheduler invocations across all trials.
    pub reschedules: usize,
    /// Per-fault-kind breakdown (counts and mean degradation). Defaults
    /// to all-zero when deserializing reports written before the field
    /// existed.
    #[serde(default)]
    pub kinds: FaultKindBreakdown,
}

/// Runs `trials` independent realizations of `spec` against `schedule`
/// and summarizes the makespan-degradation distribution. Deterministic:
/// trial `i` always uses the plan `FaultPlan::realize(spec, i, ..)`.
/// Fails with [`RescheduleError::NoSurvivors`] when a trial kills the
/// whole platform (`kill_all`).
pub fn fault_trials(
    g: &Ptg,
    matrix: &TimeMatrix,
    schedule: &Schedule,
    alloc: &Allocation,
    spec: &FaultSpec,
    trials: usize,
) -> Result<FaultSummary, RescheduleError> {
    fault_trials_obs(g, matrix, schedule, alloc, spec, trials, &NoopRecorder)
}

/// [`fault_trials`] with telemetry: each trial runs under a
/// `faults.trial` trace span, and trials that injected retries, kills or
/// reschedules drop timeline instants (`faults.retry`, `faults.kill`,
/// `faults.reschedule`) so a fault-injected episode can be located in a
/// flight-recorder export. Never changes any result — the trial loop is
/// deterministic with or without a recorder.
pub fn fault_trials_obs<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    schedule: &Schedule,
    alloc: &Allocation,
    spec: &FaultSpec,
    trials: usize,
    rec: &R,
) -> Result<FaultSummary, RescheduleError> {
    assert!(trials >= 1, "at least one trial");
    let baseline = schedule.makespan();
    let mut degradations = Vec::with_capacity(trials);
    let mut retries = 0;
    let mut tasks_killed = 0;
    let mut processor_failures = 0;
    let mut reschedules = 0;
    let mut kinds = FaultKindBreakdown::default();
    // (events this trial, degradation) accumulators per kind; folded into
    // the mean at the end.
    let mut kind_sums = [0.0f64; 4];
    for trial in 0..trials {
        let trial_span = rec.trace_span("faults.trial");
        let plan = FaultPlan::realize(
            spec,
            trial as u64,
            g.task_count(),
            schedule.processors,
            baseline,
        );
        let report = execute_with_faults(g, matrix, schedule, alloc, &plan)?;
        if R::ENABLED {
            if report.retries > 0 {
                rec.event("faults.retry", report.retries as u64);
            }
            if report.tasks_killed > 0 {
                rec.event("faults.kill", report.tasks_killed as u64);
            }
            if report.reschedules > 0 {
                rec.event("faults.reschedule", report.reschedules as u64);
            }
        }
        drop(trial_span);
        let degradation = report.makespan / baseline;
        degradations.push(degradation);
        retries += report.retries;
        tasks_killed += report.tasks_killed;
        processor_failures += report.processor_failures.len();
        reschedules += report.reschedules;
        let straggler_tasks = plan.stragglers.iter().filter(|&&s| s).count();
        let perturbed_tasks = plan.perturbed.iter().filter(|&&p| p).count();
        let trial_kinds = [
            (&mut kinds.crash, report.retries, 0),
            (&mut kinds.straggler, straggler_tasks, 1),
            (&mut kinds.perturb, perturbed_tasks, 2),
            (&mut kinds.node_failure, report.processor_failures.len(), 3),
        ];
        for (stat, events, slot) in trial_kinds {
            if events > 0 {
                stat.trials_affected += 1;
                stat.events += events;
                kind_sums[slot] += degradation;
            }
        }
    }
    for (stat, sum) in [
        &mut kinds.crash,
        &mut kinds.straggler,
        &mut kinds.perturb,
        &mut kinds.node_failure,
    ]
    .into_iter()
    .zip(kind_sums)
    {
        if stat.trials_affected > 0 {
            stat.mean_degradation = sum / stat.trials_affected as f64;
        }
    }
    degradations.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite degradations"));
    let mean = degradations.iter().sum::<f64>() / trials as f64;
    let p95_index = ((trials as f64 * 0.95).ceil() as usize).max(1) - 1;
    Ok(FaultSummary {
        spec: spec.canonical(),
        trials,
        fault_free_makespan: baseline,
        mean_degradation: mean,
        p95_degradation: degradations[p95_index.min(trials - 1)],
        worst_degradation: *degradations.last().expect("at least one trial"),
        retries,
        tasks_killed,
        processor_failures,
        reschedules,
        kinds,
    })
}

/// A parsed cluster-churn description for the online simulator: how
/// often nodes fail, how quickly they come back, and how many spare
/// nodes can join mid-run. One spec + one seed ⇒ one deterministic
/// event stream ([`ChurnStream`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Mean exponential inter-failure time in simulated seconds
    /// (`0` ⇒ no stochastic failures).
    pub fail_every: f64,
    /// Mean exponential repair delay after a failure (`0` ⇒ failures are
    /// permanent).
    pub repair_after: f64,
    /// Spare nodes beyond the platform's initial capacity that may join
    /// during the run.
    pub spares: u32,
    /// Mean exponential inter-join time for spares (`0` ⇒ spares never
    /// join).
    pub join_every: f64,
    /// Catastrophic full-cluster failure at this absolute simulated time
    /// (permanent; no repairs follow).
    pub fail_all_at: Option<f64>,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            fail_every: 0.0,
            repair_after: 0.0,
            spares: 0,
            join_every: 0.0,
            fail_all_at: None,
        }
    }
}

impl ChurnSpec {
    /// Parses a `key=value,...` churn spec. Grammar (all items optional,
    /// any order): `fail_every=<f64 ≥ 0>`, `repair_after=<f64 ≥ 0>`,
    /// `spares=<u32>`, `join_every=<f64 ≥ 0>`,
    /// `fail_all_at=<f64 ≥ 0>`. The empty string is the churn-free spec.
    pub fn parse(s: &str) -> Result<ChurnSpec, FaultSpecError> {
        let mut spec = ChurnSpec::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| FaultSpecError::BadPair(item.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |expected: &'static str| FaultSpecError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
                expected,
            };
            let nonneg = || {
                value
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or_else(|| bad("a finite value ≥ 0"))
            };
            match key {
                "fail_every" => spec.fail_every = nonneg()?,
                "repair_after" => spec.repair_after = nonneg()?,
                "join_every" => spec.join_every = nonneg()?,
                "fail_all_at" => spec.fail_all_at = Some(nonneg()?),
                "spares" => {
                    spec.spares = value.parse().map_err(|_| bad("an unsigned integer"))?;
                }
                _ => return Err(FaultSpecError::UnknownKey(key.to_string())),
            }
        }
        Ok(spec)
    }

    /// Canonical `key=value,...` rendering; parses back to `self`.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "fail_every={},repair_after={},spares={},join_every={}",
            self.fail_every, self.repair_after, self.spares, self.join_every
        );
        if let Some(t) = self.fail_all_at {
            s.push_str(&format!(",fail_all_at={t}"));
        }
        s
    }

    /// True when this spec can emit no event at all.
    pub fn is_quiet(&self) -> bool {
        self.fail_every == 0.0
            && self.fail_all_at.is_none()
            && (self.spares == 0 || self.join_every == 0.0)
    }
}

/// One cluster-membership change in the online simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEventKind {
    /// The node with this index went down.
    Fail(u32),
    /// A previously failed node came back.
    Recover(u32),
    /// Spare number `k` (0-based; the consumer maps it past the initial
    /// capacity) joined the cluster for the first time.
    Join(u32),
    /// Every live node failed at once, permanently.
    FailAll,
}

// The vendored serde derive handles unit-variant enums only, so the
// data-carrying event kind serializes by hand as a single-key tagged
// object: `{"fail": 3}`, `{"fail_all": null}`, ...
impl Serialize for ChurnEventKind {
    fn to_value(&self) -> serde::Value {
        let (tag, payload) = match self {
            ChurnEventKind::Fail(q) => ("fail", serde::Value::Int(*q as i128)),
            ChurnEventKind::Recover(q) => ("recover", serde::Value::Int(*q as i128)),
            ChurnEventKind::Join(k) => ("join", serde::Value::Int(*k as i128)),
            ChurnEventKind::FailAll => ("fail_all", serde::Value::Null),
        };
        serde::Value::Object(vec![(tag.to_string(), payload)])
    }
}

impl Deserialize for ChurnEventKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .filter(|o| o.len() == 1)
            .ok_or_else(|| serde::DeError::expected("tagged object", "ChurnEventKind"))?;
        let (tag, payload) = &obj[0];
        let node = || u32::from_value(payload).map_err(|e| serde::DeError::custom(e.to_string()));
        match tag.as_str() {
            "fail" => Ok(ChurnEventKind::Fail(node()?)),
            "recover" => Ok(ChurnEventKind::Recover(node()?)),
            "join" => Ok(ChurnEventKind::Join(node()?)),
            "fail_all" => Ok(ChurnEventKind::FailAll),
            other => Err(serde::DeError::expected(
                "fail|recover|join|fail_all",
                &format!("ChurnEventKind tag `{other}`"),
            )),
        }
    }
}

/// A timestamped churn event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Simulated time of the membership change.
    pub time: f64,
    /// What changed.
    pub kind: ChurnEventKind,
}

/// Lazy, seeded generator of the churn event stream.
///
/// Times are sampled from exponential inter-arrival draws on a dedicated
/// ChaCha8 stream; failure *victims* are drawn uniformly over the nodes
/// alive at pop time, so the stream is deterministic for a deterministic
/// consumer. Lazy generation means an unbounded horizon costs nothing:
/// events are only materialized as the simulation advances past them.
#[derive(Debug, Clone)]
pub struct ChurnStream {
    spec: ChurnSpec,
    rng: ChaCha8Rng,
    next_fail: Option<f64>,
    fail_all: Option<f64>,
    /// Spare nodes join in index order at successive join times.
    next_join: Option<(f64, u32)>,
    spares_left: u32,
    /// Pending repairs as (time, node), kept sorted ascending by time.
    repairs: Vec<(f64, u32)>,
}

impl ChurnStream {
    /// Creates the stream for `spec`, seeded independently of the fault
    /// and workload streams.
    pub fn new(spec: &ChurnSpec, seed: u64) -> ChurnStream {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC1F7_85D1_A5B3_42E9);
        let next_fail = (spec.fail_every > 0.0).then(|| Self::exp(&mut rng, spec.fail_every));
        let next_join = (spec.spares > 0 && spec.join_every > 0.0)
            .then(|| (Self::exp(&mut rng, spec.join_every), 0));
        ChurnStream {
            spec: spec.clone(),
            rng,
            next_fail,
            fail_all: spec.fail_all_at,
            next_join,
            spares_left: spec.spares,
            repairs: Vec::new(),
        }
    }

    fn exp(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
        // Inverse-CDF exponential; `gen::<f64>()` is in [0, 1) so the
        // log argument stays strictly positive.
        -mean * (1.0 - rng.gen::<f64>()).ln()
    }

    /// Time of the next event, if any is scheduled.
    pub fn peek_time(&self) -> Option<f64> {
        let mut t: Option<f64> = None;
        let mut consider = |c: Option<f64>| {
            if let Some(ct) = c {
                t = Some(t.map_or(ct, |cur: f64| cur.min(ct)));
            }
        };
        consider(self.next_fail);
        consider(self.fail_all);
        consider(self.next_join.map(|(jt, _)| jt));
        consider(self.repairs.first().map(|&(rt, _)| rt));
        t
    }

    /// Pops the next event at or before `until`, given the nodes
    /// currently alive. Returns `None` when no event falls in the
    /// window. Failure victims are drawn over `alive`; a failure drawn
    /// while nothing is alive is consumed silently (there is nothing
    /// left to kill). After [`ChurnEventKind::FailAll`] the stream goes
    /// permanently quiet.
    pub fn pop_before(&mut self, until: f64, alive: &[bool]) -> Option<ChurnEvent> {
        loop {
            let t = self.peek_time()?;
            if t > until {
                return None;
            }
            // Total failure preempts and silences everything else.
            if self.fail_all == Some(t) {
                self.fail_all = None;
                self.next_fail = None;
                self.next_join = None;
                self.repairs.clear();
                return Some(ChurnEvent {
                    time: t,
                    kind: ChurnEventKind::FailAll,
                });
            }
            if let Some(&(rt, node)) = self.repairs.first() {
                if rt == t {
                    self.repairs.remove(0);
                    return Some(ChurnEvent {
                        time: t,
                        kind: ChurnEventKind::Recover(node),
                    });
                }
            }
            if let Some((jt, idx)) = self.next_join {
                if jt == t {
                    self.spares_left -= 1;
                    self.next_join = (self.spares_left > 0)
                        .then(|| (jt + Self::exp(&mut self.rng, self.spec.join_every), idx + 1));
                    return Some(ChurnEvent {
                        time: t,
                        kind: ChurnEventKind::Join(idx),
                    });
                }
            }
            if self.next_fail == Some(t) {
                self.next_fail = Some(t + Self::exp(&mut self.rng, self.spec.fail_every));
                let live: Vec<u32> = alive
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a)
                    .map(|(q, _)| q as u32)
                    .collect();
                if live.is_empty() {
                    continue; // nothing to kill; consume the draw
                }
                let victim = live[self.rng.gen_range(0..live.len())];
                if self.spec.repair_after > 0.0 {
                    let back = t + Self::exp(&mut self.rng, self.spec.repair_after);
                    let at = self.repairs.partition_point(|&(rt, _)| rt <= back);
                    self.repairs.insert(at, (back, victim));
                }
                return Some(ChurnEvent {
                    time: t,
                    kind: ChurnEventKind::Fail(victim),
                });
            }
        }
    }

    /// True when a capacity-restoring event (repair or join) is still
    /// scheduled — the online loop uses this to decide between waiting
    /// out a total outage and giving up with `NoSurvivors`.
    pub fn capacity_pending(&self) -> bool {
        !self.repairs.is_empty() || self.next_join.is_some()
    }
}

/// Maps a [`FaultEventKind`] onto the baseline ordering ranks (finish
/// before start at equal times) — used by tests comparing traces.
pub fn baseline_kind(kind: FaultEventKind) -> Option<EventKind> {
    match kind {
        FaultEventKind::Start => Some(EventKind::Start),
        FaultEventKind::Finish => Some(EventKind::Finish),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_schedule;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;
    use sched::{ListScheduler, Mapper};

    fn diamond() -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 2e9, 0.5);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    fn mapped(alloc: Vec<u32>) -> (Ptg, TimeMatrix, Allocation, Schedule) {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let a = Allocation::from_vec(alloc);
        let s = ListScheduler.map(&g, &m, &a);
        (g, m, a, s)
    }

    #[test]
    fn spec_grammar_round_trips() {
        let spec = FaultSpec::parse(
            "seed=42, perturb=0.2, straggler_prob=0.05, straggler_factor=4, \
             crash=0.1, retries=2, backoff=0.5, procfail=0.02",
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.perturb, 0.2);
        assert_eq!(spec.straggler_factor, 4.0);
        assert_eq!(spec.retries, 2);
        assert!(!spec.is_fault_free());
        assert!(FaultSpec::parse("").unwrap().is_fault_free());
        assert!(FaultSpec::parse("seed=7").unwrap().is_fault_free());
    }

    #[test]
    fn spec_errors_are_one_line_diagnostics() {
        for (input, needle) in [
            ("perturb", "key=value"),
            ("bogus=1", "unknown fault spec key"),
            ("crash=1.5", "probability in [0, 1]"),
            ("retries=99", "0..=16"),
            ("perturb=-1", "≥ 0"),
            ("straggler_factor=0.5", "≥ 1"),
            ("seed=abc", "unsigned integer"),
        ] {
            let err = FaultSpec::parse(input).unwrap_err().to_string();
            assert!(err.contains(needle), "{input}: {err}");
            assert!(!err.contains('\n'));
        }
    }

    #[test]
    fn plans_are_deterministic_per_trial_and_distinct_across_trials() {
        let spec = FaultSpec::parse("seed=3,perturb=0.3,crash=0.5,procfail=0.2").unwrap();
        let a = FaultPlan::realize(&spec, 0, 40, 8, 100.0);
        let b = FaultPlan::realize(&spec, 0, 40, 8, 100.0);
        let c = FaultPlan::realize(&spec, 1, 40, 8, 100.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn crash_lists_respect_the_retry_budget() {
        let spec = FaultSpec::parse("crash=1,retries=2").unwrap();
        let plan = FaultPlan::realize(&spec, 0, 10, 4, 100.0);
        assert!(plan.crashes.iter().all(|l| l.len() == 2));
        let none = FaultSpec::parse("crash=1,retries=0").unwrap();
        let plan = FaultPlan::realize(&none, 0, 10, 4, 100.0);
        assert!(plan.crashes.iter().all(Vec::is_empty));
    }

    #[test]
    fn at_least_one_processor_always_survives() {
        let spec = FaultSpec::parse("procfail=1").unwrap();
        for trial in 0..20 {
            let plan = FaultPlan::realize(&spec, trial, 5, 6, 50.0);
            assert!(plan.proc_fail.iter().any(Option::is_none), "trial {trial}");
        }
    }

    #[test]
    fn empty_plan_replay_is_bit_identical() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let plan = FaultPlan::empty(4, 4);
        let report = execute_with_faults(&g, &m, &s, &a, &plan).unwrap();
        assert_eq!(report.makespan, s.makespan(), "bit-identical makespan");
        let baseline: Vec<(f64, TaskId, bool)> = trace_schedule(&g, &s)
            .iter()
            .map(|e| (e.time, e.task, e.is_start))
            .collect();
        assert_eq!(report.start_finish_trace(), baseline);
        assert_eq!(report.retries, 0);
        assert_eq!(report.reschedules, 0);
    }

    #[test]
    fn perturbation_slows_the_run_down() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let mut plan = FaultPlan::empty(4, 4);
        plan.factors = vec![2.0; 4];
        let report = execute_with_faults(&g, &m, &s, &a, &plan).unwrap();
        assert!(report.makespan > s.makespan());
        // Dependencies still hold under the perturbed timeline.
        let finish_of = |t: u32| {
            report
                .events
                .iter()
                .find(|e| e.task == TaskId(t) && e.kind == FaultEventKind::Finish)
                .unwrap()
                .time
        };
        let start_of = |t: u32| {
            report
                .events
                .iter()
                .find(|e| e.task == TaskId(t) && e.kind == FaultEventKind::Start)
                .unwrap()
                .time
        };
        assert!(start_of(3) >= finish_of(1).max(finish_of(2)));
    }

    #[test]
    fn crashes_retry_with_backoff_and_complete() {
        let (g, m, a, s) = mapped(vec![1, 1, 1, 1]);
        let mut plan = FaultPlan::empty(4, 4);
        plan.crashes[0] = vec![0.5, 0.5]; // two crashes, then success
        plan.backoff_base = 1.0;
        let report = execute_with_faults(&g, &m, &s, &a, &plan).unwrap();
        assert_eq!(report.retries, 2);
        let crashes: Vec<f64> = report
            .events
            .iter()
            .filter(|e| e.kind == FaultEventKind::Crash)
            .map(|e| e.time)
            .collect();
        assert_eq!(crashes.len(), 2);
        let starts: Vec<f64> = report
            .events
            .iter()
            .filter(|e| e.task == TaskId(0) && e.kind == FaultEventKind::Start)
            .map(|e| e.time)
            .collect();
        assert_eq!(starts.len(), 3);
        // Backoff doubles: retry 0 waits 1s, retry 1 waits 2s.
        assert!((starts[1] - crashes[0] - 1.0).abs() < 1e-12);
        assert!((starts[2] - crashes[1] - 2.0).abs() < 1e-12);
        assert!(report.makespan > s.makespan());
        // Everything still finishes exactly once.
        let finishes = report
            .events
            .iter()
            .filter(|e| e.kind == FaultEventKind::Finish)
            .count();
        assert_eq!(finishes, 4);
    }

    #[test]
    fn processor_failure_triggers_reschedule_and_the_run_completes() {
        let (g, m, a, s) = mapped(vec![4, 2, 2, 4]);
        let mut plan = FaultPlan::empty(4, 4);
        // Kill processor 3 mid-run (during the wide source task).
        let t0 = s.placements[0].finish / 2.0;
        plan.proc_fail[3] = Some(t0);
        let report = execute_with_faults(&g, &m, &s, &a, &plan).unwrap();
        assert_eq!(report.processor_failures, vec![3]);
        assert!(report.reschedules >= 1);
        assert!(report.tasks_killed >= 1);
        assert!(report.makespan > s.makespan());
        // Nothing starts on the dead processor after the failure, and all
        // tasks finish.
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| e.kind == FaultEventKind::Finish)
                .count(),
            4
        );
    }

    #[test]
    fn fault_trials_summarize_the_degradation_distribution() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let spec = FaultSpec::parse("seed=9,perturb=0.5").unwrap();
        let summary = fault_trials(&g, &m, &s, &a, &spec, 20).unwrap();
        assert_eq!(summary.trials, 20);
        assert_eq!(summary.fault_free_makespan, s.makespan());
        assert!(summary.mean_degradation >= 1.0);
        assert!(summary.p95_degradation >= summary.mean_degradation * 0.9);
        assert!(summary.worst_degradation >= summary.p95_degradation);
        // Deterministic: same spec, same summary.
        let again = fault_trials(&g, &m, &s, &a, &spec, 20).unwrap();
        assert_eq!(summary, again);
    }

    #[test]
    fn fault_free_trials_report_unit_degradation() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let spec = FaultSpec::default();
        let summary = fault_trials(&g, &m, &s, &a, &spec, 3).unwrap();
        assert_eq!(summary.mean_degradation, 1.0);
        assert_eq!(summary.p95_degradation, 1.0);
        assert_eq!(summary.worst_degradation, 1.0);
        assert_eq!(summary.retries, 0);
        assert_eq!(summary.kinds, FaultKindBreakdown::default());
    }

    #[test]
    fn kill_all_surfaces_no_survivors_as_a_typed_error() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        let spec = FaultSpec::parse("seed=1,kill_all=0.5").unwrap();
        assert!(!spec.is_fault_free());
        let plan = FaultPlan::realize(&spec, 0, 4, 4, s.makespan());
        assert!(plan.proc_fail.iter().all(Option::is_some));
        let err =
            execute_with_faults(&g, &m, &s, &a, &plan).expect_err("total failure must be an error");
        assert_eq!(err, RescheduleError::NoSurvivors);
        let err = fault_trials(&g, &m, &s, &a, &spec, 2).expect_err("trials propagate");
        assert_eq!(err, RescheduleError::NoSurvivors);
    }

    #[test]
    fn kind_breakdown_attributes_events_to_their_sources() {
        let (g, m, a, s) = mapped(vec![2, 1, 2, 4]);
        // Stragglers always fire, perturbation always draws, no crashes
        // or node failures.
        let spec =
            FaultSpec::parse("seed=5,perturb=0.4,straggler_prob=1,straggler_factor=2").unwrap();
        let summary = fault_trials(&g, &m, &s, &a, &spec, 4).unwrap();
        let k = &summary.kinds;
        assert_eq!(k.straggler.trials_affected, 4);
        assert_eq!(k.straggler.events, 16, "every task a straggler");
        assert!(k.straggler.mean_degradation >= 2.0, "{k:?}");
        assert!(k.perturb.trials_affected >= 1);
        assert!(k.perturb.mean_degradation >= 1.0);
        assert_eq!(k.crash, KindStat::default());
        assert_eq!(k.node_failure, KindStat::default());
        // Crash-only spec populates only the crash kind.
        let spec = FaultSpec::parse("seed=5,crash=1,retries=1,backoff=1").unwrap();
        let summary = fault_trials(&g, &m, &s, &a, &spec, 2).unwrap();
        assert_eq!(summary.kinds.crash.trials_affected, 2);
        assert_eq!(summary.kinds.crash.events, summary.retries);
        assert!(summary.kinds.crash.mean_degradation > 1.0);
        assert_eq!(summary.kinds.straggler, KindStat::default());
    }

    #[test]
    fn churn_grammar_round_trips_and_rejects_bad_input() {
        let spec =
            ChurnSpec::parse("fail_every=30, repair_after=90, spares=2, join_every=120").unwrap();
        assert_eq!(spec.fail_every, 30.0);
        assert_eq!(spec.spares, 2);
        assert!(!spec.is_quiet());
        assert_eq!(ChurnSpec::parse(&spec.canonical()).unwrap(), spec);
        assert!(ChurnSpec::parse("").unwrap().is_quiet());
        // Spares without a join rate can never appear.
        assert!(ChurnSpec::parse("spares=3").unwrap().is_quiet());
        let all = ChurnSpec::parse("fail_all_at=100").unwrap();
        assert!(!all.is_quiet());
        assert_eq!(ChurnSpec::parse(&all.canonical()).unwrap(), all);
        for (input, needle) in [
            ("fail_every", "key=value"),
            ("bogus=1", "unknown fault spec key"),
            ("fail_every=-2", "≥ 0"),
            ("spares=x", "unsigned integer"),
        ] {
            let err = ChurnSpec::parse(input).unwrap_err().to_string();
            assert!(err.contains(needle), "{input}: {err}");
            assert!(!err.contains('\n'));
        }
    }

    #[test]
    fn churn_stream_is_deterministic_and_repairs_follow_failures() {
        let spec = ChurnSpec::parse("fail_every=10,repair_after=20").unwrap();
        let drain = |mut s: ChurnStream| {
            let mut alive = vec![true; 4];
            let mut events = Vec::new();
            while let Some(ev) = s.pop_before(200.0, &alive) {
                match ev.kind {
                    ChurnEventKind::Fail(q) => alive[q as usize] = false,
                    ChurnEventKind::Recover(q) => alive[q as usize] = true,
                    _ => {}
                }
                events.push(ev);
            }
            events
        };
        let a = drain(ChurnStream::new(&spec, 42));
        let b = drain(ChurnStream::new(&spec, 42));
        assert_eq!(a, b, "same seed, same stream");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time), "ordered");
        assert!(a.iter().any(|e| matches!(e.kind, ChurnEventKind::Fail(_))));
        assert!(a
            .iter()
            .any(|e| matches!(e.kind, ChurnEventKind::Recover(_))));
        let c = drain(ChurnStream::new(&spec, 43));
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn churn_joins_and_fail_all_behave() {
        let spec = ChurnSpec::parse("spares=2,join_every=5").unwrap();
        let mut s = ChurnStream::new(&spec, 7);
        assert!(s.capacity_pending());
        let alive = vec![true; 4];
        let j0 = s.pop_before(f64::INFINITY, &alive).unwrap();
        let j1 = s.pop_before(f64::INFINITY, &alive).unwrap();
        assert_eq!(j0.kind, ChurnEventKind::Join(0));
        assert_eq!(j1.kind, ChurnEventKind::Join(1));
        assert!(j0.time <= j1.time);
        assert!(s.pop_before(f64::INFINITY, &alive).is_none());
        assert!(!s.capacity_pending());
        // fail_all_at silences everything after it fires.
        let spec = ChurnSpec::parse("fail_every=1,repair_after=1,fail_all_at=10").unwrap();
        let mut s = ChurnStream::new(&spec, 7);
        let mut saw_fail_all = false;
        let mut live = vec![true; 4];
        while let Some(ev) = s.pop_before(1000.0, &live) {
            match ev.kind {
                ChurnEventKind::Fail(q) => live[q as usize] = false,
                ChurnEventKind::Recover(q) => live[q as usize] = true,
                ChurnEventKind::FailAll => {
                    assert_eq!(ev.time, 10.0);
                    saw_fail_all = true;
                }
                ChurnEventKind::Join(_) => unreachable!("no spares"),
            }
            assert!(
                !saw_fail_all || matches!(ev.kind, ChurnEventKind::FailAll),
                "events after total failure"
            );
        }
        assert!(saw_fail_all);
        assert!(!s.capacity_pending());
    }
}
