//! Execution traces: the simulator's event log as data.
//!
//! A trace records every start/finish the replay engine processes, in
//! simulation order, together with the running processor occupancy. Traces
//! feed visualizations and make regressions diagnosable ("which task
//! started late?") without stepping through the executor.

use crate::event::{Event, EventKind, EventQueue};
use ptg::{Ptg, TaskId};
use sched::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One logged simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulation time.
    pub time: f64,
    /// The task starting or finishing.
    pub task: TaskId,
    /// True for a start event, false for a finish.
    pub is_start: bool,
    /// Busy processors immediately *after* this event.
    pub busy_processors: u32,
    /// Running tasks immediately after this event.
    pub running_tasks: usize,
}

/// Produces the full event trace of a schedule (assumed valid — run
/// [`crate::executor::execute`] first if unsure; this function only
/// replays order, it does not re-validate).
pub fn trace_schedule(g: &Ptg, schedule: &Schedule) -> Vec<TraceEntry> {
    let mut queue = EventQueue::new();
    for pl in &schedule.placements {
        queue.push(Event {
            time: pl.start,
            kind: EventKind::Start,
            task: pl.task,
        });
        queue.push(Event {
            time: pl.finish,
            kind: EventKind::Finish,
            task: pl.task,
        });
    }
    let mut busy = 0u32;
    let mut running = 0usize;
    let mut out = Vec::with_capacity(g.task_count() * 2);
    while let Some(ev) = queue.pop() {
        let width = schedule.placement(ev.task).width();
        let is_start = matches!(ev.kind, EventKind::Start);
        if is_start {
            busy += width;
            running += 1;
        } else {
            busy -= width;
            running -= 1;
        }
        out.push(TraceEntry {
            time: ev.time,
            task: ev.task,
            is_start,
            busy_processors: busy,
            running_tasks: running,
        });
    }
    out
}

/// Renders a trace as a human-readable timeline.
pub fn render_trace(g: &Ptg, trace: &[TraceEntry]) -> String {
    let mut out = String::new();
    for e in trace {
        let _ = writeln!(
            out,
            "{:>10.4}s  {:<6} {:<16} busy={:<4} running={}",
            e.time,
            if e.is_start { "start" } else { "finish" },
            g.task(e.task).name,
            e.busy_processors,
            e.running_tasks
        );
    }
    out
}

/// The processor-occupancy step function `(time, busy)` of a trace —
/// plottable as a utilization profile.
pub fn occupancy_profile(trace: &[TraceEntry]) -> Vec<(f64, u32)> {
    trace.iter().map(|e| (e.time, e.busy_processors)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{Amdahl, TimeMatrix};
    use ptg::PtgBuilder;
    use sched::{Allocation, ListScheduler, Mapper};

    fn setup() -> (Ptg, Schedule) {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 2e9, 0.0);
        let c = b.add_task("c", 2e9, 0.0);
        let d = b.add_task("d", 2e9, 0.0);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, d).unwrap();
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let s = ListScheduler.map(&g, &m, &Allocation::from_vec(vec![4, 2, 2]));
        (g, s)
    }

    #[test]
    fn trace_has_two_events_per_task() {
        let (g, s) = setup();
        let t = trace_schedule(&g, &s);
        assert_eq!(t.len(), 2 * g.task_count());
        assert_eq!(t.iter().filter(|e| e.is_start).count(), g.task_count());
    }

    #[test]
    fn occupancy_starts_and_ends_at_zero() {
        let (g, s) = setup();
        let t = trace_schedule(&g, &s);
        assert_eq!(t.first().unwrap().busy_processors, 4); // a starts on all 4
        assert_eq!(t.last().unwrap().busy_processors, 0);
        assert_eq!(t.last().unwrap().running_tasks, 0);
    }

    #[test]
    fn times_are_non_decreasing() {
        let (g, s) = setup();
        let t = trace_schedule(&g, &s);
        for w in t.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn concurrent_children_overlap_in_the_trace() {
        let (g, s) = setup();
        let t = trace_schedule(&g, &s);
        let max_running = t.iter().map(|e| e.running_tasks).max().unwrap();
        assert_eq!(max_running, 2, "c and d run concurrently");
        let max_busy = t.iter().map(|e| e.busy_processors).max().unwrap();
        assert_eq!(max_busy, 4);
    }

    #[test]
    fn render_mentions_every_task() {
        let (g, s) = setup();
        let txt = render_trace(&g, &trace_schedule(&g, &s));
        for v in g.task_ids() {
            assert!(txt.contains(&g.task(v).name));
        }
        assert!(txt.contains("start"));
        assert!(txt.contains("finish"));
    }

    #[test]
    fn occupancy_profile_matches_trace_length() {
        let (g, s) = setup();
        let t = trace_schedule(&g, &s);
        assert_eq!(occupancy_profile(&t).len(), t.len());
    }
}
