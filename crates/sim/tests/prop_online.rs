//! Property-based guarantees for the online control loop.
//!
//! Two contracts, checked over random master seeds:
//!
//! 1. **One-shot identity** — `--online` with a single job, zero churn
//!    and an unbounded epoch budget degenerates to the one-shot
//!    optimizer: the job is planned exactly once, at epoch 0, by the
//!    same EMTS run on the same matrix, so its completion time equals
//!    the one-shot best makespan *bit for bit*. The rolling-horizon
//!    machinery must be a no-op wrapper when nothing is rolling.
//! 2. **Seeded reproducibility** — a fixed config reproduces the entire
//!    simulated-time record on every run: the epoch-by-epoch event
//!    trace, per-job outcomes, adopted rings, and makespan bits. Only
//!    `*_seconds` wall-clock fields may differ.

use proptest::prelude::*;

use emts::{Emts, EmtsConfig};
use exec_model::{Amdahl, TimeMatrix};
use obs::NoopRecorder;
use platform::Cluster;
use sim::faults::ChurnSpec;
use sim::online::{epoch_seed, run_online, OnlineConfig};
use workloads::stream::item;
use workloads::CostConfig;

fn cluster() -> Cluster {
    Cluster::new("prop", 16, 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single job, zero churn, unbounded budget ⇒ the online completion
    /// time is the one-shot EMTS makespan, bit for bit.
    #[test]
    fn degenerate_online_run_matches_the_one_shot_optimizer(seed in 0u64..u64::MAX) {
        let cluster = cluster();
        let cfg = OnlineConfig {
            seed,
            jobs: 1,
            arrival_mean: 0.0,
            epoch: 60.0,
            epoch_budget: None,
            churn: ChurnSpec::default(),
            emts: Some(EmtsConfig::emts5()),
            ..OnlineConfig::default()
        };
        let report = run_online(&cluster, &Amdahl, &cfg, &NoopRecorder)
            .expect("a churn-free run always completes");

        // The reference: the same graph, matrix and seed through the
        // plain one-shot entry point.
        let g = item(seed, 0, &CostConfig::default()).ptg;
        let m = TimeMatrix::compute(&g, &Amdahl, cluster.speed_flops(), cluster.processors);
        let oneshot = Emts::new(EmtsConfig::emts5()).run(&g, &m, epoch_seed(seed, 0));

        prop_assert_eq!(report.jobs.len(), 1);
        let job = &report.jobs[0];
        prop_assert_eq!(job.arrival, 0.0);
        prop_assert_eq!(job.queue_wait, 0.0, "nothing to wait behind");
        prop_assert_eq!(
            job.completion.to_bits(),
            oneshot.best_makespan.to_bits(),
            "online completion {} != one-shot makespan {}",
            job.completion,
            oneshot.best_makespan
        );
        prop_assert_eq!(report.totals.makespan.to_bits(), oneshot.best_makespan.to_bits());
        // Planned exactly once, by ring 0, and never again.
        prop_assert_eq!(report.totals.decision_epochs, 1);
        prop_assert_eq!(report.totals.ring0_epochs, 1);
        prop_assert_eq!(report.totals.watchdog_degraded, 0);
        prop_assert_eq!(report.totals.deadline_overruns, 0);
        prop_assert_eq!(report.totals.reactive_replans, 0);
    }

    /// Fixed seed ⇒ identical event traces, job outcomes and epoch
    /// decisions across runs, even under heavy churn.
    #[test]
    fn seeded_online_runs_are_deterministic(seed in 0u64..u64::MAX) {
        let cluster = cluster();
        let cfg = OnlineConfig {
            seed,
            jobs: 4,
            arrival_mean: 20.0,
            epoch: 45.0,
            epoch_budget: None,
            churn: ChurnSpec::parse(
                "fail_every=80,repair_after=120,spares=2,join_every=150",
            ).unwrap(),
            emts: Some(EmtsConfig::emts5()),
            ..OnlineConfig::default()
        };
        let a = run_online(&cluster, &Amdahl, &cfg, &NoopRecorder).unwrap();
        let b = run_online(&cluster, &Amdahl, &cfg, &NoopRecorder).unwrap();

        prop_assert_eq!(&a.events, &b.events, "event traces diverged");
        prop_assert_eq!(&a.jobs, &b.jobs, "job outcomes diverged");
        prop_assert_eq!(a.totals.makespan.to_bits(), b.totals.makespan.to_bits());
        let decisions = |r: &sim::online::OnlineReport| -> Vec<(usize, u8, usize, usize, bool)> {
            r.epochs
                .iter()
                .map(|e| (e.epoch, e.ring, e.backlog, e.admitted, e.degraded))
                .collect()
        };
        prop_assert_eq!(decisions(&a), decisions(&b), "epoch decisions diverged");
        prop_assert_eq!(a.totals.tasks_killed, b.totals.tasks_killed);
        prop_assert_eq!(a.totals.node_failures, b.totals.node_failures);
    }
}

/// A single-node cluster that keeps dying and recovering: the loop must
/// stall through the total outages (capacity is pending) and still
/// finish every job.
#[test]
fn total_outage_with_pending_repair_stalls_and_recovers() {
    let cluster = Cluster::new("fragile", 1, 2.0);
    let cfg = OnlineConfig {
        seed: 42,
        jobs: 2,
        arrival_mean: 10.0,
        epoch: 30.0,
        churn: ChurnSpec::parse("fail_every=200,repair_after=50").unwrap(),
        emts: None, // reactive-only: the point is survival, not quality
        ..OnlineConfig::default()
    };
    let report = run_online(&cluster, &Amdahl, &cfg, &NoopRecorder)
        .expect("repairs are always pending, so the run must finish");
    assert_eq!(report.totals.completed, 2);
    assert!(report.totals.node_failures >= 1, "the node must have died");
    assert_eq!(
        report.totals.node_failures, report.totals.node_recoveries,
        "every failure is followed by a repair"
    );
    assert_eq!(report.mode, "reactive");
    assert_eq!(report.totals.ring0_epochs + report.totals.ring1_epochs, 0);
}
