//! Integration tests driving the `emts-sim` binary.
//!
//! Invalid input must produce a non-zero exit status and a one-line error
//! on stderr — never a panic, a backtrace, or a zero exit. Valid input
//! must succeed, including the fault-injection path.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn emts_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_emts-sim"))
        .args(args)
        .output()
        .expect("binary spawns")
}

/// The first stderr line, which must carry the whole diagnostic.
fn first_stderr_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr)
        .lines()
        .next()
        .unwrap_or_default()
        .to_string()
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emts-sim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("temp file");
    path
}

fn valid_platform() -> PathBuf {
    write_temp("ok.platform", "name test\nprocessors 8\nspeed_gflops 2.0\n")
}

fn valid_ptg() -> PathBuf {
    write_temp(
        "ok.ptg",
        "task a 2e9 0.1\ntask b 3e9 0.2\ntask c 1e9 0.0\nedge 0 1\nedge 0 2\n",
    )
}

fn assert_clean_failure(out: &Output, needle: &str, ctx: &str) {
    assert!(!out.status.success(), "{ctx}: must exit non-zero");
    let line = first_stderr_line(out);
    assert!(
        line.contains(needle),
        "{ctx}: first stderr line {line:?} must mention {needle:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked"),
        "{ctx}: must not panic: {stderr}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = emts_sim(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert_clean_failure(&out, "unknown flag", "--bogus");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_required_flags_are_usage_errors() {
    let out = emts_sim(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert_clean_failure(&out, "--platform is required", "no args");
}

#[test]
fn bad_fault_spec_is_a_usage_error() {
    for (spec, needle) in [
        ("bogus=1", "unknown fault spec key"),
        ("crash=1.5", "probability"),
        ("perturb", "key=value"),
    ] {
        let out = emts_sim(&["--faults", spec]);
        assert_eq!(out.status.code(), Some(2), "--faults {spec}");
        assert_clean_failure(&out, needle, spec);
    }
}

#[test]
fn bad_numeric_flags_are_usage_errors() {
    for args in [["--trials", "0"], ["--trials", "many"], ["--seed", "-1"]] {
        let out = emts_sim(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert_clean_failure(&out, "bad", &args.join(" "));
    }
}

#[test]
fn missing_input_file_fails_cleanly() {
    let ptg = valid_ptg();
    let out = emts_sim(&[
        "--platform",
        "/nonexistent/chti.platform",
        "--ptg",
        ptg.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_clean_failure(
        &out,
        "cannot read /nonexistent/chti.platform",
        "missing file",
    );
}

#[test]
fn garbage_platform_file_fails_with_the_path_and_line() {
    let bad = write_temp("bad.platform", "name x\nprocessors 0\nspeed_gflops 1\n");
    let ptg = valid_ptg();
    let out = emts_sim(&[
        "--platform",
        bad.to_str().unwrap(),
        "--ptg",
        ptg.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    // The diagnostic names the file and the offending line.
    assert_clean_failure(&out, "bad.platform", "zero processors");
    assert_clean_failure(&out, "line 2", "zero processors");
}

#[test]
fn garbage_ptg_file_fails_with_the_path_and_line() {
    let platform = valid_platform();
    let bad = write_temp("bad.ptg", "task a 1e9 0.1\ntask b -5 0.2\n");
    let out = emts_sim(&[
        "--platform",
        platform.to_str().unwrap(),
        "--ptg",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_clean_failure(&out, "bad.ptg", "negative flop");
    assert_clean_failure(&out, "line 2", "negative flop");
}

#[test]
fn truncated_binary_garbage_ptg_fails_cleanly() {
    let platform = valid_platform();
    let garbage = write_temp("garbage.ptg", "\u{0}\u{1}\u{2} not a ptg\n");
    let out = emts_sim(&[
        "--platform",
        platform.to_str().unwrap(),
        "--ptg",
        garbage.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_clean_failure(&out, "garbage.ptg", "binary garbage");
}

#[test]
fn valid_run_with_faults_succeeds_and_reports_the_distribution() {
    let platform = valid_platform();
    let ptg = valid_ptg();
    let out = emts_sim(&[
        "--platform",
        platform.to_str().unwrap(),
        "--ptg",
        ptg.to_str().unwrap(),
        "--algorithm",
        "mcpa",
        "--faults",
        "seed=7,perturb=0.2,crash=0.1",
        "--trials",
        "4",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("faults ["),
        "missing fault summary: {stdout}"
    );
    assert!(stdout.contains("degradation mean"), "{stdout}");
}

#[test]
fn fault_free_spec_reports_unit_degradation() {
    // `--faults "seed=7"` arms no fault source: degradation must be
    // exactly 1x across all trials (bit-identity of the replay).
    let platform = valid_platform();
    let ptg = valid_ptg();
    let out = emts_sim(&[
        "--platform",
        platform.to_str().unwrap(),
        "--ptg",
        ptg.to_str().unwrap(),
        "--algorithm",
        "mcpa",
        "--faults",
        "seed=7",
        "--trials",
        "3",
        "--json",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report = serde_json::parse(&stdout).expect("valid JSON report");
    let faults = report.get("faults").expect("report carries a faults block");
    let ratio = |key: &str| match faults.get(key) {
        Some(serde::Value::Float(v)) => *v,
        Some(serde::Value::Int(v)) => *v as f64,
        other => panic!("{key}: expected a number, got {other:?}"),
    };
    assert_eq!(ratio("mean_degradation"), 1.0);
    assert_eq!(ratio("worst_degradation"), 1.0);
    assert_eq!(ratio("retries"), 0.0);
}

#[test]
fn report_flag_writes_a_loadable_run_report() {
    let platform = valid_platform();
    let ptg = valid_ptg();
    let report_path = std::env::temp_dir().join(format!(
        "emts-sim-cli-{}/fault.report.json",
        std::process::id()
    ));
    let out = emts_sim(&[
        "--platform",
        platform.to_str().unwrap(),
        "--ptg",
        ptg.to_str().unwrap(),
        "--algorithm",
        "mcpa",
        "--faults",
        "seed=7,crash=0.3",
        "--trials",
        "2",
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let loaded = obs::RunReport::load(Path::new(&report_path)).expect("report loads");
    assert_eq!(loaded.meta["algorithm"], "MCPA");
}

#[test]
fn kill_all_fault_is_a_clean_one_line_failure() {
    // Satellite of the typed `NoSurvivors` error: the whole platform
    // dying mid-run must surface as a one-line diagnostic, not a panic.
    let platform = valid_platform();
    let ptg = valid_ptg();
    let out = emts_sim(&[
        "--platform",
        platform.to_str().unwrap(),
        "--ptg",
        ptg.to_str().unwrap(),
        "--algorithm",
        "mcpa",
        "--faults",
        "seed=3,kill_all=0.5",
    ]);
    assert_clean_failure(&out, "no surviving processors", "kill_all fault run");
    assert_eq!(out.status.code(), Some(1), "runtime failure, not usage");
}

#[test]
fn online_mode_rejects_one_shot_flags() {
    let platform = valid_platform();
    let ptg = valid_ptg();
    for extra in [
        &["--ptg", ptg.to_str().unwrap()][..],
        &["--faults", "seed=1"][..],
        &["--gantt"][..],
    ] {
        let mut args = vec!["--online", "--platform", platform.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = emts_sim(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{extra:?} must be a usage error in online mode"
        );
        assert_clean_failure(&out, "--online", &format!("online + {extra:?}"));
    }
}

#[test]
fn online_total_outage_without_repair_fails_cleanly() {
    let platform = valid_platform();
    let out = emts_sim(&[
        "--online",
        "--platform",
        platform.to_str().unwrap(),
        "--jobs",
        "2",
        "--seed",
        "7",
        "--churn",
        "fail_all_at=40",
        "--reactive-only",
    ]);
    assert_clean_failure(&out, "no surviving processors", "online fail_all churn");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn online_json_is_reproducible_modulo_wall_clock() {
    // Same seed, same config: the JSON reports must agree on every line
    // except the `*_seconds` wall-clock measurements.
    let platform = valid_platform();
    let run = || {
        let out = emts_sim(&[
            "--online",
            "--platform",
            platform.to_str().unwrap(),
            "--jobs",
            "3",
            "--seed",
            "11",
            "--arrival-mean",
            "25",
            "--epoch",
            "50",
            "--churn",
            "fail_every=150,repair_after=90",
            "--json",
        ]);
        assert!(
            out.status.success(),
            "online run failed: {}",
            first_stderr_line(&out)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains("_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (a, b) = (run(), run());
    assert!(a.contains("\"rolling\""), "mode must be rolling: {a}");
    assert_eq!(a, b, "seeded online runs diverged");
}
