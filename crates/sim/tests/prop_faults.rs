//! Property-based guarantees for the fault-injection layer.
//!
//! Two contracts, checked over random DAGGEN PTGs:
//!
//! 1. **Fault-free transparency** — replaying a schedule under the empty
//!    [`FaultPlan`] is bit-identical to the baseline: same makespan bits
//!    and the same start/finish event trace as
//!    [`sim::trace::trace_schedule`]. The dynamic executor must be a
//!    no-op wrapper when nothing goes wrong.
//! 2. **Seeded reproducibility** — under a fixed spec seed, realized
//!    plans, replay event logs and the aggregated [`FaultSummary`] are
//!    identical across runs. Fault experiments must be replayable.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{allocate_and_map, Mcpa};
use ptg::Ptg;
use sched::{Allocation, ListScheduler, Mapper, Schedule};
use sim::faults::{execute_with_faults, fault_trials, FaultPlan, FaultSpec};
use sim::trace::trace_schedule;
use workloads::daggen::{random_ptg, DaggenParams};
use workloads::CostConfig;

/// A random DAGGEN PTG scheduled by MCPA + list scheduling.
fn scheduled(
    n: usize,
    width: f64,
    density: f64,
    jump: usize,
    p: u32,
    seed: u64,
) -> (Ptg, TimeMatrix, Allocation, Schedule) {
    let params = DaggenParams {
        n,
        width,
        regularity: 0.5,
        density,
        jump,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = random_ptg(&params, &CostConfig::default(), &mut rng);
    let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, p);
    let (alloc, _) = allocate_and_map(&Mcpa, &g, &m);
    let s = ListScheduler.map(&g, &m, &alloc);
    (g, m, alloc, s)
}

/// (n, width, density, jump, p, seed) — width/density drawn from the
/// paper's parameter levels by index.
fn scenario() -> impl Strategy<Value = (usize, f64, f64, usize, u32, u64)> {
    const WIDTHS: [f64; 3] = [0.2, 0.5, 0.8];
    const DENSITIES: [f64; 2] = [0.2, 0.8];
    (
        2usize..40,
        0usize..3,
        0usize..2,
        0usize..3,
        2u32..24,
        0u64..u64::MAX,
    )
        .prop_map(|(n, w, d, jump, p, seed)| (n, WIDTHS[w], DENSITIES[d], jump, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Empty plan ⇒ the faulty executor degenerates to the baseline
    /// replay, bit for bit.
    #[test]
    fn fault_free_replay_is_bit_identical(
        (n, width, density, jump, p, seed) in scenario()
    ) {
        let (g, m, alloc, s) = scheduled(n, width, density, jump, p, seed);
        let plan = FaultPlan::empty(g.task_count(), s.processors);
        let report = execute_with_faults(&g, &m, &s, &alloc, &plan).unwrap();

        prop_assert_eq!(
            report.makespan.to_bits(),
            s.makespan().to_bits(),
            "makespan drifted under the empty plan"
        );
        prop_assert_eq!(report.retries, 0);
        prop_assert_eq!(report.tasks_killed, 0);
        prop_assert_eq!(report.reschedules, 0);
        prop_assert!(report.processor_failures.is_empty());

        // Event-level identity: same (time, task, is_start) sequence as
        // the static trace, with bit-equal times.
        let baseline: Vec<(u64, ptg::TaskId, bool)> = trace_schedule(&g, &s)
            .iter()
            .map(|e| (e.time.to_bits(), e.task, e.is_start))
            .collect();
        let faulty: Vec<(u64, ptg::TaskId, bool)> = report
            .start_finish_trace()
            .iter()
            .map(|&(t, v, st)| (t.to_bits(), v, st))
            .collect();
        prop_assert_eq!(faulty, baseline, "event traces diverged");
    }

    /// Fixed seed ⇒ identical plans, event logs and trial summaries on
    /// every run.
    #[test]
    fn seeded_fault_runs_are_deterministic(
        (n, width, density, jump, p, seed) in scenario()
    ) {
        let (g, m, alloc, s) = scheduled(n, width, density, jump, p, seed);
        let spec = FaultSpec::parse(
            "seed=9,perturb=0.15,straggler_prob=0.1,straggler_factor=3,\
             crash=0.2,retries=2,backoff=0.3,procfail=0.1",
        ).unwrap();

        let plan_a = FaultPlan::realize(&spec, 0, g.task_count(), s.processors, s.makespan());
        let plan_b = FaultPlan::realize(&spec, 0, g.task_count(), s.processors, s.makespan());
        prop_assert_eq!(&plan_a, &plan_b, "plan realization is nondeterministic");

        let run_a = execute_with_faults(&g, &m, &s, &alloc, &plan_a).unwrap();
        let run_b = execute_with_faults(&g, &m, &s, &alloc, &plan_b).unwrap();
        prop_assert_eq!(run_a.makespan.to_bits(), run_b.makespan.to_bits());
        prop_assert_eq!(&run_a.events, &run_b.events, "event logs diverged");

        let sum_a = fault_trials(&g, &m, &s, &alloc, &spec, 5).unwrap();
        let sum_b = fault_trials(&g, &m, &s, &alloc, &spec, 5).unwrap();
        prop_assert_eq!(sum_a, sum_b, "trial summaries diverged");
    }
}
