//! Property-based tests for the allocation heuristics.

use exec_model::{Amdahl, SyntheticModel, TimeMatrix};
use heuristics::{Allocator, BestSpeedup, Cpa, DeltaCritical, Hcpa, Mcpa, Mcpa2};
use proptest::prelude::*;
use ptg::levels::PrecedenceLevels;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::daggen::{random_ptg, DaggenParams};
use workloads::CostConfig;

fn scenario() -> impl Strategy<Value = (DaggenParams, u64, u32)> {
    (
        2usize..50,
        0.15f64..0.9,
        0.0f64..=1.0,
        0.1f64..0.9,
        0usize..3,
        0u64..10_000,
        2u32..50,
    )
        .prop_map(|(n, width, regularity, density, jump, seed, procs)| {
            (
                DaggenParams {
                    n,
                    width,
                    regularity,
                    density,
                    jump,
                },
                seed,
                procs,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_allocators_produce_platform_valid_allocations(
        (params, seed, procs) in scenario()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, procs);
        for a in [
            &Cpa::default() as &dyn Allocator,
            &Hcpa,
            &Mcpa,
            &Mcpa2,
            &DeltaCritical::default(),
            &BestSpeedup,
        ] {
            let alloc = a.allocate(&g, &m);
            prop_assert!(alloc.is_valid_for(&g, procs), "{} produced invalid alloc", a.name());
        }
    }

    #[test]
    fn mcpa_level_sums_respect_the_platform_bound(
        (params, seed, procs) in scenario()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &Amdahl, 3.1e9, procs);
        let levels = PrecedenceLevels::compute(&g);
        for allocator in [&Mcpa as &dyn Allocator, &Mcpa2] {
            let alloc = allocator.allocate(&g, &m);
            for (l, tasks) in levels.iter() {
                let sum: u32 = tasks.iter().map(|&v| alloc.of(v)).sum();
                // Levels wider than P already violate the bound at the
                // all-ones floor; MCPA only promises not to grow past it.
                let bound = procs.max(tasks.len() as u32);
                prop_assert!(
                    sum <= bound,
                    "{}: level {} sum {} > bound {}",
                    allocator.name(), l, sum, bound
                );
            }
        }
    }

    #[test]
    fn hcpa_allocations_dominate_all_ones_makespan_under_amdahl(
        (params, seed, procs) in scenario()
    ) {
        // Under a monotonic model CPA-family growth only stops when the
        // area bound dominates; the resulting schedule should rarely --
        // and on these instances never -- be worse than trivial all-ones
        // by more than the list-scheduling noise margin.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &Amdahl, 3.1e9, procs);
        let (_, hcpa) = heuristics::allocate_and_map(&Hcpa, &g, &m);
        let (_, ones) = heuristics::allocate_and_map(&heuristics::AllOne, &g, &m);
        prop_assert!(hcpa <= ones * 1.6 + 1e-9,
            "HCPA {} catastrophically worse than all-ones {}", hcpa, ones);
    }

    #[test]
    fn cpa_total_allocation_grows_monotonically_with_platform(
        (params, seed, _procs) in scenario()
    ) {
        // More processors ⇒ the area bound kicks in later ⇒ CPA ends with
        // at least as much total allocation.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let mut prev_total = 0u32;
        for procs in [4u32, 8, 16, 32] {
            let m = TimeMatrix::compute(&g, &Amdahl, 3.1e9, procs);
            let alloc = Cpa::default().allocate(&g, &m);
            let total: u32 = alloc.as_slice().iter().sum();
            prop_assert!(total + 2 >= prev_total,
                "P={}: total {} shrank well below {}", procs, total, prev_total);
            prev_total = total;
        }
    }

    #[test]
    fn delta_critical_gives_critical_tasks_the_largest_shares(
        (params, seed, procs) in scenario()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &Amdahl, 3.1e9, procs);
        let alloc = DeltaCritical::default().allocate(&g, &m);
        // Every allocation is either 1 (non-critical) or the share of its
        // layer; shares are ≥ 1 by construction.
        let levels = PrecedenceLevels::compute(&g);
        for (_, tasks) in levels.iter() {
            let distinct: std::collections::BTreeSet<u32> =
                tasks.iter().map(|&v| alloc.of(v)).collect();
            prop_assert!(distinct.len() <= 2,
                "a layer mixes more than {{1, share}}: {distinct:?}");
        }
    }
}
