//! CPR — Critical Path Reduction (related-work extension).
//!
//! A. Rădulescu, C. Nicolescu, A. J. C. van Gemund, P. Jonker, "CPR: Mixed
//! Task and Data Parallel Scheduling for Distributed Systems", IPDPS 2001 —
//! cited in the paper's related work. Unlike the two-step CPA family, CPR
//! evaluates the *complete schedule* inside its growth loop: starting from
//! one processor per task, it repeatedly tries to widen a critical-path
//! task by one processor, keeps the change only if the **mapped makespan**
//! actually drops, and stops when no critical-path task improves it.
//!
//! This makes CPR far more expensive than CPA — each trial is a full
//! mapping — but immune to the "allocation looks good on paper, packs
//! badly" failure mode. It is also naturally robust to non-monotonic
//! models: a widening that slows the schedule is simply not kept. The
//! trade-off mirrors the paper's one-step vs two-step discussion (§II-B).

use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::critpath::critical_path;
use ptg::Ptg;
use sched::{Allocation, ListScheduler, Mapper};

/// The CPR allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cpr;

impl Allocator for Cpr {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        let p_total = matrix.p_max();
        let mut alloc = Allocation::ones(g.task_count());
        let mut best_ms = ListScheduler.makespan(g, matrix, &alloc);
        // Each accepted step increases Σ alloc by ≥ 1 (bounded by V·P), and
        // a full sweep without improvement terminates the loop.
        loop {
            let times = matrix.times_for(alloc.as_slice());
            let cp = critical_path(g, &times);
            // Best-improvement step: evaluate the +1 widening of every
            // critical-path task and keep the one shrinking the mapped
            // makespan the most.
            let mut best_step: Option<(ptg::TaskId, f64)> = None;
            for v in cp {
                if alloc.of(v) >= p_total {
                    continue;
                }
                alloc.set(v, alloc.of(v) + 1);
                let ms = ListScheduler.makespan(g, matrix, &alloc);
                alloc.set(v, alloc.of(v) - 1);
                if ms < best_ms - 1e-12 * best_ms.max(1.0) && best_step.is_none_or(|(_, b)| ms < b)
                {
                    best_step = Some((v, ms));
                }
            }
            let Some((v, ms)) = best_step else {
                return alloc;
            };
            alloc.set(v, alloc.of(v) + 1);
            best_ms = ms;
        }
    }

    fn name(&self) -> &'static str {
        "CPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate_and_map;
    use crate::{AllOne, Hcpa};
    use exec_model::{Amdahl, SyntheticModel};
    use ptg::PtgBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::daggen::{random_ptg, DaggenParams};
    use workloads::CostConfig;

    fn chain() -> Ptg {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 16e9, 0.02);
        let c = b.add_task("c", 16e9, 0.02);
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cpr_widens_a_scalable_chain() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let alloc = Cpr.allocate(&g, &m);
        assert!(alloc.as_slice().iter().all(|&s| s > 1), "{alloc:?}");
        let (_, cpr_ms) = allocate_and_map(&Cpr, &g, &m);
        let (_, ones_ms) = allocate_and_map(&AllOne, &g, &m);
        assert!(cpr_ms < ones_ms);
    }

    #[test]
    fn cpr_never_worse_than_all_ones_by_construction() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for seed in 0..3 {
            let g = random_ptg(
                &DaggenParams {
                    n: 30,
                    width: 0.5,
                    regularity: 0.5,
                    density: 0.3,
                    jump: 1 + seed as usize % 2,
                },
                &CostConfig::default(),
                &mut rng,
            );
            let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 20);
            let (_, cpr_ms) = allocate_and_map(&Cpr, &g, &m);
            let (_, ones_ms) = allocate_and_map(&AllOne, &g, &m);
            assert!(
                cpr_ms <= ones_ms + 1e-9,
                "seed {seed}: {cpr_ms} vs {ones_ms}"
            );
        }
    }

    #[test]
    fn cpr_avoids_penalized_widths_under_model2() {
        // CPR evaluates real makespans, so it never keeps a widening into a
        // slower odd processor count on a single-task graph.
        let mut b = PtgBuilder::new();
        b.add_task("only", 16e9, 0.0);
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 5);
        let alloc = Cpr.allocate(&g, &m);
        // t(4) = 0.25·seq beats t(5) = 1.3/5 = 0.26·seq.
        assert_eq!(alloc.as_slice(), &[4]);
    }

    #[test]
    fn cpr_competitive_with_hcpa_under_amdahl() {
        // Under a monotonic model CPR's makespan-driven growth should stay
        // close to HCPA (its greedy step directly optimizes the objective).
        // Under Model 2 both can get stuck differently — a +1 widening may
        // land on a penalized width whose benefit only shows at +2 — so the
        // comparison is only made for Model 1.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = random_ptg(
            &DaggenParams {
                n: 30,
                width: 0.5,
                regularity: 0.5,
                density: 0.3,
                jump: 1,
            },
            &CostConfig::default(),
            &mut rng,
        );
        let m = TimeMatrix::compute(&g, &Amdahl, 3.1e9, 40);
        let (_, cpr_ms) = allocate_and_map(&Cpr, &g, &m);
        let (_, hcpa_ms) = allocate_and_map(&Hcpa, &g, &m);
        assert!(
            cpr_ms <= hcpa_ms * 1.10,
            "CPR {cpr_ms} much worse than HCPA {hcpa_ms}"
        );
    }

    #[test]
    fn cpr_makespan_is_monotone_during_growth() {
        // By construction every accepted step strictly reduces the mapped
        // makespan, so the final result can never exceed the all-ones
        // makespan — even under Model 2 on many instances.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..3 {
            let g = random_ptg(
                &DaggenParams {
                    n: 25,
                    width: 0.4,
                    regularity: 0.5,
                    density: 0.4,
                    jump: 2,
                },
                &CostConfig::default(),
                &mut rng,
            );
            let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 30);
            let (_, cpr_ms) = allocate_and_map(&Cpr, &g, &m);
            let (_, ones_ms) = allocate_and_map(&AllOne, &g, &m);
            assert!(cpr_ms <= ones_ms + 1e-9);
        }
    }

    #[test]
    fn cpr_is_deterministic() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 12);
        assert_eq!(Cpr.allocate(&g, &m), Cpr.allocate(&g, &m));
    }
}
