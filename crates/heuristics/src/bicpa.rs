//! BiCPA-style bi-criteria allocation (related-work extension).
//!
//! F. Desprez and F. Suter, "A Bi-criteria Algorithm for Scheduling
//! Parallel Task Graphs on Clusters", CCGrid 2010 — cited by the paper as
//! optimizing "both, the completion time of the PTG and the amount of
//! resources used". The key idea: run the CPA allocation loop once per
//! *allocation cap* `a = 1..=P` (no task may exceed `a` processors), map
//! each capped allocation, and keep the whole (makespan, work) trade-off
//! curve. The scheduler then picks a point — pure makespan, pure work, or a
//! weighted compromise.
//!
//! Our implementation follows that structure; the original's incremental
//! evaluation tricks are replaced by the fast makespan-only mapper, which
//! is cheap enough at these problem sizes.

use crate::common::{run_cpa_loop, CpaLoop};
use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::{Ptg, TaskId};
use sched::{Allocation, ListScheduler, Mapper};

/// One point of the trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Allocation cap that produced this point.
    pub cap: u32,
    /// The capped allocation.
    pub allocation: Allocation,
    /// Resulting makespan.
    pub makespan: f64,
    /// Total work `Σ s(v)·t(v, s(v))` in processor-seconds.
    pub work: f64,
}

/// Computes the full (makespan, work) trade-off curve for caps `1..=P`.
pub fn tradeoff_curve(g: &Ptg, matrix: &TimeMatrix) -> Vec<TradeoffPoint> {
    let p_total = matrix.p_max();
    (1..=p_total)
        .map(|cap| {
            let may_grow = move |_: &Ptg, alloc: &Allocation, v: TaskId| alloc.of(v) < cap;
            let allocation = run_cpa_loop(
                g,
                matrix,
                &CpaLoop {
                    may_grow: &may_grow,
                    stop_on_no_gain: false,
                },
            );
            let makespan = ListScheduler.makespan(g, matrix, &allocation);
            let times = matrix.times_for(allocation.as_slice());
            let work = allocation.work_area(&times);
            TradeoffPoint {
                cap,
                allocation,
                makespan,
                work,
            }
        })
        .collect()
}

/// Keeps only Pareto-optimal points (no other point is better in both
/// makespan and work), sorted by increasing makespan.
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut sorted: Vec<&TradeoffPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.makespan
            .partial_cmp(&b.makespan)
            .expect("finite makespans")
            .then(a.work.partial_cmp(&b.work).expect("finite work"))
    });
    let mut front: Vec<TradeoffPoint> = Vec::new();
    let mut best_work = f64::INFINITY;
    for p in sorted {
        if p.work < best_work - 1e-12 {
            best_work = p.work;
            front.push(p.clone());
        }
    }
    front
}

/// The BiCPA-style allocator: computes the trade-off curve and picks the
/// point minimizing `makespan × workᵝ` (β = 0 is pure makespan, larger β
/// trades schedule length for resource thrift).
#[derive(Debug, Clone, Copy)]
pub struct BiCpa {
    /// Resource-usage weight β ≥ 0. The original's evaluation focuses on
    /// β = 1 (balanced product).
    pub beta: f64,
}

impl Default for BiCpa {
    fn default() -> Self {
        BiCpa { beta: 1.0 }
    }
}

impl Allocator for BiCpa {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        assert!(self.beta >= 0.0, "beta must be non-negative");
        tradeoff_curve(g, matrix)
            .into_iter()
            .min_by(|a, b| {
                let score = |p: &TradeoffPoint| p.makespan * p.work.powf(self.beta);
                score(a).partial_cmp(&score(b)).expect("finite scores")
            })
            .expect("platforms have at least one processor")
            .allocation
    }

    fn name(&self) -> &'static str {
        "BiCPA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    /// src → 4 scalable workers → sink.
    fn graph() -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.1);
        let sink = b.add_task("sink", 1e9, 0.1);
        for i in 0..4 {
            let w = b.add_task(format!("w{i}"), 20e9, 0.05);
            b.add_edge(src, w).unwrap();
            b.add_edge(w, sink).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn curve_has_one_point_per_cap() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let curve = tradeoff_curve(&g, &m);
        assert_eq!(curve.len(), 8);
        for (i, p) in curve.iter().enumerate() {
            assert_eq!(p.cap, i as u32 + 1);
            assert!(p.allocation.as_slice().iter().all(|&s| s <= p.cap));
        }
    }

    #[test]
    fn cap_one_is_the_all_ones_point() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let curve = tradeoff_curve(&g, &m);
        assert_eq!(curve[0].allocation, Allocation::ones(6));
        // Sequential tasks waste nothing: minimal work.
        let min_work = curve.iter().map(|p| p.work).fold(f64::INFINITY, f64::min);
        assert!((curve[0].work - min_work).abs() < 1e-9);
    }

    #[test]
    fn pareto_front_is_monotone() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let front = pareto_front(&tradeoff_curve(&g, &m));
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].makespan <= w[1].makespan);
            assert!(w[0].work > w[1].work, "work must strictly improve");
        }
    }

    #[test]
    fn beta_zero_minimizes_makespan() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let alloc = BiCpa { beta: 0.0 }.allocate(&g, &m);
        let ms = ListScheduler.makespan(&g, &m, &alloc);
        let best = tradeoff_curve(&g, &m)
            .iter()
            .map(|p| p.makespan)
            .fold(f64::INFINITY, f64::min);
        assert!((ms - best).abs() < 1e-9);
    }

    #[test]
    fn large_beta_approaches_minimal_work() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let alloc = BiCpa { beta: 50.0 }.allocate(&g, &m);
        let times = m.times_for(alloc.as_slice());
        let work = alloc.work_area(&times);
        let min_work = tradeoff_curve(&g, &m)
            .iter()
            .map(|p| p.work)
            .fold(f64::INFINITY, f64::min);
        assert!((work - min_work).abs() < 1e-6 * min_work);
    }

    #[test]
    fn default_bicpa_is_between_the_extremes() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let curve = tradeoff_curve(&g, &m);
        let min_ms = curve
            .iter()
            .map(|p| p.makespan)
            .fold(f64::INFINITY, f64::min);
        let alloc = BiCpa::default().allocate(&g, &m);
        let ms = ListScheduler.makespan(&g, &m, &alloc);
        let times = m.times_for(alloc.as_slice());
        let work = alloc.work_area(&times);
        let max_work = curve.iter().map(|p| p.work).fold(0.0f64, f64::max);
        // Balanced choice: not (necessarily) the fastest, never the most
        // wasteful.
        assert!(ms >= min_ms - 1e-12);
        assert!(work <= max_work + 1e-12);
    }
}
