//! Baseline allocation heuristics for moldable-task PTG scheduling.
//!
//! These are the algorithms EMTS is compared against — and seeded from. All
//! of them are *allocation procedures* in the two-step sense: they decide how
//! many processors each task gets; the mapping is done by
//! [`sched::ListScheduler`] afterwards.
//!
//! * [`Cpa`] — Critical Path and Area-based allocation (Radulescu & van
//!   Gemund): grow the allocation of the most profitable critical-path task
//!   until the critical path no longer dominates the average area.
//! * [`Hcpa`] — Heterogeneous CPA (N'Takpé & Suter) specialized to a single
//!   homogeneous cluster, where its allocation procedure coincides with
//!   CPA's (the paper runs "the allocation functions of MCPA and HCPA").
//! * [`Mcpa`] — Modified CPA (Bansal et al.): CPA with the total allocation
//!   per precedence level bounded by `P`, protecting task parallelism in
//!   regular PTGs.
//! * [`DeltaCritical`] — the paper's own third seeding heuristic: share all
//!   processors of the platform among the Δ-critical tasks of each
//!   precedence layer.
//! * [`trivial`] — `AllOne`, `AllMax`, `BestSpeedup` reference points.
//! * [`bicpa`] — BiCPA-style bi-criteria (makespan × work) allocation and
//!   its Pareto trade-off curve (related-work extension).

pub mod bicpa;
pub mod common;
pub mod cpa;
pub mod cpr;
pub mod delta;
pub mod hcpa;
pub mod hcpa_grid;
pub mod mcpa;
pub mod mcpa2;
pub mod trivial;

pub use bicpa::BiCpa;
pub use cpa::Cpa;
pub use cpr::Cpr;
pub use delta::DeltaCritical;
pub use hcpa::Hcpa;
pub use hcpa_grid::HcpaGrid;
pub use mcpa::Mcpa;
pub use mcpa2::Mcpa2;
pub use trivial::{AllMax, AllOne, BestSpeedup};

use exec_model::TimeMatrix;
use ptg::Ptg;
use sched::Allocation;

/// An allocation procedure: PTG + time matrix → per-task processor counts.
///
/// The platform size is the matrix's `p_max()`; every returned allocation
/// satisfies `1 ≤ s(v) ≤ p_max`.
pub trait Allocator {
    /// Computes the allocation.
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation;

    /// Short name for reports ("MCPA", "HCPA", …).
    fn name(&self) -> &'static str;
}

/// Convenience: run an allocator and map the result with the paper's list
/// scheduler, returning `(allocation, makespan)`.
pub fn allocate_and_map<A: Allocator + ?Sized>(
    allocator: &A,
    g: &Ptg,
    matrix: &TimeMatrix,
) -> (Allocation, f64) {
    use sched::Mapper;
    let alloc = allocator.allocate(g, matrix);
    debug_assert!(alloc.is_valid_for(g, matrix.p_max()));
    let makespan = sched::ListScheduler.makespan(g, matrix, &alloc);
    (alloc, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    #[test]
    fn allocate_and_map_is_consistent_with_manual_steps() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 4e9, 0.0);
        let c = b.add_task("c", 4e9, 0.0);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let (alloc, ms) = allocate_and_map(&AllOne, &g, &m);
        assert_eq!(alloc, Allocation::ones(2));
        use sched::Mapper;
        assert_eq!(ms, sched::ListScheduler.makespan(&g, &m, &alloc));
    }
}
