//! MCPA2 — work-proportional per-level allocation bounds.
//!
//! S. Hunold, "Low-Cost Tuning of Two-Step Algorithms for Scheduling
//! Mixed-Parallel Applications onto Homogeneous Clusters", CCGrid 2010 —
//! cited by the paper as MCPA2 \[12\], which "make\[s\] better use of the
//! potential task parallelism by bounding the allocation size per DAG
//! level". Where MCPA caps the *total* allocation of a precedence level at
//! `P` (so co-level tasks implicitly share evenly), MCPA2 recognizes that
//! tasks of one level can have very different costs: a heavy task should be
//! able to take a larger share of the level's processor budget.
//!
//! Our variant implements that principle: a critical-path task `v` on level
//! `l` may grow while
//!
//! 1. the level's total allocation stays within `P` (MCPA's bound), and
//! 2. `s(v)` stays within the task's *work share* of the level budget,
//!    `ceil(P · flop(v) / Σ_{w ∈ l} flop(w))`, so light co-level tasks keep
//!    enough processors to run concurrently while heavy ones may widen
//!    beyond the uniform `P / c_l` share.

use crate::common::{run_cpa_loop, CpaLoop};
use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::levels::PrecedenceLevels;
use ptg::{Ptg, TaskId};
use sched::Allocation;

/// The MCPA2-style allocation procedure.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcpa2;

impl Allocator for Mcpa2 {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        let p_total = matrix.p_max();
        let levels = PrecedenceLevels::compute(g);
        // Per-task work-proportional cap, computed once.
        let mut cap = vec![1u32; g.task_count()];
        for (_, tasks) in levels.iter() {
            let level_work: f64 = tasks.iter().map(|&v| g.task(v).flop).sum();
            for &v in tasks {
                let share = g.task(v).flop / level_work;
                cap[v.index()] = (((p_total as f64) * share).ceil() as u32).clamp(1, p_total);
            }
        }
        let may_grow = move |g: &Ptg, alloc: &Allocation, v: TaskId| {
            let _ = g;
            if alloc.of(v) >= cap[v.index()] {
                return false;
            }
            let level = levels.level_of(v);
            let level_sum: u32 = levels
                .tasks_on_level(level)
                .iter()
                .map(|&w| alloc.of(w))
                .sum();
            level_sum < p_total
        };
        run_cpa_loop(
            g,
            matrix,
            &CpaLoop {
                may_grow: &may_grow,
                stop_on_no_gain: false,
            },
        )
    }

    fn name(&self) -> &'static str {
        "MCPA2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate_and_map;
    use crate::mcpa::Mcpa;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    /// One heavy and three light workers under a source.
    fn skewed_level() -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.1);
        let sink = b.add_task("sink", 1e9, 0.1);
        let heavy = b.add_task("heavy", 90e9, 0.02);
        b.add_edge(src, heavy).unwrap();
        b.add_edge(heavy, sink).unwrap();
        for i in 0..3 {
            let w = b.add_task(format!("w{i}"), 3e9, 0.02);
            b.add_edge(src, w).unwrap();
            b.add_edge(w, sink).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn level_totals_still_respect_platform() {
        let g = skewed_level();
        let p = 16u32;
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Mcpa2.allocate(&g, &m);
        let levels = PrecedenceLevels::compute(&g);
        for (l, tasks) in levels.iter() {
            let sum: u32 = tasks.iter().map(|&v| alloc.of(v)).sum();
            assert!(sum <= p, "level {l}: {sum} > {p}");
        }
    }

    #[test]
    fn heavy_task_gets_more_than_uniform_share() {
        let g = skewed_level();
        let p = 16u32;
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Mcpa2.allocate(&g, &m);
        // 4 tasks on the middle level: uniform share would be 4; the heavy
        // task carries ~91 % of the level's work and should exceed that.
        let heavy = ptg::TaskId(2);
        assert!(
            alloc.of(heavy) > 4,
            "heavy task stuck at {} processors",
            alloc.of(heavy)
        );
    }

    #[test]
    fn caps_prevent_light_task_starvation() {
        let g = skewed_level();
        let p = 16u32;
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Mcpa2.allocate(&g, &m);
        // Work-proportional cap of the heavy task: ceil(16·0.909) = 15, so
        // at least one processor remains per light task even at saturation.
        assert!(alloc.of(ptg::TaskId(2)) <= 15);
    }

    #[test]
    fn no_worse_than_mcpa_on_skewed_levels() {
        let g = skewed_level();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 16);
        let (_, ms2) = allocate_and_map(&Mcpa2, &g, &m);
        let (_, ms) = allocate_and_map(&Mcpa, &g, &m);
        assert!(
            ms2 <= ms * 1.001,
            "MCPA2 {ms2} should not lose to MCPA {ms} on skewed levels"
        );
    }

    #[test]
    fn valid_on_both_paper_platforms() {
        let g = skewed_level();
        for p in [20u32, 120] {
            let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
            assert!(Mcpa2.allocate(&g, &m).is_valid_for(&g, p));
        }
    }
}
