//! HCPA — Heterogeneous CPA, specialized to one homogeneous cluster.
//!
//! T. N'Takpé and F. Suter, "Critical Path and Area Based Scheduling of
//! Parallel Task Graphs on Heterogeneous Platforms", ICPADS 2006. HCPA
//! generalizes CPA to multi-cluster platforms by allocating *equivalent
//! processors* of a virtual reference cluster and translating them to each
//! real cluster's speed. The paper under reproduction runs HCPA's
//! *allocation function* on a single homogeneous cluster — in that setting
//! the reference cluster is the cluster itself, the translation is the
//! identity, and the procedure degenerates to CPA's loop (which is why the
//! paper's figures show HCPA trailing MCPA on regular PTGs: like CPA it can
//! starve task parallelism by over-widening the critical path).
//!
//! We keep HCPA as its own type so experiment code mirrors the paper's
//! naming, and because it is the natural seam for a future multi-cluster
//! extension.

use crate::common::{run_cpa_loop, CpaLoop};
use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::Ptg;
use sched::Allocation;

/// HCPA's allocation procedure (single homogeneous cluster case).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hcpa;

impl Allocator for Hcpa {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        run_cpa_loop(g, matrix, &CpaLoop::default())
    }

    fn name(&self) -> &'static str {
        "HCPA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cpa;
    use exec_model::{Amdahl, SyntheticModel};
    use ptg::PtgBuilder;

    fn sample() -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 2e9, 0.1);
        for i in 0..3 {
            let w = b.add_task(format!("w{i}"), 10e9, 0.05);
            b.add_edge(src, w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn hcpa_equals_cpa_on_homogeneous_cluster() {
        let g = sample();
        for p in [4u32, 20, 120] {
            let m = TimeMatrix::compute(&g, &Amdahl, 3.1e9, p);
            assert_eq!(Hcpa.allocate(&g, &m), Cpa::default().allocate(&g, &m));
        }
    }

    #[test]
    fn hcpa_grows_beyond_one_under_model2() {
        // §V-B: "when applying Model 2, the allocation routine of MCPA or
        // HCPA does not stop with 1-processor allocations. Often allocations
        // will grow up to a size of 4–8 processors".
        let g = sample();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 120);
        let alloc = Hcpa.allocate(&g, &m);
        assert!(
            alloc.as_slice().iter().any(|&s| s > 1),
            "expected growth, got {alloc:?}"
        );
    }

    #[test]
    fn allocations_stay_valid_on_both_paper_platforms() {
        let g = sample();
        for p in [20u32, 120] {
            let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 4.3e9, p);
            assert!(Hcpa.allocate(&g, &m).is_valid_for(&g, p));
        }
    }
}
