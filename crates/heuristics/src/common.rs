//! The shared CPA-style allocation loop.
//!
//! CPA, HCPA and MCPA all follow the same pattern (Radulescu & van Gemund):
//! start every task at one processor and, while the critical-path length
//! `T_CP` exceeds the average area `T_A = (1/P) Σ_v s(v)·T(v, s(v))`, give
//! one more processor to the critical-path task whose *time-per-processor*
//! benefits most. The variants differ only in which tasks are allowed to
//! grow, so the loop takes a growth-constraint callback.

use exec_model::TimeMatrix;
use ptg::critpath::{bottom_levels, critical_path};
use ptg::{Ptg, TaskId};
use sched::Allocation;

/// Configuration of the shared CPA loop.
pub struct CpaLoop<'a> {
    /// Permits task `v` to grow from its current allocation (checked before
    /// each increment). MCPA uses this for its per-level bound; plain CPA
    /// always returns true.
    pub may_grow: &'a dyn Fn(&Ptg, &Allocation, TaskId) -> bool,
    /// If true, the loop also stops when the best achievable gain is zero or
    /// negative (useful under non-monotonic models; the classic algorithms
    /// do not check this because monotonic models always gain).
    pub stop_on_no_gain: bool,
}

impl Default for CpaLoop<'_> {
    fn default() -> Self {
        CpaLoop {
            may_grow: &|_, _, _| true,
            stop_on_no_gain: false,
        }
    }
}

/// The gain CPA attributes to growing task `v` by one processor: the drop in
/// average processor time `T(v,s)/s − T(v,s+1)/(s+1)`.
pub fn cpa_gain(matrix: &TimeMatrix, v: TaskId, s: u32) -> f64 {
    debug_assert!(s < matrix.p_max());
    matrix.time(v, s) / s as f64 - matrix.time(v, s + 1) / (s + 1) as f64
}

/// Runs the CPA allocation loop and returns the final allocation.
///
/// Terminates because every iteration increases the total allocation by one
/// and each task is capped at `P`, so at most `V · (P − 1)` iterations run.
pub fn run_cpa_loop(g: &Ptg, matrix: &TimeMatrix, cfg: &CpaLoop<'_>) -> Allocation {
    let p_total = matrix.p_max();
    let mut alloc = Allocation::ones(g.task_count());
    let mut times = matrix.times_for(alloc.as_slice());
    loop {
        let bl = bottom_levels(g, &times);
        let t_cp = bl.iter().copied().fold(0.0f64, f64::max);
        let t_a = alloc.work_area(&times) / p_total as f64;
        if t_cp <= t_a {
            break;
        }
        // Candidates: tasks on the current critical path that can still grow.
        let cp = critical_path(g, &times);
        let best = cp
            .into_iter()
            .filter(|&v| alloc.of(v) < p_total && (cfg.may_grow)(g, &alloc, v))
            .map(|v| (v, cpa_gain(matrix, v, alloc.of(v))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("gains are finite"));
        let Some((v, gain)) = best else {
            break; // nothing on the critical path may grow
        };
        if cfg.stop_on_no_gain && gain <= 0.0 {
            break;
        }
        let s = alloc.of(v) + 1;
        alloc.set(v, s);
        times[v.index()] = matrix.time(v, s);
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{Amdahl, SyntheticModel};
    use ptg::PtgBuilder;

    /// A chain of two perfectly scalable tasks.
    fn chain() -> Ptg {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 8e9, 0.0);
        let c = b.add_task("c", 8e9, 0.0);
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_grows_to_full_platform() {
        // A pure chain has T_A = (t_a + t_c)/P and T_CP = t_a + t_c; with
        // perfectly scalable tasks CPA keeps growing until each task uses
        // every processor (T_CP = 2·8/P·seq vs T_A the same) — equality is
        // reached exactly at s = P.
        let g = chain();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = run_cpa_loop(&g, &m, &CpaLoop::default());
        assert_eq!(alloc.as_slice(), &[4, 4]);
    }

    #[test]
    fn gain_is_positive_under_amdahl() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        for s in 1..8 {
            assert!(cpa_gain(&m, TaskId(0), s) > 0.0, "s = {s}");
        }
    }

    #[test]
    fn gain_can_be_negative_under_model2() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 8);
        // 4 → 5: time goes from seq/4 to 1.3·seq/5 = 0.26 seq; per-proc time
        // 0.0625 → 0.052: actually still a positive gain. Check 1 → 2 vs a
        // fully sequential task instead: alpha = 1 means no speedup, so
        // T(2)/2 = 1.1·seq/2 > 0... gain = seq − 0.55·seq > 0. Use the raw
        // *time* increase at odd counts to build a case: task with alpha 0,
        // 2 → 3 gives T(3)/3 = 1.3/9 seq ≈ 0.144·seq vs T(2)/2 = 0.275·seq —
        // still positive. Per-processor gain under Model 2 stays positive
        // for scalable tasks; negative gains need poorly scaling tasks:
        let mut b = PtgBuilder::new();
        b.add_task("seq", 8e9, 0.9);
        let g2 = b.build().unwrap();
        let m2 = TimeMatrix::compute(&g2, &SyntheticModel::default(), 1e9, 8);
        // alpha = 0.9: T(2) = 1.1·0.95·seq ≈ 1.045·seq, per-proc 0.5225 vs 1.0
        // → positive; T(3) = 1.3·(0.9+0.1/3) = 1.213·seq, per-proc 0.404 —
        // positive again. Per-processor time is dominated by the 1/s factor,
        // so CPA gains stay positive; the negative-gain guard matters for
        // models like tabulated measurements with super-linear slowdowns.
        // Assert the mathematical possibility with a crafted table instead.
        use exec_model::Tabulated;
        let tab = Tabulated::from_speedups(vec![1.0, 0.4]); // p=2 is 2.5× slower
        let m3 = TimeMatrix::compute(&g2, &tab, 1e9, 2);
        assert!(cpa_gain(&m3, TaskId(0), 1) < 0.0);
        let _ = (g, m, m2);
    }

    #[test]
    fn stop_on_no_gain_freezes_allocation_under_hostile_model() {
        use exec_model::Tabulated;
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 8e9, 0.0);
        let c = b.add_task("c", 8e9, 0.0);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        // Any growth slows tasks down drastically.
        let tab = Tabulated::from_speedups(vec![1.0, 0.1, 0.1, 0.1]);
        let m = TimeMatrix::compute(&g, &tab, 1e9, 4);
        let cfg = CpaLoop {
            stop_on_no_gain: true,
            ..CpaLoop::default()
        };
        let alloc = run_cpa_loop(&g, &m, &cfg);
        assert_eq!(alloc.as_slice(), &[1, 1]);
    }

    #[test]
    fn growth_constraint_is_respected() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let cap = |_: &Ptg, alloc: &Allocation, v: TaskId| alloc.of(v) < 3;
        let cfg = CpaLoop {
            may_grow: &cap,
            stop_on_no_gain: false,
        };
        let alloc = run_cpa_loop(&g, &m, &cfg);
        assert!(alloc.as_slice().iter().all(|&s| s <= 3), "{alloc:?}");
    }

    #[test]
    fn loop_terminates_under_model2_on_wide_graph() {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.1);
        for i in 0..10 {
            let t = b.add_task(format!("w{i}"), 5e9, 0.05);
            b.add_edge(src, t).unwrap();
        }
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 20);
        let alloc = run_cpa_loop(&g, &m, &CpaLoop::default());
        assert!(alloc.is_valid_for(&g, 20));
    }
}
