//! MCPA — Modified CPA with per-level allocation bounds.
//!
//! S. Bansal, P. Kumar, K. Singh, "An Improved Two-Step Algorithm for Task
//! and Data Parallel Scheduling in Distributed Memory Machines", Parallel
//! Computing 32(10), 2006. As the paper under reproduction characterizes it,
//! MCPA "make\[s\] better use of the potential task parallelism by bounding
//! the allocation size per DAG level": a critical-path task may only widen
//! while the *total* allocation of its precedence level still fits on the
//! platform. This prevents CPA's classic failure mode on regular PTGs,
//! where the critical path swallows the machine and concurrent tasks
//! serialize behind it.

use crate::common::{run_cpa_loop, CpaLoop};
use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::levels::PrecedenceLevels;
use ptg::{Ptg, TaskId};
use sched::Allocation;

/// The MCPA allocation procedure.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcpa;

impl Allocator for Mcpa {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        let p_total = matrix.p_max();
        let levels = PrecedenceLevels::compute(g);
        let may_grow = move |g: &Ptg, alloc: &Allocation, v: TaskId| {
            let _ = g;
            let level = levels.level_of(v);
            let level_sum: u32 = levels
                .tasks_on_level(level)
                .iter()
                .map(|&w| alloc.of(w))
                .sum();
            level_sum < p_total
        };
        run_cpa_loop(
            g,
            matrix,
            &CpaLoop {
                may_grow: &may_grow,
                stop_on_no_gain: false,
            },
        )
    }

    fn name(&self) -> &'static str {
        "MCPA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate_and_map;
    use crate::hcpa::Hcpa;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    /// A wide layered PTG: src → 8 equal workers → sink.
    fn wide(workers: usize) -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.1);
        let sink = b.add_task("sink", 1e9, 0.1);
        for i in 0..workers {
            let w = b.add_task(format!("w{i}"), 20e9, 0.02);
            b.add_edge(src, w).unwrap();
            b.add_edge(w, sink).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn level_sums_never_exceed_platform() {
        let g = wide(8);
        let p = 16u32;
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Mcpa.allocate(&g, &m);
        let levels = PrecedenceLevels::compute(&g);
        for (l, tasks) in levels.iter() {
            let sum: u32 = tasks.iter().map(|&v| alloc.of(v)).sum();
            assert!(sum <= p, "level {l} over-allocated: {sum} > {p}");
        }
    }

    #[test]
    fn mcpa_beats_hcpa_on_regular_wide_graphs() {
        // Exactly the effect the paper's Fig. 4 discusses: "MCPA takes
        // special care of regularly shaped PTGs and attempts to exploit
        // maximum task parallelism".
        let g = wide(8);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 16);
        let (_, ms_mcpa) = allocate_and_map(&Mcpa, &g, &m);
        let (_, ms_hcpa) = allocate_and_map(&Hcpa, &g, &m);
        assert!(
            ms_mcpa <= ms_hcpa + 1e-9,
            "MCPA {ms_mcpa} should not lose to HCPA {ms_hcpa} here"
        );
    }

    #[test]
    fn mcpa_fills_levels_with_equal_shares_on_symmetric_input() {
        let g = wide(4);
        let p = 8u32;
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Mcpa.allocate(&g, &m);
        // 4 identical workers on one level sharing 8 processors: each ends
        // with exactly 2 once the level is saturated.
        let worker_allocs: Vec<u32> = (2..6).map(|i| alloc.of(TaskId(i))).collect();
        assert_eq!(worker_allocs, vec![2, 2, 2, 2], "{alloc:?}");
    }

    #[test]
    fn single_task_levels_may_use_whole_machine() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 50e9, 0.01);
        let c = b.add_task("c", 50e9, 0.01);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let p = 8u32;
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Mcpa.allocate(&g, &m);
        assert_eq!(alloc.as_slice(), &[p, p]);
    }

    #[test]
    fn mcpa_is_deterministic() {
        let g = wide(6);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 20);
        assert_eq!(Mcpa.allocate(&g, &m), Mcpa.allocate(&g, &m));
    }
}
