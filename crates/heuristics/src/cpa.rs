//! CPA — Critical Path and Area-based allocation.
//!
//! A. Rădulescu and A. J. C. van Gemund, "A Low-Cost Approach towards Mixed
//! Task and Data Parallel Scheduling", ICPP 2001. The allocation procedure
//! balances the two classic makespan lower bounds: it keeps shortening the
//! critical path (by widening its most profitable task) until the average
//! area — total work spread over all `P` processors — dominates. Complexity
//! O(V(V+E)P), as cited in the paper's §III-E.

use crate::common::{run_cpa_loop, CpaLoop};
use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::Ptg;
use sched::Allocation;

/// The CPA allocation procedure.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cpa {
    /// Stop growing when the best gain is non-positive (off by default to
    /// match the original algorithm, which assumes a monotonic model).
    pub stop_on_no_gain: bool,
}

impl Allocator for Cpa {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        run_cpa_loop(
            g,
            matrix,
            &CpaLoop {
                stop_on_no_gain: self.stop_on_no_gain,
                ..CpaLoop::default()
            },
        )
    }

    fn name(&self) -> &'static str {
        "CPA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate_and_map;
    use crate::trivial::AllOne;
    use exec_model::Amdahl;
    use ptg::{PtgBuilder, TaskId};

    /// src -> {w0..w3} -> sink; workers are heavy and scalable.
    fn fork_join() -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.2);
        let sink = b.add_task("sink", 1e9, 0.2);
        for i in 0..4 {
            let w = b.add_task(format!("w{i}"), 16e9, 0.02);
            b.add_edge(src, w).unwrap();
            b.add_edge(w, sink).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn cpa_improves_on_all_ones_for_scalable_chain() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 16e9, 0.02);
        let c = b.add_task("c", 16e9, 0.02);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 16);
        let (_, ms_cpa) = allocate_and_map(&Cpa::default(), &g, &m);
        let (_, ms_one) = allocate_and_map(&AllOne, &g, &m);
        assert!(ms_cpa < ms_one, "CPA {ms_cpa} vs all-ones {ms_one}");
    }

    #[test]
    fn cpa_allocations_are_valid() {
        let g = fork_join();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 20);
        let alloc = Cpa::default().allocate(&g, &m);
        assert!(alloc.is_valid_for(&g, 20));
    }

    #[test]
    fn cpa_widens_critical_tasks_more_than_trivial_ones() {
        let g = fork_join();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 20);
        let alloc = Cpa::default().allocate(&g, &m);
        // The heavy workers dominate the critical path; the 1 GFLOP
        // src/sink should stay narrow relative to them.
        let worker_total: u32 = (2..6).map(|i| alloc.of(TaskId(i))).sum();
        assert!(worker_total / 4 >= alloc.of(TaskId(0)));
    }

    #[test]
    fn single_processor_platform_keeps_all_ones() {
        let g = fork_join();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 1);
        assert_eq!(Cpa::default().allocate(&g, &m), Allocation::ones(6));
    }

    #[test]
    fn cpa_is_deterministic() {
        let g = fork_join();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 20);
        assert_eq!(
            Cpa::default().allocate(&g, &m),
            Cpa::default().allocate(&g, &m)
        );
    }
}
