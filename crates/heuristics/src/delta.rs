//! The paper's Δ-critical seeding heuristic (§III-B).
//!
//! "First, the bottom level of each task is computed assuming that each task
//! is allocated to one processor. […] we separate the nodes by precedence
//! level (depth of the nodes from the source) and share all processors of
//! the system among the Δ-critical nodes of a layer. […] tasks on the
//! critical path in one precedence level receive P/c_l processors and
//! non-critical ones receive 1 processor (c_l is the number of almost
//! critical tasks of level l)."
//!
//! A task of layer `l` is Δ-critical when `bl(v) ≥ Δ · max bl` over the
//! tasks of that layer; `Δ = 0.9` in the paper's experiments, i.e. tasks at
//! most 10 % below the layer maximum also count as critical (the concept of
//! Δ-critical tasks is due to Suter, GRID 2007).

use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::critpath::bottom_levels;
use ptg::levels::PrecedenceLevels;
use ptg::Ptg;
use sched::Allocation;

/// The Δ-critical processor-sharing heuristic.
#[derive(Debug, Clone, Copy)]
pub struct DeltaCritical {
    /// Criticality threshold `Δ ∈ [0, 1]`; the paper uses 0.9.
    pub delta: f64,
}

impl Default for DeltaCritical {
    fn default() -> Self {
        DeltaCritical { delta: 0.9 }
    }
}

impl DeltaCritical {
    /// Creates the heuristic with an explicit Δ.
    pub fn new(delta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&delta),
            "delta must lie in [0, 1], got {delta}"
        );
        DeltaCritical { delta }
    }
}

impl Allocator for DeltaCritical {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        let p_total = matrix.p_max();
        // Bottom levels under the all-ones allocation, per the paper.
        let times: Vec<f64> = g.task_ids().map(|v| matrix.time(v, 1)).collect();
        let bl = bottom_levels(g, &times);
        let levels = PrecedenceLevels::compute(g);
        let mut alloc = Allocation::ones(g.task_count());
        for (_, tasks) in levels.iter() {
            let layer_max = tasks.iter().map(|&v| bl[v.index()]).fold(0.0f64, f64::max);
            let critical: Vec<_> = tasks
                .iter()
                .copied()
                .filter(|&v| bl[v.index()] >= self.delta * layer_max)
                .collect();
            let share = (p_total / critical.len() as u32).max(1);
            for v in critical {
                alloc.set(v, share);
            }
        }
        alloc
    }

    fn name(&self) -> &'static str {
        "DeltaCritical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::Amdahl;
    use ptg::{PtgBuilder, TaskId};

    /// Layer of one heavy + two light tasks below a source.
    fn skewed() -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.1);
        let heavy = b.add_task("heavy", 100e9, 0.05);
        let light1 = b.add_task("l1", 1e9, 0.1);
        let light2 = b.add_task("l2", 1e9, 0.1);
        for t in [heavy, light1, light2] {
            b.add_edge(src, t).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn critical_task_gets_the_platform_share() {
        let g = skewed();
        let p = 12u32;
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = DeltaCritical::default().allocate(&g, &m);
        // Layer 1: heavy dominates its layer alone at Δ=0.9 → P/1 procs.
        assert_eq!(alloc.of(TaskId(1)), p);
        assert_eq!(alloc.of(TaskId(2)), 1);
        assert_eq!(alloc.of(TaskId(3)), 1);
        // Layer 0: src is the single (critical) task of its layer.
        assert_eq!(alloc.of(TaskId(0)), p);
    }

    #[test]
    fn equal_tasks_split_the_platform() {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 10e9, 0.05);
        }
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 12);
        let alloc = DeltaCritical::default().allocate(&g, &m);
        assert_eq!(alloc.as_slice(), &[3, 3, 3, 3]);
    }

    #[test]
    fn delta_zero_marks_every_task_critical() {
        let g = skewed();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 12);
        let alloc = DeltaCritical::new(0.0).allocate(&g, &m);
        // Layer 1 has 3 critical tasks → 12/3 = 4 each.
        assert_eq!(alloc.of(TaskId(1)), 4);
        assert_eq!(alloc.of(TaskId(2)), 4);
        assert_eq!(alloc.of(TaskId(3)), 4);
    }

    #[test]
    fn more_critical_tasks_than_processors_degrades_to_ones() {
        let mut b = PtgBuilder::new();
        for i in 0..8 {
            b.add_task(format!("t{i}"), 10e9, 0.05);
        }
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = DeltaCritical::new(0.0).allocate(&g, &m);
        assert!(alloc.as_slice().iter().all(|&s| s == 1));
    }

    #[test]
    fn allocation_is_always_valid() {
        let g = skewed();
        for p in [1u32, 2, 7, 20, 120] {
            let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
            for delta in [0.0, 0.5, 0.9, 1.0] {
                let alloc = DeltaCritical::new(delta).allocate(&g, &m);
                assert!(alloc.is_valid_for(&g, p), "p={p} delta={delta}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "delta must lie in")]
    fn invalid_delta_panics() {
        let _ = DeltaCritical::new(1.5);
    }
}
