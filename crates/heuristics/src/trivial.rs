//! Trivial reference allocators.
//!
//! Not competitors from the paper, but useful anchors: `AllOne` is the pure
//! task-parallel extreme, `AllMax` the pure data-parallel extreme, and
//! `BestSpeedup` greedily picks each task's individually fastest width
//! (ignoring contention) — a natural straw man under non-monotonic models.

use crate::Allocator;
use exec_model::TimeMatrix;
use ptg::Ptg;
use sched::Allocation;

/// Every task runs on a single processor.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllOne;

impl Allocator for AllOne {
    fn allocate(&self, g: &Ptg, _matrix: &TimeMatrix) -> Allocation {
        Allocation::ones(g.task_count())
    }

    fn name(&self) -> &'static str {
        "AllOne"
    }
}

/// Every task runs on the whole platform.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllMax;

impl Allocator for AllMax {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        Allocation::uniform(g.task_count(), matrix.p_max())
    }

    fn name(&self) -> &'static str {
        "AllMax"
    }
}

/// Each task gets the processor count minimizing its own execution time
/// (the smallest such count on ties).
#[derive(Debug, Clone, Copy, Default)]
pub struct BestSpeedup;

impl Allocator for BestSpeedup {
    fn allocate(&self, g: &Ptg, matrix: &TimeMatrix) -> Allocation {
        Allocation::from_vec(g.task_ids().map(|v| matrix.best_p(v)).collect())
    }

    fn name(&self) -> &'static str {
        "BestSpeedup"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{Amdahl, SyntheticModel};
    use ptg::PtgBuilder;

    fn graph() -> Ptg {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 4e9, 0.0);
        let c = b.add_task("c", 4e9, 1.0); // fully sequential
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn all_one_and_all_max() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 6);
        assert_eq!(AllOne.allocate(&g, &m).as_slice(), &[1, 1]);
        assert_eq!(AllMax.allocate(&g, &m).as_slice(), &[6, 6]);
    }

    #[test]
    fn best_speedup_respects_per_task_scaling() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 6);
        let alloc = BestSpeedup.allocate(&g, &m);
        assert_eq!(alloc.as_slice()[0], 6, "scalable task takes everything");
        assert_eq!(alloc.as_slice()[1], 1, "sequential task stays narrow");
    }

    #[test]
    fn best_speedup_avoids_penalized_widths_under_model2() {
        let g = graph();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 5);
        let alloc = BestSpeedup.allocate(&g, &m);
        // p = 5 is odd (×1.3): 1.3/5 = 0.26 > 1/4 = 0.25 → best is 4.
        assert_eq!(alloc.as_slice()[0], 4);
    }
}
