//! HCPA on a multi-cluster grid — the algorithm's original habitat
//! (extension).
//!
//! N'Takpé & Suter's HCPA handles heterogeneous platforms made of several
//! homogeneous clusters by allocating *equivalent processors* of a virtual
//! **reference cluster** (we use the fastest cluster's speed, with
//! `Σ_k n_k · s_k / s_ref` reference processors), then translating each
//! task's reference allocation to whatever cluster it lands on during
//! mapping:
//!
//! 1. **Allocation** — the CPA loop runs against the reference cluster:
//!    start every task at one reference processor and widen the most
//!    profitable critical-path task while the critical path dominates the
//!    average area.
//! 2. **Mapping** — ready tasks (by decreasing bottom level) try every
//!    cluster: the reference allocation is translated to the smallest
//!    local width whose predicted time is no worse than the reference time
//!    (capped at the cluster size), and the cluster finishing the task
//!    earliest wins.
//!
//! On a single-cluster grid both steps reduce exactly to the paper's
//! HCPA/CPA (asserted in tests), which is why the flat [`crate::Hcpa`] is a
//! faithful stand-in for the paper's experiments.

use crate::common::{run_cpa_loop, CpaLoop};
use exec_model::{ExecutionTimeModel, TimeMatrix};
use platform::grid::Grid;
use ptg::critpath::bottom_levels;
use ptg::{Ptg, TaskId};
use sched::multi::{GridAllocation, GridPlacement, GridSchedule, GridTimeMatrix};
use sched::{Allocation, Placement};

/// The multi-cluster HCPA scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct HcpaGrid;

impl HcpaGrid {
    /// Step 1: reference-cluster allocation.
    pub fn reference_allocation<M: ExecutionTimeModel + ?Sized>(
        &self,
        g: &Ptg,
        model: &M,
        grid: &Grid,
    ) -> Allocation {
        let s_ref = grid.reference_speed_gflops() * 1e9;
        let p_ref = grid.equivalent_processors();
        let matrix = TimeMatrix::compute(g, model, s_ref, p_ref);
        run_cpa_loop(g, &matrix, &CpaLoop::default())
    }

    /// Translates a reference allocation of task `v` to cluster `k`: the
    /// smallest local width whose time does not exceed the reference time
    /// (falling back to the whole cluster when even that is slower).
    fn translate(
        matrices: &GridTimeMatrix,
        v: TaskId,
        t_ref: f64,
        k: usize,
        cluster_size: u32,
    ) -> u32 {
        for p in 1..=cluster_size {
            if matrices.cluster(k).time(v, p) <= t_ref {
                return p;
            }
        }
        cluster_size
    }

    /// Runs both steps and returns the grid schedule plus the allocation.
    pub fn schedule<M: ExecutionTimeModel + ?Sized>(
        &self,
        g: &Ptg,
        model: &M,
        grid: &Grid,
    ) -> (GridAllocation, GridSchedule) {
        let s_ref = grid.reference_speed_gflops() * 1e9;
        let p_ref = grid.equivalent_processors();
        let ref_matrix = TimeMatrix::compute(g, model, s_ref, p_ref);
        let ref_alloc = run_cpa_loop(g, &ref_matrix, &CpaLoop::default());
        let matrices = GridTimeMatrix::compute(g, model, grid);

        // Reference times drive both the priorities and the translation.
        let t_ref: Vec<f64> = g
            .task_ids()
            .map(|v| ref_matrix.time(v, ref_alloc.of(v)))
            .collect();
        let bl = bottom_levels(g, &t_ref);

        let mut in_deg: Vec<usize> = g.task_ids().map(|v| g.in_degree(v)).collect();
        let mut ready: Vec<TaskId> = g.task_ids().filter(|&v| in_deg[v.index()] == 0).collect();
        let mut avail: Vec<Vec<f64>> = grid
            .clusters
            .iter()
            .map(|c| vec![0.0; c.processors as usize])
            .collect();
        let mut data_ready = vec![0.0f64; g.task_count()];
        let mut placements: Vec<Option<GridPlacement>> = vec![None; g.task_count()];
        let mut per_task: Vec<(u32, u32)> = vec![(0, 1); g.task_count()];

        while !ready.is_empty() {
            let (idx, _) = ready
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    bl[a.1.index()]
                        .partial_cmp(&bl[b.1.index()])
                        .expect("finite bottom levels")
                        .then(b.1.cmp(a.1))
                })
                .expect("ready set non-empty");
            let v = ready.swap_remove(idx);

            // Try every cluster; earliest finish wins (ties → lower index).
            let mut best: Option<(f64, f64, usize, u32, Vec<u32>)> = None;
            for (k, cluster) in grid.clusters.iter().enumerate() {
                let width = Self::translate(&matrices, v, t_ref[v.index()], k, cluster.processors);
                let pool = &avail[k];
                let mut order: Vec<u32> = (0..pool.len() as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    pool[a as usize]
                        .partial_cmp(&pool[b as usize])
                        .expect("finite availability")
                        .then(a.cmp(&b))
                });
                let chosen = &order[..width as usize];
                let start = data_ready[v.index()].max(pool[chosen[width as usize - 1] as usize]);
                let finish = start + matrices.cluster(k).time(v, width);
                let better = match &best {
                    None => true,
                    Some((best_finish, ..)) => finish < best_finish - 1e-15,
                };
                if better {
                    let mut procs: Vec<u32> = chosen.to_vec();
                    procs.sort_unstable();
                    best = Some((finish, start, k, width, procs));
                }
            }
            let (finish, start, k, width, processors) = best.expect("grid has clusters");
            for &q in &processors {
                avail[k][q as usize] = finish;
            }
            per_task[v.index()] = (k as u32, width);
            placements[v.index()] = Some(GridPlacement {
                cluster: k as u32,
                placement: Placement {
                    task: v,
                    start,
                    finish,
                    processors,
                },
            });
            for &w in g.successors(v) {
                data_ready[w.index()] = data_ready[w.index()].max(finish);
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    ready.push(w);
                }
            }
        }
        (
            GridAllocation { per_task },
            GridSchedule {
                placements: placements
                    .into_iter()
                    .map(|p| p.expect("all tasks scheduled"))
                    .collect(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate_and_map, Hcpa};
    use exec_model::{Amdahl, SyntheticModel};
    use platform::grid::grid5000_pair;
    use platform::Cluster;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sched::multi::validate_grid_schedule;
    use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

    fn sample(n: usize, seed: u64) -> Ptg {
        random_ptg(
            &DaggenParams {
                n,
                width: 0.5,
                regularity: 0.5,
                density: 0.3,
                jump: 1,
            },
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
    }

    #[test]
    fn grid_schedules_are_valid() {
        let g = sample(40, 1);
        let grid = grid5000_pair();
        for model in [
            &Amdahl as &dyn ExecutionTimeModel,
            &SyntheticModel::default(),
        ] {
            let (alloc, schedule) = HcpaGrid.schedule(&g, model, &grid);
            assert!(alloc.is_valid_for(&g, &grid));
            validate_grid_schedule(&g, &grid, &schedule).unwrap();
        }
    }

    #[test]
    fn single_cluster_grid_matches_flat_hcpa() {
        let g = sample(25, 2);
        let cluster = Cluster::new("solo", 20, 4.3);
        let grid = platform::grid::Grid::new("solo", vec![cluster.clone()]);
        let (_, grid_schedule) = HcpaGrid.schedule(&g, &Amdahl, &grid);
        let flat_matrix =
            TimeMatrix::compute(&g, &Amdahl, cluster.speed_flops(), cluster.processors);
        let (_, flat_ms) = allocate_and_map(&Hcpa, &g, &flat_matrix);
        assert!(
            (grid_schedule.makespan() - flat_ms).abs() <= 1e-9 * flat_ms,
            "grid {} vs flat {}",
            grid_schedule.makespan(),
            flat_ms
        );
    }

    #[test]
    fn two_clusters_beat_the_smaller_one_alone() {
        // With both clusters available, HCPA-grid should never be slower
        // than flat HCPA restricted to Chti (it can always fall back to a
        // single cluster). Not a strict theorem for list scheduling, so we
        // allow a small tolerance and check it holds on several instances.
        let grid = grid5000_pair();
        let chti = &grid.clusters[0];
        let mut wins = 0;
        for seed in 0..5 {
            let g = sample(40, 100 + seed);
            let (_, grid_schedule) = HcpaGrid.schedule(&g, &Amdahl, &grid);
            let chti_matrix = TimeMatrix::compute(&g, &Amdahl, chti.speed_flops(), chti.processors);
            let (_, chti_ms) = allocate_and_map(&Hcpa, &g, &chti_matrix);
            if grid_schedule.makespan() <= chti_ms * 1.001 {
                wins += 1;
            }
        }
        assert!(wins >= 4, "grid lost to little Chti too often: {wins}/5");
    }

    #[test]
    fn translation_prefers_narrow_widths_on_fast_clusters() {
        let g = sample(10, 3);
        let grid = grid5000_pair();
        let matrices = GridTimeMatrix::compute(&g, &Amdahl, &grid);
        let v = TaskId(0);
        // Reference time at 4 reference processors (speed 4.3): translating
        // to the *same speed* cluster 0 must give width ≤ 4; to the slower
        // cluster 1 a width ≥ 4.
        let s_ref = grid.reference_speed_gflops() * 1e9;
        let ref_matrix = TimeMatrix::compute(&g, &Amdahl, s_ref, grid.equivalent_processors());
        let t_ref = ref_matrix.time(v, 4);
        let w0 = HcpaGrid::translate(&matrices, v, t_ref, 0, grid.clusters[0].processors);
        let w1 = HcpaGrid::translate(&matrices, v, t_ref, 1, grid.clusters[1].processors);
        assert!(w0 <= 4, "same-speed translation widened: {w0}");
        assert!(
            w1 >= w0,
            "slower cluster should need at least as many: {w1} < {w0}"
        );
    }

    #[test]
    fn reference_allocation_is_a_plain_cpa_result() {
        let g = sample(20, 4);
        let grid = grid5000_pair();
        let alloc = HcpaGrid.reference_allocation(&g, &Amdahl, &grid);
        assert!(alloc.is_valid_for(&g, grid.equivalent_processors()));
    }
}
