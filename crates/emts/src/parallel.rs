//! The fitness evaluation engine: persistent worker pool + memo cache.
//!
//! The paper notes the EA's cost "is mainly determined by the mapping
//! function as it evaluates the fitness of individuals". Fitness evaluation
//! is pure — the list scheduler reads the PTG and the time matrix and
//! returns a makespan — so the λ offspring of a generation can be evaluated
//! on all cores with no effect on the results: mutation (the only RNG
//! consumer) stays on the caller's thread.
//!
//! Three layers, composed by [`crate::Emts::run`]:
//!
//! * [`sched::EvalScratch`] (in the `sched` crate) — one set of reusable
//!   buffers per thread, so a steady-state evaluation performs zero heap
//!   allocations,
//! * [`EvalPool`] — worker threads spawned **once per run** and fed batches
//!   over a channel, instead of a fresh thread scope per generation,
//! * [`FitnessEngine`] — a memo cache in front of the pool keyed by the
//!   allocation vector: plus-selection and the shrinking mutation operator
//!   frequently reproduce earlier individuals, and a cached individual
//!   skips the mapper entirely.
//!
//! Caching cannot change any result: the mapper is deterministic in the
//! allocation, and a completed evaluation's [`sched::BoundedEval`] carries
//! `reject_key = max_v (start(v) + bl(v))`, the exact quantity the engine's
//! in-flight rejection test compares against the cutoff — so the cache
//! reproduces accept/reject decisions for *any* later cutoff bit-for-bit.
//!
//! [`evaluate_fitness`] / [`evaluate_fitness_bounded`] keep the original
//! scope-per-call implementation as the reference path; the equivalence
//! tests and the `emts_generation` bench compare the engine against it.

use exec_model::TimeMatrix;
use obs::{NoopRecorder, Recorder};
use ptg::critpath::BlRepairer;
use ptg::{Ptg, TaskId};
use sched::{Allocation, BoundedEval, EvalRecord, EvalScratch, ListScheduler};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// The shared disabled recorder every un-instrumented entry point points
/// at (a zero-sized type, so this is purely a lifetime convenience).
static NOOP: NoopRecorder = NoopRecorder;

/// Evaluates the makespan of every allocation, in parallel when asked.
///
/// Output order matches input order regardless of thread interleaving.
/// This is the reference implementation (a fresh thread scope per call);
/// the EA itself runs on [`EvalPool`] + [`FitnessEngine`].
pub fn evaluate_fitness(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
) -> Vec<f64> {
    evaluate_fitness_bounded(g, matrix, allocs, parallel, f64::INFINITY)
        .into_iter()
        .map(|f| f.expect("infinite cutoff never rejects"))
        .collect()
}

/// Like [`evaluate_fitness`], but with the rejection strategy: allocations
/// whose partial schedule provably exceeds `cutoff` return `None` without
/// their full schedule ever being constructed (the paper's §VI proposal).
///
/// The cutoff is a *constant per call* (not updated between offspring), so
/// results stay deterministic and order-independent under parallelism.
pub fn evaluate_fitness_bounded(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
    cutoff: f64,
) -> Vec<Option<f64>> {
    let eval = |a: &Allocation| ListScheduler.makespan_bounded(g, matrix, a, cutoff);
    if !parallel || allocs.len() < 4 {
        return allocs.iter().map(eval).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(allocs.len());
    let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
    let chunk = allocs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (alloc_chunk, result_chunk) in allocs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (a, r) in alloc_chunk.iter().zip(result_chunk.iter_mut()) {
                    *r = ListScheduler.makespan_bounded(g, matrix, a, cutoff);
                }
            });
        }
    });
    results
}

/// One batch of evaluations shared between the pool's workers.
///
/// Workers claim indices with an atomic counter, so items are never
/// evaluated twice and results land positionally no matter which worker
/// takes which item.
struct Batch {
    allocs: Vec<Allocation>,
    cutoff: f64,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// One write-once slot per allocation.
    results: Vec<OnceLock<BoundedEval>>,
    /// Items not yet finished; the worker that finishes the last one flags
    /// `done`.
    pending: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// Claims and evaluates items from `batch` until none remain.
///
/// When recording, each evaluation's duration feeds the
/// `pool.eval_seconds` latency histogram (callable from any thread).
fn drain_batch<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    batch: &Batch,
    scratch: &mut EvalScratch,
    rec: &R,
) {
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.allocs.len() {
            return;
        }
        let eval_start = if R::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let outcome = ListScheduler.evaluate_bounded_obs(
            g,
            matrix,
            &batch.allocs[i],
            batch.cutoff,
            scratch,
            rec,
        );
        if let Some(t) = eval_start {
            rec.latency("pool.eval_seconds", t.elapsed().as_secs_f64());
        }
        batch.results[i]
            .set(outcome)
            .expect("each index is claimed exactly once");
        if batch.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *batch.done.lock().expect("no poisoned batch lock") = true;
            batch.done_cv.notify_all();
        }
    }
}

/// A worker: one scratch for its whole lifetime, batches from the shared
/// channel until the pool is dropped.
///
/// When recording, the worker accumulates its busy time locally and flushes
/// it **once at shutdown**: total seconds into the flat `pool/worker_busy`
/// phase, its personal total into the `pool.worker_busy_seconds` histogram
/// (one sample per worker — the per-worker busy-time distribution), and
/// its batch count into `pool.worker_batches`.
fn worker_loop<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    rx: &Mutex<Receiver<Arc<Batch>>>,
    rec: &R,
) {
    let mut scratch = EvalScratch::new();
    let mut busy = 0.0f64;
    let mut batches = 0u64;
    loop {
        // Hold the receiver lock only for the handoff, not the evaluation.
        let msg = rx.lock().expect("no poisoned receiver lock").recv();
        match msg {
            Ok(batch) => {
                let batch_start = if R::ENABLED {
                    Some(Instant::now())
                } else {
                    None
                };
                drain_batch(g, matrix, &batch, &mut scratch, rec);
                if let Some(t) = batch_start {
                    busy += t.elapsed().as_secs_f64();
                    batches += 1;
                }
            }
            Err(_) => break, // pool dropped its sender: shut down
        }
    }
    if R::ENABLED && batches > 0 {
        rec.phase_add("pool/worker_busy", busy);
        rec.latency("pool.worker_busy_seconds", busy);
        rec.add("pool.worker_batches", batches);
    }
}

/// A persistent evaluation pool: worker threads spawned once (per EMTS
/// run), each owning one [`EvalScratch`], fed whole generations as batches
/// over a channel.
///
/// The calling thread participates in every batch with its own scratch, so
/// a pool with zero workers degenerates to plain serial evaluation — that
/// is also the configuration chosen when `parallel` is off.
///
/// The pool is generic over a [`Recorder`], defaulted to the no-op one so
/// existing call sites are untouched; [`EvalPool::with_recorder`] threads a
/// live recorder through the dispatch path and every worker.
pub struct EvalPool<'env, R: Recorder = NoopRecorder> {
    g: &'env Ptg,
    matrix: &'env TimeMatrix,
    /// `None` in serial mode.
    tx: Option<Sender<Arc<Batch>>>,
    workers: usize,
    /// The calling thread's scratch.
    scratch: EvalScratch,
    rec: &'env R,
}

impl<'env> EvalPool<'env> {
    /// Runs `f` with a pool over `g`/`matrix`; workers live exactly as long
    /// as the call (they are joined before `with` returns).
    ///
    /// With `parallel` false — or on a single-core machine — no threads are
    /// spawned and every evaluation runs inline on the caller's scratch.
    pub fn with<T>(
        g: &Ptg,
        matrix: &TimeMatrix,
        parallel: bool,
        f: impl FnOnce(&mut EvalPool<'_>) -> T,
    ) -> T {
        Self::with_recorder(g, matrix, parallel, &NOOP, f)
    }
}

impl<'env, REC: Recorder> EvalPool<'env, REC> {
    /// [`EvalPool::with`] with telemetry: batch dispatch/drain time, an
    /// eval-latency histogram and per-worker busy time flow into `rec`.
    pub fn with_recorder<T>(
        g: &Ptg,
        matrix: &TimeMatrix,
        parallel: bool,
        rec: &REC,
        f: impl FnOnce(&mut EvalPool<'_, REC>) -> T,
    ) -> T {
        let workers = if parallel {
            // The caller drains batches too, so spawn cores − 1 workers.
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(1)
        } else {
            0
        };
        if workers == 0 {
            let mut pool = EvalPool {
                g,
                matrix,
                tx: None,
                workers: 0,
                scratch: EvalScratch::new(),
                rec,
            };
            return f(&mut pool);
        }
        let (tx, rx) = channel::<Arc<Batch>>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = &rx;
                scope.spawn(move || worker_loop(g, matrix, rx, rec));
            }
            let mut pool = EvalPool {
                g,
                matrix,
                tx: Some(tx),
                workers,
                scratch: EvalScratch::new(),
                rec,
            };
            let out = f(&mut pool);
            // Dropping the pool drops the sender; workers see the
            // disconnect and exit, and the scope joins them.
            drop(pool);
            out
        })
    }

    /// Number of worker threads (0 in serial mode).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The recorder this pool reports into.
    pub fn recorder(&self) -> &'env REC {
        self.rec
    }

    /// Evaluates every allocation under `cutoff`; results are positional.
    pub fn run_batch(&mut self, allocs: Vec<Allocation>, cutoff: f64) -> Vec<BoundedEval> {
        let n = allocs.len();
        if n == 0 {
            return Vec::new();
        }
        let tx = match &self.tx {
            // Serial mode, and tiny batches aren't worth the dispatch.
            Some(tx) if n >= 4 => tx,
            _ => {
                if REC::ENABLED {
                    self.rec.add("pool.batches", 1);
                    self.rec.add("pool.evals", n as u64);
                }
                return allocs
                    .iter()
                    .map(|a| {
                        let eval_start = if REC::ENABLED {
                            Some(Instant::now())
                        } else {
                            None
                        };
                        let outcome = ListScheduler.evaluate_bounded_obs(
                            self.g,
                            self.matrix,
                            a,
                            cutoff,
                            &mut self.scratch,
                            self.rec,
                        );
                        if let Some(t) = eval_start {
                            self.rec
                                .latency("pool.eval_seconds", t.elapsed().as_secs_f64());
                        }
                        outcome
                    })
                    .collect();
            }
        };
        let dispatch_start = if REC::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let batch = Arc::new(Batch {
            allocs,
            cutoff,
            next: AtomicUsize::new(0),
            results: (0..n).map(|_| OnceLock::new()).collect(),
            pending: AtomicUsize::new(n),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        // One handle per worker; a worker still busy with nothing (batches
        // are strictly sequential) picks its copy up immediately. A stale
        // copy that outlives its batch drains zero items and is discarded.
        for _ in 0..self.workers.min(n) {
            tx.send(Arc::clone(&batch))
                .expect("workers outlive the pool handle");
        }
        let drain_start = if let Some(t) = dispatch_start {
            self.rec
                .phase_add("pool/dispatch", t.elapsed().as_secs_f64());
            Some(Instant::now())
        } else {
            None
        };
        drain_batch(self.g, self.matrix, &batch, &mut self.scratch, self.rec);
        let mut done = batch.done.lock().expect("no poisoned batch lock");
        while !*done {
            done = batch.done_cv.wait(done).expect("no poisoned batch lock");
        }
        drop(done);
        if let Some(t) = drain_start {
            self.rec.phase_add("pool/drain", t.elapsed().as_secs_f64());
            self.rec.add("pool.batches", 1);
            self.rec.add("pool.evals", n as u64);
        }
        batch
            .results
            .iter()
            .map(|slot| *slot.get().expect("finished batch has every result"))
            .collect()
    }
}

/// A completed evaluation's cached outcome.
#[derive(Debug, Clone, Copy)]
struct Cached {
    makespan: f64,
    reject_key: f64,
}

/// FNV-1a over the allocation's genes — the memo key.
///
/// Probing by a 64-bit hash (with full-equality confirmation on the
/// collision chain) replaces hashing the whole `Vec<u32>` through SipHash
/// on every lookup; the same hash keys the within-generation dedup maps.
fn alloc_hash(a: &Allocation) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &gene in a.as_slice() {
        h ^= gene as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Keys are already FNV-mixed 64-bit hashes — pass them straight through
/// instead of re-hashing with SipHash.
#[derive(Default)]
struct PassthroughHasher(u64);

impl std::hash::Hasher for PassthroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("only u64 keys are hashed");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type Passthrough = BuildHasherDefault<PassthroughHasher>;

/// Memoizing front end of the evaluation engine.
///
/// Keyed by a 64-bit allocation hash with full-equality confirmation. Only
/// *completed* evaluations are memoized across generations (a rejection
/// proves nothing about other cutoffs); rejections are still deduped
/// *within* a generation, whose cutoff is constant, via a per-generation
/// set cleared by [`FitnessEngine::begin_generation`]. A hit decides
/// accept/reject from the stored `reject_key` with the engine's exact test,
/// so hits and misses are bit-for-bit interchangeable.
///
/// Two evaluation paths coexist:
/// * [`FitnessEngine::evaluate`] — batch dispatch through the
///   [`EvalPool`] (the multi-core path),
/// * [`FitnessEngine::record`] + [`FitnessEngine::eval_offspring`] — the
///   serial delta path: parents carry an [`EvalRecord`] and each offspring
///   is evaluated incrementally against it (repaired bottom levels,
///   lower-bound prescreen, prefix-checkpoint replay).
pub struct FitnessEngine<'p, 'env, R: Recorder = NoopRecorder> {
    pool: &'p mut EvalPool<'env, R>,
    cache: HashMap<u64, Vec<(Allocation, Cached)>, Passthrough>,
    /// Allocations rejected at this generation's cutoff (cleared by
    /// [`Self::begin_generation`]).
    gen_rejected: HashMap<u64, Vec<Allocation>, Passthrough>,
    /// Caller-thread scratch for the delta/record path (the pool's own
    /// scratch serves its batch path).
    scratch: EvalScratch,
    repairer: BlRepairer,
    cache_entries: usize,
    hits: usize,
    misses: usize,
    noop_skips: usize,
    delta_evals: usize,
    lb_pruned: usize,
    prefix_reuse_events: u64,
}

impl<'p, 'env, R: Recorder> FitnessEngine<'p, 'env, R> {
    /// Wraps `pool` with an empty cache. Telemetry (the `emts.cache.*` and
    /// `fitness.*` counters) flows into the pool's recorder.
    pub fn new(pool: &'p mut EvalPool<'env, R>) -> Self {
        let repairer = BlRepairer::new(pool.g);
        FitnessEngine {
            pool,
            cache: HashMap::default(),
            gen_rejected: HashMap::default(),
            scratch: EvalScratch::new(),
            repairer,
            cache_entries: 0,
            hits: 0,
            misses: 0,
            noop_skips: 0,
            delta_evals: 0,
            lb_pruned: 0,
            prefix_reuse_events: 0,
        }
    }

    fn cache_probe(&self, hash: u64, a: &Allocation) -> Option<Cached> {
        self.cache
            .get(&hash)?
            .iter()
            .find(|(k, _)| k == a)
            .map(|&(_, c)| c)
    }

    fn cache_insert(&mut self, hash: u64, a: &Allocation, c: Cached) {
        let chain = self.cache.entry(hash).or_default();
        if !chain.iter().any(|(k, _)| k == a) {
            chain.push((a.clone(), c));
            self.cache_entries += 1;
        }
    }

    /// Starts a new generation: forgets which allocations were rejected at
    /// the previous generation's cutoff (the new cutoff may accept them).
    pub fn begin_generation(&mut self) {
        self.gen_rejected.clear();
    }

    /// Bounded fitness of every allocation (`None` = rejected), positional.
    ///
    /// Duplicates — across generations via the cache, and within the batch
    /// via in-batch dedup — are evaluated once.
    pub fn evaluate(&mut self, allocs: &[Allocation], cutoff: f64) -> Vec<Option<f64>> {
        // Must match the mapper's rejection threshold exactly (see
        // `ListScheduler::makespan_bounded` for why the slack exists).
        let threshold = cutoff * (1.0 + 1e-9);
        let hashes: Vec<u64> = allocs.iter().map(alloc_hash).collect();
        let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
        let mut first_seen: HashMap<u64, Vec<usize>, Passthrough> = HashMap::default();
        let mut miss_indices: Vec<usize> = Vec::new();
        let mut aliases: Vec<(usize, usize)> = Vec::new();
        let hits_before = self.hits;
        let misses_before = self.misses;
        for (i, a) in allocs.iter().enumerate() {
            let h = hashes[i];
            if let Some(c) = self.cache_probe(h, a) {
                self.hits += 1;
                results[i] = (c.reject_key <= threshold).then_some(c.makespan);
            } else if let Some(&j) = first_seen
                .get(&h)
                .and_then(|chain| chain.iter().find(|&&j| allocs[j] == *a))
            {
                self.hits += 1;
                aliases.push((i, j));
            } else {
                self.misses += 1;
                first_seen.entry(h).or_default().push(i);
                miss_indices.push(i);
            }
        }
        if R::ENABLED {
            let rec = self.pool.recorder();
            rec.add("emts.cache.hits", (self.hits - hits_before) as u64);
            rec.add("emts.cache.misses", (self.misses - misses_before) as u64);
        }
        if !miss_indices.is_empty() {
            let batch: Vec<Allocation> = miss_indices.iter().map(|&i| allocs[i].clone()).collect();
            let outcomes = self.pool.run_batch(batch, cutoff);
            for (&i, outcome) in miss_indices.iter().zip(outcomes) {
                match outcome {
                    BoundedEval::Complete {
                        makespan,
                        reject_key,
                    } => {
                        self.cache_insert(
                            hashes[i],
                            &allocs[i],
                            Cached {
                                makespan,
                                reject_key,
                            },
                        );
                        results[i] = Some(makespan);
                    }
                    BoundedEval::Rejected => results[i] = None,
                }
            }
        }
        for (i, j) in aliases {
            results[i] = results[j];
        }
        results
    }

    /// Fully evaluates `alloc` and captures the [`EvalRecord`] the delta
    /// path replays offspring against.
    ///
    /// Scheduler counters flow into the recorder (this is a real mapper
    /// pass), but **no** `pool.eval_seconds` sample is emitted and no
    /// hit/miss is counted: recording survivors is bookkeeping for the next
    /// generation, not an offspring evaluation.
    pub fn record(&mut self, alloc: &Allocation) -> Arc<EvalRecord> {
        let rec = self.pool.recorder();
        Arc::new(ListScheduler.evaluate_recorded(
            self.pool.g,
            self.pool.matrix,
            alloc,
            &mut self.scratch,
            rec,
        ))
    }

    /// Bounded fitness of one offspring via the incremental path
    /// (`None` = rejected at `cutoff`). Bit-identical to
    /// [`Self::evaluate`] on the same input.
    ///
    /// `changed` lists the genes where `child` differs from the parent
    /// behind `parent_record` (as reported by
    /// [`crate::MutationOperator::mutate`]). The pipeline, cheapest test
    /// first: no-op skip (empty `changed` replays the parent's decision) →
    /// memo probe → this generation's rejection set → delta evaluation
    /// (repaired bottom levels, LB prescreen, checkpoint replay). Every
    /// offspring counts as exactly one cache hit or miss; only the last
    /// step is a miss.
    pub fn eval_offspring(
        &mut self,
        parent_record: Option<&EvalRecord>,
        child: &Allocation,
        changed: &[TaskId],
        cutoff: f64,
    ) -> Option<f64> {
        let threshold = cutoff * (1.0 + 1e-9);
        let rec = self.pool.recorder();
        if changed.is_empty() {
            if let Some(r) = parent_record {
                self.hits += 1;
                self.noop_skips += 1;
                if R::ENABLED {
                    rec.add("emts.cache.hits", 1);
                    rec.add("fitness.noop_skips", 1);
                }
                return r.decide(cutoff);
            }
        }
        let h = alloc_hash(child);
        if let Some(c) = self.cache_probe(h, child) {
            self.hits += 1;
            if R::ENABLED {
                rec.add("emts.cache.hits", 1);
            }
            return (c.reject_key <= threshold).then_some(c.makespan);
        }
        if self
            .gen_rejected
            .get(&h)
            .is_some_and(|chain| chain.iter().any(|k| k == child))
        {
            // Same allocation, same cutoff (constant within a generation):
            // same rejection.
            self.hits += 1;
            if R::ENABLED {
                rec.add("emts.cache.hits", 1);
            }
            return None;
        }
        self.misses += 1;
        let eval_start = if R::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let outcome = match parent_record {
            Some(r) => {
                let d = ListScheduler.evaluate_delta(
                    self.pool.g,
                    self.pool.matrix,
                    r,
                    child,
                    changed,
                    cutoff,
                    &mut self.scratch,
                    &mut self.repairer,
                    rec,
                );
                self.delta_evals += 1;
                self.prefix_reuse_events += u64::from(d.events_reused);
                if d.lb_pruned {
                    self.lb_pruned += 1;
                }
                if R::ENABLED {
                    rec.add("fitness.delta_evals", 1);
                    rec.add("fitness.prefix_reuse_events", u64::from(d.events_reused));
                    if d.lb_pruned {
                        rec.add("fitness.lb_pruned", 1);
                    }
                }
                d.outcome
            }
            None => ListScheduler.evaluate_bounded_obs(
                self.pool.g,
                self.pool.matrix,
                child,
                cutoff,
                &mut self.scratch,
                rec,
            ),
        };
        if let Some(t) = eval_start {
            rec.latency("pool.eval_seconds", t.elapsed().as_secs_f64());
            rec.add("emts.cache.misses", 1);
        }
        match outcome {
            BoundedEval::Complete {
                makespan,
                reject_key,
            } => {
                self.cache_insert(
                    h,
                    child,
                    Cached {
                        makespan,
                        reject_key,
                    },
                );
                Some(makespan)
            }
            BoundedEval::Rejected => {
                let chain = self.gen_rejected.entry(h).or_default();
                if !chain.iter().any(|k| k == child) {
                    chain.push(child.clone());
                }
                None
            }
        }
    }

    /// Evaluations answered from the cache (including in-batch duplicates,
    /// no-op skips and within-generation rejection replays).
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// Evaluations that ran the mapper.
    pub fn cache_misses(&self) -> usize {
        self.misses
    }

    /// Distinct completed allocations currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache_entries
    }

    /// Offspring skipped because their mutation was a clamped no-op.
    pub fn noop_skips(&self) -> usize {
        self.noop_skips
    }

    /// Misses evaluated through the incremental (delta) path.
    pub fn delta_evals(&self) -> usize {
        self.delta_evals
    }

    /// Delta evaluations rejected by the lower-bound prescreen alone.
    pub fn lb_pruned(&self) -> usize {
        self.lb_pruned
    }

    /// Placement events replayed from parent prefixes instead of being
    /// simulated.
    pub fn prefix_reuse_events(&self) -> u64 {
        self.prefix_reuse_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{SyntheticModel, TimeMatrix};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sched::Mapper as _;
    use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

    fn setup() -> (Ptg, TimeMatrix, Vec<Allocation>) {
        let params = DaggenParams {
            n: 50,
            width: 0.5,
            regularity: 0.8,
            density: 0.5,
            jump: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 120);
        let allocs: Vec<Allocation> = (0..23)
            .map(|_| Allocation::from_vec((0..50).map(|_| rng.gen_range(1..=120)).collect()))
            .collect();
        (g, m, allocs)
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let (g, m, allocs) = setup();
        let serial = evaluate_fitness(&g, &m, &allocs, false);
        let parallel = evaluate_fitness(&g, &m, &allocs, true);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_are_positional() {
        let (g, m, allocs) = setup();
        let fitness = evaluate_fitness(&g, &m, &allocs, true);
        for (a, f) in allocs.iter().zip(&fitness) {
            assert_eq!(*f, ListScheduler.makespan(&g, &m, a));
        }
    }

    #[test]
    fn small_batches_take_the_serial_path() {
        let (g, m, allocs) = setup();
        let few = &allocs[..2];
        let fitness = evaluate_fitness(&g, &m, few, true);
        assert_eq!(fitness.len(), 2);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let (g, m, _) = setup();
        assert!(evaluate_fitness(&g, &m, &[], true).is_empty());
    }

    #[test]
    fn bounded_evaluation_rejects_consistently_in_parallel_and_serial() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        let serial = evaluate_fitness_bounded(&g, &m, &allocs, false, cutoff);
        let parallel = evaluate_fitness_bounded(&g, &m, &allocs, true, cutoff);
        assert_eq!(serial, parallel);
        // Accepted values equal the exact makespans; rejected ones exceeded
        // the cutoff.
        for ((bounded, &ms), alloc) in serial.iter().zip(&exact).zip(&allocs) {
            match bounded {
                Some(f) => assert_eq!(*f, ms, "{alloc:?}"),
                None => assert!(ms > cutoff, "rejected but exact {ms} ≤ cutoff {cutoff}"),
            }
        }
        // The chosen cutoff must actually reject about half the batch.
        let rejected = serial.iter().filter(|f| f.is_none()).count();
        assert!(rejected > 0 && rejected < allocs.len());
    }

    #[test]
    fn pool_matches_scoped_reference_with_and_without_cutoff() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        for parallel in [false, true] {
            for c in [f64::INFINITY, cutoff] {
                let reference = evaluate_fitness_bounded(&g, &m, &allocs, false, c);
                let pooled = EvalPool::with(&g, &m, parallel, |pool| {
                    pool.run_batch(allocs.clone(), c)
                        .into_iter()
                        .map(|o| match o {
                            BoundedEval::Complete { makespan, .. } => Some(makespan),
                            BoundedEval::Rejected => None,
                        })
                        .collect::<Vec<_>>()
                });
                assert_eq!(reference, pooled, "parallel={parallel} cutoff={c}");
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        EvalPool::with(&g, &m, true, |pool| {
            for _ in 0..3 {
                let got: Vec<f64> = pool
                    .run_batch(allocs.clone(), f64::INFINITY)
                    .into_iter()
                    .map(|o| match o {
                        BoundedEval::Complete { makespan, .. } => makespan,
                        BoundedEval::Rejected => unreachable!("infinite cutoff"),
                    })
                    .collect();
                assert_eq!(reference, got);
            }
        });
    }

    #[test]
    fn engine_cache_hits_return_identical_values() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let first = engine.evaluate(&allocs, f64::INFINITY);
            assert_eq!(engine.cache_misses(), allocs.len());
            assert_eq!(engine.cache_hits(), 0);
            let second = engine.evaluate(&allocs, f64::INFINITY);
            assert_eq!(engine.cache_hits(), allocs.len());
            assert_eq!(first, second);
            for (f, r) in first.iter().zip(&reference) {
                assert_eq!(f.unwrap(), *r);
            }
        });
    }

    #[test]
    fn engine_cached_rejection_decisions_match_fresh_evaluation() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            // Warm the cache with completions (infinite cutoff), then query
            // at a tight cutoff: every answer must come from the cache and
            // equal the engine's own decision.
            let _ = engine.evaluate(&allocs, f64::INFINITY);
            let misses_before = engine.cache_misses();
            let cached = engine.evaluate(&allocs, cutoff);
            assert_eq!(engine.cache_misses(), misses_before, "all hits expected");
            let fresh = evaluate_fitness_bounded(&g, &m, &allocs, false, cutoff);
            assert_eq!(cached, fresh);
        });
    }

    #[test]
    fn engine_deduplicates_within_a_batch() {
        let (g, m, allocs) = setup();
        let mut dup = allocs.clone();
        dup.extend(allocs.iter().take(5).cloned());
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let results = engine.evaluate(&dup, f64::INFINITY);
            assert_eq!(engine.cache_misses(), allocs.len());
            assert_eq!(engine.cache_hits(), 5);
            for i in 0..5 {
                assert_eq!(results[i], results[allocs.len() + i]);
            }
        });
    }

    #[test]
    fn rejected_evaluations_are_not_cached() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let bounded = engine.evaluate(&allocs, cutoff);
            let completed = bounded.iter().filter(|f| f.is_some()).count();
            assert_eq!(engine.cache_len(), completed);
        });
    }

    fn stats_median(values: &[f64]) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }

    #[test]
    fn alloc_hash_distinguishes_permutations_and_neighbors() {
        let a = Allocation::from_vec(vec![1, 2, 3, 4]);
        let b = Allocation::from_vec(vec![4, 3, 2, 1]);
        let c = Allocation::from_vec(vec![1, 2, 3, 5]);
        assert_ne!(alloc_hash(&a), alloc_hash(&b));
        assert_ne!(alloc_hash(&a), alloc_hash(&c));
        assert_eq!(alloc_hash(&a), alloc_hash(&a.clone()));
    }

    #[test]
    fn offspring_path_is_bit_identical_to_fresh_evaluation() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        let exact_parent = ListScheduler.makespan(&g, &m, &parent);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            assert_eq!(record.makespan().to_bits(), exact_parent.to_bits());
            for cutoff in [f64::INFINITY, exact_parent * 1.05, exact_parent * 0.9] {
                engine.begin_generation();
                for _ in 0..20 {
                    let mut child = parent.clone();
                    let mut changed = Vec::new();
                    for _ in 0..rng.gen_range(1..=3usize) {
                        let t = ptg::TaskId(rng.gen_range(0..50u32));
                        child.set(t, rng.gen_range(1..=120));
                        changed.push(t);
                    }
                    let got = engine.eval_offspring(Some(&record), &child, &changed, cutoff);
                    let fresh = ListScheduler.makespan_bounded(&g, &m, &child, cutoff);
                    assert_eq!(
                        got.map(f64::to_bits),
                        fresh.map(f64::to_bits),
                        "cutoff {cutoff}"
                    );
                }
            }
        });
    }

    #[test]
    fn noop_offspring_replays_parent_decision_as_a_hit() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        let ms = ListScheduler.makespan(&g, &m, &parent);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            let got = engine.eval_offspring(Some(&record), &parent, &[], f64::INFINITY);
            assert_eq!(got.map(f64::to_bits), Some(ms.to_bits()));
            assert_eq!(engine.cache_hits(), 1);
            assert_eq!(engine.cache_misses(), 0);
            assert_eq!(engine.noop_skips(), 1);
            // At a cutoff below the parent's makespan the replay rejects.
            assert_eq!(
                engine.eval_offspring(Some(&record), &parent, &[], ms * 0.5),
                None
            );
        });
    }

    #[test]
    fn within_generation_rejections_are_deduped_until_the_next_generation() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        let ms = ListScheduler.makespan(&g, &m, &parent);
        // A clearly-worse child: stretch one gene, screen far below parent.
        let mut child = parent.clone();
        let t0 = ptg::TaskId(0);
        child.set(t0, if parent.of(t0) == 120 { 1 } else { 120 });
        let cutoff = ms * 0.1;
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            engine.begin_generation();
            assert_eq!(
                engine.eval_offspring(Some(&record), &child, &[t0], cutoff),
                None
            );
            let misses_after_first = engine.cache_misses();
            // Same offspring again in the same generation: a hit, no eval.
            assert_eq!(
                engine.eval_offspring(Some(&record), &child, &[t0], cutoff),
                None
            );
            assert_eq!(engine.cache_misses(), misses_after_first);
            assert_eq!(engine.cache_hits(), 1);
            // Next generation may have a different cutoff: re-evaluated.
            engine.begin_generation();
            assert_eq!(
                engine.eval_offspring(Some(&record), &child, &[t0], f64::INFINITY),
                Some(ListScheduler.makespan(&g, &m, &child))
            );
            assert_eq!(engine.cache_misses(), misses_after_first + 1);
        });
    }

    #[test]
    fn offspring_and_batch_paths_share_the_memo() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            let mut child = parent.clone();
            child.set(ptg::TaskId(3), 7);
            let via_delta =
                engine.eval_offspring(Some(&record), &child, &[ptg::TaskId(3)], f64::INFINITY);
            assert_eq!(engine.cache_misses(), 1);
            // The batch path must now answer the same allocation from cache.
            let via_batch = engine.evaluate(std::slice::from_ref(&child), f64::INFINITY);
            assert_eq!(engine.cache_misses(), 1, "expected a memo hit");
            assert_eq!(via_batch[0].map(f64::to_bits), via_delta.map(f64::to_bits));
        });
    }
}
