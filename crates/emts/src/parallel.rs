//! The fitness evaluation engine: persistent worker pool + memo cache.
//!
//! The paper notes the EA's cost "is mainly determined by the mapping
//! function as it evaluates the fitness of individuals". Fitness evaluation
//! is pure — the list scheduler reads the PTG and the time matrix and
//! returns a makespan — so the λ offspring of a generation can be evaluated
//! on all cores with no effect on the results: mutation (the only RNG
//! consumer) stays on the caller's thread.
//!
//! Three layers, composed by [`crate::Emts::run`]:
//!
//! * [`sched::EvalScratch`] (in the `sched` crate) — one set of reusable
//!   buffers per thread, so a steady-state evaluation performs zero heap
//!   allocations,
//! * [`EvalPool`] — worker threads spawned **once per run** and fed batches
//!   over a channel, instead of a fresh thread scope per generation,
//! * [`FitnessEngine`] — a memo cache in front of the pool keyed by the
//!   allocation vector: plus-selection and the shrinking mutation operator
//!   frequently reproduce earlier individuals, and a cached individual
//!   skips the mapper entirely.
//!
//! Caching cannot change any result: the mapper is deterministic in the
//! allocation, and a completed evaluation's [`sched::BoundedEval`] carries
//! `reject_key = max_v (start(v) + bl(v))`, the exact quantity the engine's
//! in-flight rejection test compares against the cutoff — so the cache
//! reproduces accept/reject decisions for *any* later cutoff bit-for-bit.
//!
//! [`evaluate_fitness`] / [`evaluate_fitness_bounded`] keep the original
//! scope-per-call implementation as the reference path; the equivalence
//! tests and the `emts_generation` bench compare the engine against it.
//!
//! # Self-healing
//!
//! The pool treats its workers as expendable. Failures are contained in
//! three rings, all of which preserve the batch's results exactly (the
//! mapper is deterministic, so a re-evaluated item is bit-identical):
//!
//! 1. **Per-item containment** — each worker evaluation runs under
//!    [`std::panic::catch_unwind`]. A panic poisons at most that item: the
//!    worker counts it (`pool.worker_panics`), discards its scratch (whose
//!    buffers may be mid-update) and moves on; the caller later fills the
//!    empty result slot serially (`pool.serial_fallbacks`).
//! 2. **Worker respawn** — a panic that escapes ring 1 (e.g. a wedged
//!    claim) unwinds the worker's whole incarnation; the outer loop in
//!    [`worker_loop`] catches it, counts `pool.respawns` and starts a
//!    fresh incarnation — new scratch, same OS thread — so the pool
//!    returns to full strength without touching the thread scope.
//! 3. **Batch deadline** — the dispatcher waits on the batch with a
//!    timeout instead of indefinitely. If pending items stop making
//!    progress ([`PoolError::Stalled`] — a worker died between claiming an
//!    item and finishing it), the caller evaluates every missing item
//!    itself and the run continues.
//!
//! Lock poisoning is recovered rather than propagated: every mutex here
//! protects state that is consistent at all times (a `bool`, a channel
//! receiver), so clearing the poison is correct — see [`lock_recover`].

use exec_model::TimeMatrix;
use obs::{NoopRecorder, Recorder};
use ptg::critpath::BlRepairer;
use ptg::{Ptg, TaskId};
use sched::{
    Allocation, BoundedEval, EvalRecord, EvalScratch, ListScheduler, Surrogate, TwoTierEval,
};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// The shared disabled recorder every un-instrumented entry point points
/// at (a zero-sized type, so this is purely a lifetime convenience).
static NOOP: NoopRecorder = NoopRecorder;

/// Why a pool interaction degraded. Degradation is never fatal: the
/// dispatcher falls back to evaluating the affected items on the calling
/// thread, so [`EvalPool::run_batch`] always returns a complete result.
/// The most recent degradation is kept in [`EvalPool::last_error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The batch channel had no receiver left, so no worker could be
    /// handed the batch.
    Disconnected,
    /// A dispatched batch stopped making progress before completing — a
    /// worker died between claiming an item and publishing its result.
    Stalled {
        /// Result slots still empty when the stall was declared.
        missing: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Disconnected => write!(f, "evaluation pool channel disconnected"),
            PoolError::Stalled { missing } => {
                write!(f, "evaluation batch stalled with {missing} missing results")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Failure injection for the pool's self-healing tests.
///
/// The armed counters are consumed by *worker threads only* — the caller's
/// own drain never checks them — so every injected failure exercises a
/// recovery path instead of unwinding the EA. The hooks are process-global
/// (tests that arm them must serialize) and cost one relaxed atomic load
/// per worker evaluation when disarmed.
#[doc(hidden)]
pub mod sabotage {
    use std::sync::atomic::{AtomicI64, Ordering};

    static EVAL_PANICS: AtomicI64 = AtomicI64::new(0);
    static WORKER_DEATHS: AtomicI64 = AtomicI64::new(0);

    /// Arms the next `n` worker evaluations to panic mid-mapper (a
    /// "poisoned allocation"): each leaves its result slot empty and costs
    /// the worker its scratch.
    pub fn arm_eval_panics(n: u64) {
        EVAL_PANICS.store(n.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Arms the next `n` batch-item claims to kill their worker's
    /// incarnation outright: the claimed item is never finished, so the
    /// batch stalls until the dispatcher's deadline fires.
    pub fn arm_worker_deaths(n: u64) {
        WORKER_DEATHS.store(n.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Disarms both hooks.
    pub fn disarm() {
        EVAL_PANICS.store(0, Ordering::SeqCst);
        WORKER_DEATHS.store(0, Ordering::SeqCst);
    }

    fn take(counter: &AtomicI64) -> bool {
        if counter.load(Ordering::Relaxed) <= 0 {
            return false;
        }
        counter.fetch_sub(1, Ordering::AcqRel) > 0
    }

    pub(super) fn eval_should_panic() -> bool {
        take(&EVAL_PANICS)
    }

    pub(super) fn claim_should_die() -> bool {
        take(&WORKER_DEATHS)
    }
}

/// Locks `m`, recovering the guard if a thread panicked while holding it.
///
/// Every critical section around the pool's mutexes leaves the protected
/// value consistent at all times (`done` is a single bool, the receiver's
/// internal state is `mpsc`'s own), so a poisoned lock carries no torn
/// data — clearing the poison is the correct recovery, not a masked bug.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared between the pool handle and its workers. It lives on the
/// stack frame of [`EvalPool::with_workers`] *outside* the thread scope,
/// so respawned worker incarnations keep borrowing it.
struct PoolCore {
    /// Hands batches to workers; locked only for the handoff.
    rx: Mutex<Receiver<Arc<Batch>>>,
    /// Worker threads currently running `worker_loop`.
    live: AtomicUsize,
    /// Evaluations that panicked inside a worker (ring-1 containment).
    panics: AtomicU64,
    /// Worker incarnations restarted after an uncontained panic (ring 2).
    respawns: AtomicU64,
}

/// Evaluates the makespan of every allocation, in parallel when asked.
///
/// Output order matches input order regardless of thread interleaving.
/// This is the reference implementation (a fresh thread scope per call);
/// the EA itself runs on [`EvalPool`] + [`FitnessEngine`].
pub fn evaluate_fitness(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
) -> Vec<f64> {
    evaluate_fitness_bounded(g, matrix, allocs, parallel, f64::INFINITY)
        .into_iter()
        .map(|f| f.expect("infinite cutoff never rejects"))
        .collect()
}

/// Like [`evaluate_fitness`], but with the rejection strategy: allocations
/// whose partial schedule provably exceeds `cutoff` return `None` without
/// their full schedule ever being constructed (the paper's §VI proposal).
///
/// The cutoff is a *constant per call* (not updated between offspring), so
/// results stay deterministic and order-independent under parallelism.
pub fn evaluate_fitness_bounded(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
    cutoff: f64,
) -> Vec<Option<f64>> {
    let eval = |a: &Allocation| ListScheduler.makespan_bounded(g, matrix, a, cutoff);
    if !parallel || allocs.len() < 4 {
        return allocs.iter().map(eval).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(allocs.len());
    let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
    let chunk = allocs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (alloc_chunk, result_chunk) in allocs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (a, r) in alloc_chunk.iter().zip(result_chunk.iter_mut()) {
                    *r = ListScheduler.makespan_bounded(g, matrix, a, cutoff);
                }
            });
        }
    });
    results
}

/// How a batch evaluates each of its items.
#[derive(Debug, Clone, Copy)]
enum EvalMode {
    /// Exact bounded evaluation for every item.
    Exact,
    /// Tier-1 surrogate screen per item, exact core only when the interval
    /// cannot prove rejection — screening cost thereby runs on the workers
    /// ("the screening is itself pooled").
    TwoTier(Surrogate),
}

/// One item's outcome under its batch's [`EvalMode`].
#[derive(Debug, Clone, Copy)]
enum ItemEval {
    Exact(BoundedEval),
    Tiered(TwoTierEval),
}

impl ItemEval {
    fn into_exact(self) -> BoundedEval {
        match self {
            ItemEval::Exact(e) => e,
            ItemEval::Tiered(_) => unreachable!("exact batch produced a tiered result"),
        }
    }

    fn into_tiered(self) -> TwoTierEval {
        match self {
            ItemEval::Tiered(t) => t,
            ItemEval::Exact(_) => unreachable!("two-tier batch produced an exact result"),
        }
    }
}

/// Evaluates one allocation under `mode` — the single evaluation routine
/// behind workers, the caller's drain, the small-batch inline path and the
/// fallback fill, so every path of a batch agrees on the tier policy.
// lint:panic-root
fn eval_one<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    a: &Allocation,
    cutoff: f64,
    mode: EvalMode,
    scratch: &mut EvalScratch,
    rec: &R,
) -> ItemEval {
    match mode {
        EvalMode::Exact => {
            ItemEval::Exact(ListScheduler.evaluate_bounded_obs(g, matrix, a, cutoff, scratch, rec))
        }
        EvalMode::TwoTier(cfg) => ItemEval::Tiered(
            ListScheduler.evaluate_two_tier_obs(g, matrix, a, cutoff, &cfg, scratch, rec),
        ),
    }
}

/// One batch of evaluations shared between the pool's workers.
///
/// Workers claim indices with an atomic counter, so items are never
/// evaluated twice and results land positionally no matter which worker
/// takes which item.
struct Batch {
    allocs: Vec<Allocation>,
    cutoff: f64,
    mode: EvalMode,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// One write-once slot per allocation.
    results: Vec<OnceLock<ItemEval>>,
    /// Items not yet finished; the worker that finishes the last one flags
    /// `done`.
    pending: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// Claims and evaluates items from `batch` until none remain.
///
/// Worker threads pass `Some(core)`, which turns on ring-1 containment:
/// the evaluation runs under `catch_unwind`, and a panicking item merely
/// leaves its result slot empty (counted in `pool.worker_panics`; the
/// scratch, possibly mid-update when the unwind hit, is rebuilt). The
/// calling thread passes `None` and evaluates bare — a panic there is the
/// caller's own bug and must propagate.
///
/// When recording, each evaluation's duration feeds the
/// `pool.eval_seconds` latency histogram (callable from any thread).
// lint:panic-root
fn drain_batch<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    batch: &Batch,
    scratch: &mut EvalScratch,
    rec: &R,
    core: Option<&PoolCore>,
) {
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.allocs.len() {
            return;
        }
        if core.is_some() && sabotage::claim_should_die() {
            // Simulated hard death: unwind with the claim unfinished, so
            // `pending` never reaches zero and the batch is left to the
            // dispatcher's stall deadline. `worker_loop`'s outer ring
            // catches this and respawns the incarnation.
            // lint:allow(src-panic-reach) -- deliberate fault injection; the incarnation ring contains the unwind
            panic!("sabotage: worker died mid-item");
        }
        let eval_start = if R::ENABLED {
            // lint:allow(src-timing) -- recorder phase accounting.
            Some(Instant::now())
        } else {
            None
        };
        let outcome = if let Some(core) = core {
            // AssertUnwindSafe: on Err the scratch (the only &mut crossing
            // the boundary) is discarded wholesale, never observed torn.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                if sabotage::eval_should_panic() {
                    // lint:allow(src-panic-reach) -- deliberate fault injection; caught by the per-item catch_unwind
                    panic!("sabotage: poisoned allocation");
                }
                eval_one(
                    g,
                    matrix,
                    &batch.allocs[i],
                    batch.cutoff,
                    batch.mode,
                    scratch,
                    rec,
                )
            }));
            match attempt {
                Ok(outcome) => Some(outcome),
                Err(_) => {
                    core.panics.fetch_add(1, Ordering::Relaxed);
                    if R::ENABLED {
                        rec.add("pool.worker_panics", 1);
                    }
                    *scratch = EvalScratch::with_capacity(g.task_count(), matrix.p_max());
                    None
                }
            }
        } else {
            Some(eval_one(
                g,
                matrix,
                &batch.allocs[i],
                batch.cutoff,
                batch.mode,
                scratch,
                rec,
            ))
        };
        if let Some(t) = eval_start {
            rec.latency("pool.eval_seconds", t.elapsed().as_secs_f64());
        }
        if let Some(outcome) = outcome {
            // May lose a race against the dispatcher's fallback fill of
            // the same slot; both compute the same value, so first wins.
            let _ = batch.results[i].set(outcome);
        }
        if batch.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *lock_recover(&batch.done) = true;
            batch.done_cv.notify_all();
        }
    }
}

/// A worker thread: runs incarnations of [`worker_incarnation`] until one
/// ends cleanly (channel disconnect — the pool shut down). An incarnation
/// that *panics* out — a failure that escaped per-item containment — is
/// replaced by a fresh one on the same OS thread: new scratch, respawn
/// counted. The thread scope never sees a panicked worker.
// lint:panic-root
fn worker_loop<R: Recorder>(g: &Ptg, matrix: &TimeMatrix, core: &PoolCore, rec: &R) {
    /// Keeps `PoolCore::live` honest no matter how the thread exits.
    struct LiveGuard<'a>(&'a AtomicUsize);
    impl Drop for LiveGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }
    // `live` was incremented at the spawn site, so the pool handle sees
    // full strength from the moment it exists.
    let _guard = LiveGuard(&core.live);
    loop {
        match catch_unwind(AssertUnwindSafe(|| {
            worker_incarnation(g, matrix, core, rec)
        })) {
            Ok(()) => break,
            Err(_) => {
                core.respawns.fetch_add(1, Ordering::Relaxed);
                if R::ENABLED {
                    rec.add("pool.respawns", 1);
                }
            }
        }
    }
}

/// One worker incarnation: one scratch for its lifetime, batches from the
/// shared channel until the pool is dropped.
///
/// When recording, the incarnation accumulates its busy time locally and
/// flushes it **once at shutdown**: total seconds into the flat
/// `pool/worker_busy` phase, its personal total into the
/// `pool.worker_busy_seconds` histogram (one sample per worker — the
/// per-worker busy-time distribution), and its batch count into
/// `pool.worker_batches`. An incarnation that dies mid-batch loses its
/// unflushed telemetry — an accepted imprecision of the failure path.
// lint:panic-root
fn worker_incarnation<R: Recorder>(g: &Ptg, matrix: &TimeMatrix, core: &PoolCore, rec: &R) {
    let mut scratch = EvalScratch::with_capacity(g.task_count(), matrix.p_max());
    let mut busy = 0.0f64;
    let mut batches = 0u64;
    loop {
        // Hold the receiver lock only for the handoff, not the evaluation.
        let msg = lock_recover(&core.rx).recv();
        match msg {
            Ok(batch) => {
                let batch_start = if R::ENABLED {
                    // lint:allow(src-timing) -- recorder phase accounting.
                    Some(Instant::now())
                } else {
                    None
                };
                // Thread-local span: one `pool.batch` interval per drained
                // batch on this worker's flight-recorder lane.
                let batch_span = rec.trace_span("pool.batch");
                drain_batch(g, matrix, &batch, &mut scratch, rec, Some(core));
                drop(batch_span);
                if let Some(t) = batch_start {
                    busy += t.elapsed().as_secs_f64();
                    batches += 1;
                }
            }
            Err(_) => break, // pool dropped its sender: shut down
        }
    }
    if R::ENABLED && batches > 0 {
        rec.phase_add("pool/worker_busy", busy);
        rec.latency("pool.worker_busy_seconds", busy);
        rec.add("pool.worker_batches", batches);
    }
}

/// A persistent evaluation pool: worker threads spawned once (per EMTS
/// run), each owning one [`EvalScratch`], fed whole generations as batches
/// over a channel.
///
/// The calling thread participates in every batch with its own scratch, so
/// a pool with zero workers degenerates to plain serial evaluation — that
/// is also the configuration chosen when `parallel` is off.
///
/// The pool is generic over a [`Recorder`], defaulted to the no-op one so
/// existing call sites are untouched; [`EvalPool::with_recorder`] threads a
/// live recorder through the dispatch path and every worker.
pub struct EvalPool<'env, R: Recorder = NoopRecorder> {
    g: &'env Ptg,
    matrix: &'env TimeMatrix,
    /// `None` in serial mode.
    tx: Option<Sender<Arc<Batch>>>,
    workers: usize,
    /// The calling thread's scratch.
    scratch: EvalScratch,
    rec: &'env R,
    /// Shared worker-side state; `None` in serial mode.
    core: Option<&'env PoolCore>,
    /// Batch items the caller re-evaluated serially after the pool failed
    /// to produce them (panicked or stalled items).
    serial_fallbacks: u64,
    /// The most recent degradation the dispatcher recovered from.
    last_error: Option<PoolError>,
}

/// How long the dispatcher waits between progress checks on an
/// outstanding batch.
const STALL_WINDOW: Duration = Duration::from_millis(100);
/// Consecutive windows without a single item completing before the batch
/// is declared stalled. A false positive (a worker merely slow, not dead)
/// only costs duplicated work: the caller and the worker race to fill the
/// same write-once slot with the same deterministic value.
const STALL_WINDOWS: u32 = 2;

impl<'env> EvalPool<'env> {
    /// Runs `f` with a pool over `g`/`matrix`; workers live exactly as long
    /// as the call (they are joined before `with` returns).
    ///
    /// With `parallel` false — or on a single-core machine — no threads are
    /// spawned and every evaluation runs inline on the caller's scratch.
    pub fn with<T>(
        g: &Ptg,
        matrix: &TimeMatrix,
        parallel: bool,
        f: impl FnOnce(&mut EvalPool<'_>) -> T,
    ) -> T {
        Self::with_recorder(g, matrix, parallel, &NOOP, f)
    }
}

impl<'env, REC: Recorder> EvalPool<'env, REC> {
    /// [`EvalPool::with`] with telemetry: batch dispatch/drain time, an
    /// eval-latency histogram and per-worker busy time flow into `rec`.
    pub fn with_recorder<T>(
        g: &Ptg,
        matrix: &TimeMatrix,
        parallel: bool,
        rec: &REC,
        f: impl FnOnce(&mut EvalPool<'_, REC>) -> T,
    ) -> T {
        let workers = if parallel {
            // The caller drains batches too, so spawn cores − 1 workers.
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(1)
        } else {
            0
        };
        Self::with_workers(g, matrix, workers, rec, f)
    }

    /// [`EvalPool::with_recorder`] with an explicit worker count instead
    /// of one derived from the machine: benchmarks pin their concurrency
    /// with it, and the self-healing tests use it to force a worker-backed
    /// pool on single-core machines (where `with_recorder` chooses zero).
    pub fn with_workers<T>(
        g: &Ptg,
        matrix: &TimeMatrix,
        workers: usize,
        rec: &REC,
        f: impl FnOnce(&mut EvalPool<'_, REC>) -> T,
    ) -> T {
        if workers == 0 {
            let mut pool = EvalPool {
                g,
                matrix,
                tx: None,
                workers: 0,
                scratch: EvalScratch::with_capacity(g.task_count(), matrix.p_max()),
                rec,
                core: None,
                serial_fallbacks: 0,
                last_error: None,
            };
            return f(&mut pool);
        }
        let (tx, rx) = channel::<Arc<Batch>>();
        // Outlives the scope below, so respawned incarnations can keep
        // borrowing it.
        let core = PoolCore {
            rx: Mutex::new(rx),
            live: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
        };
        std::thread::scope(|scope| {
            for i in 0..workers {
                // Incremented here (not in the worker) so the handle sees
                // full strength from the moment it exists.
                core.live.fetch_add(1, Ordering::AcqRel);
                let core = &core;
                // Named threads give flight-recorder lanes (and panic
                // messages) a stable worker identity.
                std::thread::Builder::new()
                    .name(format!("worker-{i}"))
                    .spawn_scoped(scope, move || worker_loop(g, matrix, core, rec))
                    .expect("spawning a pool worker thread");
            }
            let mut pool = EvalPool {
                g,
                matrix,
                tx: Some(tx),
                workers,
                scratch: EvalScratch::with_capacity(g.task_count(), matrix.p_max()),
                rec,
                core: Some(&core),
                serial_fallbacks: 0,
                last_error: None,
            };
            let out = f(&mut pool);
            // Dropping the pool drops the sender; workers see the
            // disconnect and exit, and the scope joins them.
            drop(pool);
            out
        })
    }

    /// Number of worker threads (0 in serial mode).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker threads currently alive (0 in serial mode). Dips below
    /// [`EvalPool::workers`] only in the instant between a worker thread
    /// dying outright and — since incarnations respawn in place — never
    /// coming back; a persistent 0 means the pool is dead weight.
    pub fn live_workers(&self) -> usize {
        self.core.map_or(0, |c| c.live.load(Ordering::Acquire))
    }

    /// Evaluations that panicked inside a worker and were contained
    /// (ring 1): the affected items were re-evaluated on the caller.
    pub fn worker_panics(&self) -> u64 {
        self.core.map_or(0, |c| c.panics.load(Ordering::Relaxed))
    }

    /// Worker incarnations restarted after an uncontained panic (ring 2).
    pub fn respawns(&self) -> u64 {
        self.core.map_or(0, |c| c.respawns.load(Ordering::Relaxed))
    }

    /// Batch items the caller re-evaluated serially because the pool
    /// failed to produce them (panicked evaluations, stalled claims).
    pub fn serial_fallbacks(&self) -> u64 {
        self.serial_fallbacks
    }

    /// The most recent degradation the dispatcher recovered from, if any.
    pub fn last_error(&self) -> Option<PoolError> {
        self.last_error
    }

    /// The recorder this pool reports into.
    pub fn recorder(&self) -> &'env REC {
        self.rec
    }

    /// Evaluates every allocation under `cutoff`; results are positional.
    pub fn run_batch(&mut self, allocs: Vec<Allocation>, cutoff: f64) -> Vec<BoundedEval> {
        self.run_batch_mode(allocs, cutoff, EvalMode::Exact)
            .into_iter()
            .map(ItemEval::into_exact)
            .collect()
    }

    /// Two-tier variant of [`Self::run_batch`]: every item gets a tier-1
    /// surrogate interval (computed on whichever worker claims it, so
    /// screening cost is pooled like exact evaluation), and the exact core
    /// runs in the same claim only when the interval cannot prove
    /// rejection at `cutoff`.
    pub fn run_batch_two_tier(
        &mut self,
        allocs: Vec<Allocation>,
        cutoff: f64,
        sur: &Surrogate,
    ) -> Vec<TwoTierEval> {
        self.run_batch_mode(allocs, cutoff, EvalMode::TwoTier(*sur))
            .into_iter()
            .map(ItemEval::into_tiered)
            .collect()
    }

    fn run_batch_mode(
        &mut self,
        allocs: Vec<Allocation>,
        cutoff: f64,
        mode: EvalMode,
    ) -> Vec<ItemEval> {
        let n = allocs.len();
        if n == 0 {
            return Vec::new();
        }
        let tx = match &self.tx {
            // Serial mode, and tiny batches aren't worth the dispatch.
            Some(tx) if n >= 4 => tx,
            _ => {
                if REC::ENABLED {
                    self.rec.add("pool.batches", 1);
                    self.rec.add("pool.evals", n as u64);
                }
                return allocs
                    .iter()
                    .map(|a| {
                        let eval_start = if REC::ENABLED {
                            // lint:allow(src-timing) -- recorder phase accounting.
                            Some(Instant::now())
                        } else {
                            None
                        };
                        let outcome = eval_one(
                            self.g,
                            self.matrix,
                            a,
                            cutoff,
                            mode,
                            &mut self.scratch,
                            self.rec,
                        );
                        if let Some(t) = eval_start {
                            self.rec
                                .latency("pool.eval_seconds", t.elapsed().as_secs_f64());
                        }
                        outcome
                    })
                    .collect();
            }
        };
        let dispatch_start = if REC::ENABLED {
            // lint:allow(src-timing) -- recorder phase accounting.
            Some(Instant::now())
        } else {
            None
        };
        let batch = Arc::new(Batch {
            allocs,
            cutoff,
            mode,
            next: AtomicUsize::new(0),
            results: (0..n).map(|_| OnceLock::new()).collect(),
            pending: AtomicUsize::new(n),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        // One handle per worker; a worker still busy with nothing (batches
        // are strictly sequential) picks its copy up immediately. A stale
        // copy that outlives its batch drains zero items and is discarded.
        let mut disconnected = false;
        for _ in 0..self.workers.min(n) {
            if tx.send(Arc::clone(&batch)).is_err() {
                // No receiver left — impossible while the scope lives, but
                // typed recovery keeps it an inconvenience: the caller
                // simply drains the whole batch itself below.
                disconnected = true;
                break;
            }
        }
        if disconnected {
            self.last_error = Some(PoolError::Disconnected);
        }
        let drain_start = if let Some(t) = dispatch_start {
            self.rec
                .phase_add("pool/dispatch", t.elapsed().as_secs_f64());
            // Timeline marker: a batch of `n` items was handed to the
            // workers.
            self.rec.event("pool.batch.dispatch", n as u64);
            // lint:allow(src-timing) -- recorder phase accounting.
            Some(Instant::now())
        } else {
            None
        };
        drain_batch(
            self.g,
            self.matrix,
            &batch,
            &mut self.scratch,
            self.rec,
            None,
        );
        if wait_for_batch(&batch) {
            let missing = batch.results.iter().filter(|s| s.get().is_none()).count();
            self.last_error = Some(PoolError::Stalled { missing });
        }
        // Fill every slot the workers failed to produce — items lost to a
        // contained panic (batch completed, slot empty) or to a stall.
        // The mapper is deterministic, so a refilled item is bit-identical
        // to what a healthy worker would have produced.
        let mut fallbacks = 0u64;
        for (i, slot) in batch.results.iter().enumerate() {
            if slot.get().is_some() {
                continue;
            }
            let outcome = eval_one(
                self.g,
                self.matrix,
                &batch.allocs[i],
                cutoff,
                mode,
                &mut self.scratch,
                self.rec,
            );
            let _ = slot.set(outcome);
            fallbacks += 1;
        }
        if fallbacks > 0 {
            self.serial_fallbacks += fallbacks;
            if REC::ENABLED {
                self.rec.add("pool.serial_fallbacks", fallbacks);
            }
        }
        if let Some(t) = drain_start {
            self.rec.phase_add("pool/drain", t.elapsed().as_secs_f64());
            self.rec.add("pool.batches", 1);
            self.rec.add("pool.evals", n as u64);
            // Timeline marker: every slot of the batch is filled.
            self.rec.event("pool.batch.complete", n as u64);
        }
        batch
            .results
            .iter()
            .map(|slot| {
                *slot
                    .get()
                    .expect("every slot is filled after the fallback pass")
            })
            .collect()
    }
}

/// Waits until `batch` completes or stalls; true means stalled.
///
/// The dispatcher has already drained everything it could claim, so the
/// only open items are claims held by workers. A healthy worker finishes
/// its claim in far less than a window; [`STALL_WINDOWS`] consecutive
/// windows where not a single item completes mean a claim died with its
/// worker and will never finish on its own.
fn wait_for_batch(batch: &Batch) -> bool {
    let mut done = lock_recover(&batch.done);
    let mut last_pending = batch.pending.load(Ordering::Acquire);
    let mut idle_windows = 0u32;
    while !*done {
        let (guard, _timeout) = batch
            .done_cv
            .wait_timeout(done, STALL_WINDOW)
            .unwrap_or_else(PoisonError::into_inner);
        done = guard;
        if *done {
            break;
        }
        let pending = batch.pending.load(Ordering::Acquire);
        if pending == last_pending {
            idle_windows += 1;
            if idle_windows >= STALL_WINDOWS {
                return true;
            }
        } else {
            idle_windows = 0;
            last_pending = pending;
        }
    }
    false
}

/// A completed evaluation's cached outcome.
#[derive(Debug, Clone, Copy)]
struct Cached {
    makespan: f64,
    reject_key: f64,
}

/// FNV-1a over the allocation's genes — the memo key.
///
/// Probing by a 64-bit hash (with full-equality confirmation on the
/// collision chain) replaces hashing the whole `Vec<u32>` through SipHash
/// on every lookup; the same hash keys the within-generation dedup maps.
fn alloc_hash(a: &Allocation) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &gene in a.as_slice() {
        h ^= gene as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Keys are already FNV-mixed 64-bit hashes — pass them straight through
/// instead of re-hashing with SipHash.
#[derive(Default)]
struct PassthroughHasher(u64);

impl std::hash::Hasher for PassthroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("only u64 keys are hashed");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type Passthrough = BuildHasherDefault<PassthroughHasher>;

/// Memoizing front end of the evaluation engine.
///
/// Keyed by a 64-bit allocation hash with full-equality confirmation. Only
/// *completed* evaluations are memoized across generations (a rejection
/// proves nothing about other cutoffs); rejections are still deduped
/// *within* a generation, whose cutoff is constant, via a per-generation
/// set cleared by [`FitnessEngine::begin_generation`]. A hit decides
/// accept/reject from the stored `reject_key` with the engine's exact test,
/// so hits and misses are bit-for-bit interchangeable.
///
/// Two evaluation paths coexist:
/// * [`FitnessEngine::evaluate`] — batch dispatch through the
///   [`EvalPool`] (the multi-core path),
/// * [`FitnessEngine::record`] + [`FitnessEngine::eval_offspring`] — the
///   serial delta path: parents carry an [`EvalRecord`] and each offspring
///   is evaluated incrementally against it (repaired bottom levels,
///   lower-bound prescreen, prefix-checkpoint replay).
pub struct FitnessEngine<'p, 'env, R: Recorder = NoopRecorder> {
    pool: &'p mut EvalPool<'env, R>,
    cache: HashMap<u64, Vec<(Allocation, Cached)>, Passthrough>,
    /// Allocations rejected at this generation's cutoff (cleared by
    /// [`Self::begin_generation`]).
    gen_rejected: HashMap<u64, Vec<Allocation>, Passthrough>,
    /// Caller-thread scratch for the delta/record path (the pool's own
    /// scratch serves its batch path).
    scratch: EvalScratch,
    repairer: BlRepairer,
    cache_entries: usize,
    hits: usize,
    misses: usize,
    noop_skips: usize,
    delta_evals: usize,
    lb_pruned: usize,
    prefix_reuse_events: u64,
    surrogate_evals: usize,
    exact_skipped: usize,
    ambiguous_fallbacks: usize,
    /// Sum and count of *finite* surrogate interval widths, for the
    /// per-generation mean in the trace.
    surrogate_width_sum: f64,
    surrogate_widths: usize,
}

impl<'p, 'env, R: Recorder> FitnessEngine<'p, 'env, R> {
    /// Wraps `pool` with an empty cache. Telemetry (the `emts.cache.*` and
    /// `fitness.*` counters) flows into the pool's recorder.
    pub fn new(pool: &'p mut EvalPool<'env, R>) -> Self {
        let repairer = BlRepairer::new(pool.g);
        let scratch = EvalScratch::with_capacity(pool.g.task_count(), pool.matrix.p_max());
        FitnessEngine {
            pool,
            cache: HashMap::default(),
            gen_rejected: HashMap::default(),
            scratch,
            repairer,
            cache_entries: 0,
            hits: 0,
            misses: 0,
            noop_skips: 0,
            delta_evals: 0,
            lb_pruned: 0,
            prefix_reuse_events: 0,
            surrogate_evals: 0,
            exact_skipped: 0,
            ambiguous_fallbacks: 0,
            surrogate_width_sum: 0.0,
            surrogate_widths: 0,
        }
    }

    fn cache_probe(&self, hash: u64, a: &Allocation) -> Option<Cached> {
        self.cache
            .get(&hash)?
            .iter()
            .find(|(k, _)| k == a)
            .map(|&(_, c)| c)
    }

    fn cache_insert(&mut self, hash: u64, a: &Allocation, c: Cached) {
        let chain = self.cache.entry(hash).or_default();
        if !chain.iter().any(|(k, _)| k == a) {
            chain.push((a.clone(), c));
            self.cache_entries += 1;
        }
    }

    /// Starts a new generation: forgets which allocations were rejected at
    /// the previous generation's cutoff (the new cutoff may accept them).
    pub fn begin_generation(&mut self) {
        self.gen_rejected.clear();
    }

    /// Memo/dedup pre-pass shared by [`Self::evaluate`] and
    /// [`Self::evaluate_two_tier`]: probes the cross-generation cache and
    /// dedups within the batch, returning the result column (hits already
    /// decided), the per-allocation hashes, the miss set still needing the
    /// pool, and the in-batch aliases to copy afterwards.
    #[allow(clippy::type_complexity)]
    fn probe_batch(
        &mut self,
        allocs: &[Allocation],
        cutoff: f64,
    ) -> (Vec<Option<f64>>, Vec<u64>, Vec<usize>, Vec<(usize, usize)>) {
        // Must match the mapper's rejection threshold exactly (see
        // `ListScheduler::makespan_bounded` for why the slack exists).
        let threshold = cutoff * (1.0 + 1e-9);
        let hashes: Vec<u64> = allocs.iter().map(alloc_hash).collect();
        let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
        let mut first_seen: HashMap<u64, Vec<usize>, Passthrough> = HashMap::default();
        let mut miss_indices: Vec<usize> = Vec::new();
        let mut aliases: Vec<(usize, usize)> = Vec::new();
        let hits_before = self.hits;
        let misses_before = self.misses;
        for (i, a) in allocs.iter().enumerate() {
            let h = hashes[i];
            if let Some(c) = self.cache_probe(h, a) {
                self.hits += 1;
                results[i] = (c.reject_key <= threshold).then_some(c.makespan);
            } else if let Some(&j) = first_seen
                .get(&h)
                .and_then(|chain| chain.iter().find(|&&j| allocs[j] == *a))
            {
                self.hits += 1;
                aliases.push((i, j));
            } else {
                self.misses += 1;
                first_seen.entry(h).or_default().push(i);
                miss_indices.push(i);
            }
        }
        if R::ENABLED {
            let rec = self.pool.recorder();
            rec.add("emts.cache.hits", (self.hits - hits_before) as u64);
            rec.add("emts.cache.misses", (self.misses - misses_before) as u64);
        }
        (results, hashes, miss_indices, aliases)
    }

    /// Folds one exact outcome into the memo cache and returns its fitness
    /// (`None` = rejected).
    fn absorb_outcome(
        &mut self,
        hash: u64,
        alloc: &Allocation,
        outcome: BoundedEval,
    ) -> Option<f64> {
        match outcome {
            BoundedEval::Complete {
                makespan,
                reject_key,
            } => {
                self.cache_insert(
                    hash,
                    alloc,
                    Cached {
                        makespan,
                        reject_key,
                    },
                );
                Some(makespan)
            }
            BoundedEval::Rejected => None,
        }
    }

    /// Bounded fitness of every allocation (`None` = rejected), positional.
    ///
    /// Duplicates — across generations via the cache, and within the batch
    /// via in-batch dedup — are evaluated once.
    pub fn evaluate(&mut self, allocs: &[Allocation], cutoff: f64) -> Vec<Option<f64>> {
        let (mut results, hashes, miss_indices, aliases) = self.probe_batch(allocs, cutoff);
        if !miss_indices.is_empty() {
            let batch: Vec<Allocation> = miss_indices.iter().map(|&i| allocs[i].clone()).collect();
            let outcomes = self.pool.run_batch(batch, cutoff);
            for (&i, outcome) in miss_indices.iter().zip(outcomes) {
                results[i] = self.absorb_outcome(hashes[i], &allocs[i], outcome);
            }
        }
        for (i, j) in aliases {
            results[i] = results[j];
        }
        results
    }

    /// [`Self::evaluate`] through the two-tier pipeline: every miss gets a
    /// pooled tier-1 surrogate interval first, and the exact core runs
    /// only when the interval cannot prove rejection at `cutoff`.
    ///
    /// Results are bit-identical to [`Self::evaluate`] on the same input:
    /// screening skips exactly the offspring whose exact evaluation would
    /// return `None` at this cutoff (see `sched::surrogate` for the
    /// argument), and every other offspring — including every one whose
    /// interval leaves survival ambiguous — falls back to the unchanged
    /// exact evaluation. An infinite cutoff (comma selection, or no
    /// better-than cutoff yet) can never screen, so it routes straight to
    /// the exact path with zero surrogate overhead.
    pub fn evaluate_two_tier(
        &mut self,
        allocs: &[Allocation],
        cutoff: f64,
        sur: &Surrogate,
    ) -> Vec<Option<f64>> {
        if !cutoff.is_finite() {
            return self.evaluate(allocs, cutoff);
        }
        let (mut results, hashes, miss_indices, aliases) = self.probe_batch(allocs, cutoff);
        if !miss_indices.is_empty() {
            let batch: Vec<Allocation> = miss_indices.iter().map(|&i| allocs[i].clone()).collect();
            let outcomes = self.pool.run_batch_two_tier(batch, cutoff, sur);
            let total = outcomes.len();
            let mut screened = 0usize;
            let mut ambiguous = 0usize;
            for (&i, outcome) in miss_indices.iter().zip(outcomes) {
                match outcome {
                    TwoTierEval::Screened(_) => {
                        // Proven: the exact evaluation would reject. The
                        // rejection is not memoized (the cache only keeps
                        // completed schedules), matching the exact path.
                        screened += 1;
                        results[i] = None;
                    }
                    TwoTierEval::Exact(score, eval) => {
                        if score.ambiguous(cutoff) {
                            ambiguous += 1;
                        }
                        if score.hi.is_finite() {
                            self.surrogate_width_sum += score.width();
                            self.surrogate_widths += 1;
                        }
                        results[i] = self.absorb_outcome(hashes[i], &allocs[i], eval);
                    }
                }
            }
            self.surrogate_evals += total;
            self.exact_skipped += screened;
            self.ambiguous_fallbacks += ambiguous;
            if R::ENABLED {
                let rec = self.pool.recorder();
                rec.add("fitness.surrogate_evals", total as u64);
                rec.add("fitness.exact_skipped", screened as u64);
                rec.add("fitness.ambiguous_fallbacks", ambiguous as u64);
                // Timeline instants: how the tier decision split this batch.
                rec.event("fitness.tier1.screened", screened as u64);
                rec.event("fitness.tier2.exact", (total - screened) as u64);
            }
        }
        for (i, j) in aliases {
            results[i] = results[j];
        }
        results
    }

    /// Fully evaluates `alloc` and captures the [`EvalRecord`] the delta
    /// path replays offspring against.
    ///
    /// Scheduler counters flow into the recorder (this is a real mapper
    /// pass), but **no** `pool.eval_seconds` sample is emitted and no
    /// hit/miss is counted: recording survivors is bookkeeping for the next
    /// generation, not an offspring evaluation.
    pub fn record(&mut self, alloc: &Allocation) -> Arc<EvalRecord> {
        let rec = self.pool.recorder();
        Arc::new(ListScheduler.evaluate_recorded(
            self.pool.g,
            self.pool.matrix,
            alloc,
            &mut self.scratch,
            rec,
        ))
    }

    /// Bounded fitness of one offspring via the incremental path
    /// (`None` = rejected at `cutoff`). Bit-identical to
    /// [`Self::evaluate`] on the same input.
    ///
    /// `changed` lists the genes where `child` differs from the parent
    /// behind `parent_record` (as reported by
    /// [`crate::MutationOperator::mutate`]). The pipeline, cheapest test
    /// first: no-op skip (empty `changed` replays the parent's decision) →
    /// memo probe → this generation's rejection set → delta evaluation
    /// (repaired bottom levels, LB prescreen, checkpoint replay). Every
    /// offspring counts as exactly one cache hit or miss; only the last
    /// step is a miss.
    pub fn eval_offspring(
        &mut self,
        parent_record: Option<&EvalRecord>,
        child: &Allocation,
        changed: &[TaskId],
        cutoff: f64,
    ) -> Option<f64> {
        let threshold = cutoff * (1.0 + 1e-9);
        let rec = self.pool.recorder();
        if changed.is_empty() {
            if let Some(r) = parent_record {
                self.hits += 1;
                self.noop_skips += 1;
                if R::ENABLED {
                    rec.add("emts.cache.hits", 1);
                    rec.add("fitness.noop_skips", 1);
                }
                return r.decide(cutoff);
            }
        }
        let h = alloc_hash(child);
        if let Some(c) = self.cache_probe(h, child) {
            self.hits += 1;
            if R::ENABLED {
                rec.add("emts.cache.hits", 1);
            }
            return (c.reject_key <= threshold).then_some(c.makespan);
        }
        if self
            .gen_rejected
            .get(&h)
            .is_some_and(|chain| chain.iter().any(|k| k == child))
        {
            // Same allocation, same cutoff (constant within a generation):
            // same rejection.
            self.hits += 1;
            if R::ENABLED {
                rec.add("emts.cache.hits", 1);
            }
            return None;
        }
        self.misses += 1;
        let eval_start = if R::ENABLED {
            // lint:allow(src-timing) -- recorder phase accounting.
            Some(Instant::now())
        } else {
            None
        };
        let outcome = match parent_record {
            Some(r) => {
                let d = ListScheduler.evaluate_delta(
                    self.pool.g,
                    self.pool.matrix,
                    r,
                    child,
                    changed,
                    cutoff,
                    &mut self.scratch,
                    &mut self.repairer,
                    rec,
                );
                self.delta_evals += 1;
                self.prefix_reuse_events += u64::from(d.events_reused);
                if d.lb_pruned {
                    self.lb_pruned += 1;
                }
                if R::ENABLED {
                    rec.add("fitness.delta_evals", 1);
                    rec.add("fitness.prefix_reuse_events", u64::from(d.events_reused));
                    if d.lb_pruned {
                        rec.add("fitness.lb_pruned", 1);
                    }
                }
                d.outcome
            }
            None => ListScheduler.evaluate_bounded_obs(
                self.pool.g,
                self.pool.matrix,
                child,
                cutoff,
                &mut self.scratch,
                rec,
            ),
        };
        if let Some(t) = eval_start {
            rec.latency("pool.eval_seconds", t.elapsed().as_secs_f64());
            rec.add("emts.cache.misses", 1);
        }
        match outcome {
            BoundedEval::Complete {
                makespan,
                reject_key,
            } => {
                self.cache_insert(
                    h,
                    child,
                    Cached {
                        makespan,
                        reject_key,
                    },
                );
                Some(makespan)
            }
            BoundedEval::Rejected => {
                let chain = self.gen_rejected.entry(h).or_default();
                if !chain.iter().any(|k| k == child) {
                    chain.push(child.clone());
                }
                None
            }
        }
    }

    /// Evaluations answered from the cache (including in-batch duplicates,
    /// no-op skips and within-generation rejection replays).
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// Evaluations that ran the mapper.
    pub fn cache_misses(&self) -> usize {
        self.misses
    }

    /// Distinct completed allocations currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache_entries
    }

    /// Offspring skipped because their mutation was a clamped no-op.
    pub fn noop_skips(&self) -> usize {
        self.noop_skips
    }

    /// Misses evaluated through the incremental (delta) path.
    pub fn delta_evals(&self) -> usize {
        self.delta_evals
    }

    /// Delta evaluations rejected by the lower-bound prescreen alone.
    pub fn lb_pruned(&self) -> usize {
        self.lb_pruned
    }

    /// Placement events replayed from parent prefixes instead of being
    /// simulated.
    pub fn prefix_reuse_events(&self) -> u64 {
        self.prefix_reuse_events
    }

    /// Offspring scored by the tier-1 surrogate.
    pub fn surrogate_evals(&self) -> usize {
        self.surrogate_evals
    }

    /// Exact evaluations the surrogate screen made unnecessary.
    pub fn exact_skipped(&self) -> usize {
        self.exact_skipped
    }

    /// Surrogate intervals that straddled the cutoff, deferring the
    /// survival decision to the exact fallback.
    pub fn ambiguous_fallbacks(&self) -> usize {
        self.ambiguous_fallbacks
    }

    /// Sum of all finite surrogate interval widths (seconds), and how many
    /// there were — the trace derives per-generation means from deltas of
    /// these.
    pub fn surrogate_width_stats(&self) -> (f64, usize) {
        (self.surrogate_width_sum, self.surrogate_widths)
    }

    /// Pool health: worker evaluations that panicked and were contained.
    pub fn worker_panics(&self) -> u64 {
        self.pool.worker_panics()
    }

    /// Pool health: worker incarnations respawned after an uncontained
    /// panic.
    pub fn pool_respawns(&self) -> u64 {
        self.pool.respawns()
    }

    /// Pool health: batch items re-evaluated serially on the caller after
    /// the pool failed to produce them.
    pub fn serial_fallbacks(&self) -> u64 {
        self.pool.serial_fallbacks()
    }

    /// True when a worker-backed pool has lost every worker: batches
    /// dispatched to it would all come back through the stall deadline, so
    /// the EA switches to the serial delta path instead.
    pub fn pool_degraded(&self) -> bool {
        self.pool.workers() > 0 && self.pool.live_workers() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{SyntheticModel, TimeMatrix};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sched::Mapper as _;
    use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

    fn setup() -> (Ptg, TimeMatrix, Vec<Allocation>) {
        let params = DaggenParams {
            n: 50,
            width: 0.5,
            regularity: 0.8,
            density: 0.5,
            jump: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 120);
        let allocs: Vec<Allocation> = (0..23)
            .map(|_| Allocation::from_vec((0..50).map(|_| rng.gen_range(1..=120)).collect()))
            .collect();
        (g, m, allocs)
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let (g, m, allocs) = setup();
        let serial = evaluate_fitness(&g, &m, &allocs, false);
        let parallel = evaluate_fitness(&g, &m, &allocs, true);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_are_positional() {
        let (g, m, allocs) = setup();
        let fitness = evaluate_fitness(&g, &m, &allocs, true);
        for (a, f) in allocs.iter().zip(&fitness) {
            assert_eq!(*f, ListScheduler.makespan(&g, &m, a));
        }
    }

    #[test]
    fn small_batches_take_the_serial_path() {
        let (g, m, allocs) = setup();
        let few = &allocs[..2];
        let fitness = evaluate_fitness(&g, &m, few, true);
        assert_eq!(fitness.len(), 2);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let (g, m, _) = setup();
        assert!(evaluate_fitness(&g, &m, &[], true).is_empty());
    }

    #[test]
    fn bounded_evaluation_rejects_consistently_in_parallel_and_serial() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        let serial = evaluate_fitness_bounded(&g, &m, &allocs, false, cutoff);
        let parallel = evaluate_fitness_bounded(&g, &m, &allocs, true, cutoff);
        assert_eq!(serial, parallel);
        // Accepted values equal the exact makespans; rejected ones exceeded
        // the cutoff.
        for ((bounded, &ms), alloc) in serial.iter().zip(&exact).zip(&allocs) {
            match bounded {
                Some(f) => assert_eq!(*f, ms, "{alloc:?}"),
                None => assert!(ms > cutoff, "rejected but exact {ms} ≤ cutoff {cutoff}"),
            }
        }
        // The chosen cutoff must actually reject about half the batch.
        let rejected = serial.iter().filter(|f| f.is_none()).count();
        assert!(rejected > 0 && rejected < allocs.len());
    }

    #[test]
    fn pool_matches_scoped_reference_with_and_without_cutoff() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        for parallel in [false, true] {
            for c in [f64::INFINITY, cutoff] {
                let reference = evaluate_fitness_bounded(&g, &m, &allocs, false, c);
                let pooled = EvalPool::with(&g, &m, parallel, |pool| {
                    pool.run_batch(allocs.clone(), c)
                        .into_iter()
                        .map(|o| match o {
                            BoundedEval::Complete { makespan, .. } => Some(makespan),
                            BoundedEval::Rejected => None,
                        })
                        .collect::<Vec<_>>()
                });
                assert_eq!(reference, pooled, "parallel={parallel} cutoff={c}");
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        EvalPool::with(&g, &m, true, |pool| {
            for _ in 0..3 {
                let got: Vec<f64> = pool
                    .run_batch(allocs.clone(), f64::INFINITY)
                    .into_iter()
                    .map(|o| match o {
                        BoundedEval::Complete { makespan, .. } => makespan,
                        BoundedEval::Rejected => unreachable!("infinite cutoff"),
                    })
                    .collect();
                assert_eq!(reference, got);
            }
        });
    }

    #[test]
    fn engine_cache_hits_return_identical_values() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let first = engine.evaluate(&allocs, f64::INFINITY);
            assert_eq!(engine.cache_misses(), allocs.len());
            assert_eq!(engine.cache_hits(), 0);
            let second = engine.evaluate(&allocs, f64::INFINITY);
            assert_eq!(engine.cache_hits(), allocs.len());
            assert_eq!(first, second);
            for (f, r) in first.iter().zip(&reference) {
                assert_eq!(f.unwrap(), *r);
            }
        });
    }

    #[test]
    fn engine_cached_rejection_decisions_match_fresh_evaluation() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            // Warm the cache with completions (infinite cutoff), then query
            // at a tight cutoff: every answer must come from the cache and
            // equal the engine's own decision.
            let _ = engine.evaluate(&allocs, f64::INFINITY);
            let misses_before = engine.cache_misses();
            let cached = engine.evaluate(&allocs, cutoff);
            assert_eq!(engine.cache_misses(), misses_before, "all hits expected");
            let fresh = evaluate_fitness_bounded(&g, &m, &allocs, false, cutoff);
            assert_eq!(cached, fresh);
        });
    }

    #[test]
    fn engine_deduplicates_within_a_batch() {
        let (g, m, allocs) = setup();
        let mut dup = allocs.clone();
        dup.extend(allocs.iter().take(5).cloned());
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let results = engine.evaluate(&dup, f64::INFINITY);
            assert_eq!(engine.cache_misses(), allocs.len());
            assert_eq!(engine.cache_hits(), 5);
            for i in 0..5 {
                assert_eq!(results[i], results[allocs.len() + i]);
            }
        });
    }

    #[test]
    fn rejected_evaluations_are_not_cached() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let bounded = engine.evaluate(&allocs, cutoff);
            let completed = bounded.iter().filter(|f| f.is_some()).count();
            assert_eq!(engine.cache_len(), completed);
        });
    }

    fn stats_median(values: &[f64]) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }

    #[test]
    fn alloc_hash_distinguishes_permutations_and_neighbors() {
        let a = Allocation::from_vec(vec![1, 2, 3, 4]);
        let b = Allocation::from_vec(vec![4, 3, 2, 1]);
        let c = Allocation::from_vec(vec![1, 2, 3, 5]);
        assert_ne!(alloc_hash(&a), alloc_hash(&b));
        assert_ne!(alloc_hash(&a), alloc_hash(&c));
        assert_eq!(alloc_hash(&a), alloc_hash(&a.clone()));
    }

    #[test]
    fn offspring_path_is_bit_identical_to_fresh_evaluation() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        let exact_parent = ListScheduler.makespan(&g, &m, &parent);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            assert_eq!(record.makespan().to_bits(), exact_parent.to_bits());
            for cutoff in [f64::INFINITY, exact_parent * 1.05, exact_parent * 0.9] {
                engine.begin_generation();
                for _ in 0..20 {
                    let mut child = parent.clone();
                    let mut changed = Vec::new();
                    for _ in 0..rng.gen_range(1..=3usize) {
                        let t = ptg::TaskId(rng.gen_range(0..50u32));
                        child.set(t, rng.gen_range(1..=120));
                        changed.push(t);
                    }
                    let got = engine.eval_offspring(Some(&record), &child, &changed, cutoff);
                    let fresh = ListScheduler.makespan_bounded(&g, &m, &child, cutoff);
                    assert_eq!(
                        got.map(f64::to_bits),
                        fresh.map(f64::to_bits),
                        "cutoff {cutoff}"
                    );
                }
            }
        });
    }

    #[test]
    fn noop_offspring_replays_parent_decision_as_a_hit() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        let ms = ListScheduler.makespan(&g, &m, &parent);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            let got = engine.eval_offspring(Some(&record), &parent, &[], f64::INFINITY);
            assert_eq!(got.map(f64::to_bits), Some(ms.to_bits()));
            assert_eq!(engine.cache_hits(), 1);
            assert_eq!(engine.cache_misses(), 0);
            assert_eq!(engine.noop_skips(), 1);
            // At a cutoff below the parent's makespan the replay rejects.
            assert_eq!(
                engine.eval_offspring(Some(&record), &parent, &[], ms * 0.5),
                None
            );
        });
    }

    #[test]
    fn within_generation_rejections_are_deduped_until_the_next_generation() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        let ms = ListScheduler.makespan(&g, &m, &parent);
        // A clearly-worse child: stretch one gene, screen far below parent.
        let mut child = parent.clone();
        let t0 = ptg::TaskId(0);
        child.set(t0, if parent.of(t0) == 120 { 1 } else { 120 });
        let cutoff = ms * 0.1;
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            engine.begin_generation();
            assert_eq!(
                engine.eval_offspring(Some(&record), &child, &[t0], cutoff),
                None
            );
            let misses_after_first = engine.cache_misses();
            // Same offspring again in the same generation: a hit, no eval.
            assert_eq!(
                engine.eval_offspring(Some(&record), &child, &[t0], cutoff),
                None
            );
            assert_eq!(engine.cache_misses(), misses_after_first);
            assert_eq!(engine.cache_hits(), 1);
            // Next generation may have a different cutoff: re-evaluated.
            engine.begin_generation();
            assert_eq!(
                engine.eval_offspring(Some(&record), &child, &[t0], f64::INFINITY),
                Some(ListScheduler.makespan(&g, &m, &child))
            );
            assert_eq!(engine.cache_misses(), misses_after_first + 1);
        });
    }

    /// Serializes the sabotage-hook tests (the hooks are process-global).
    fn sabotage_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock_recover(&LOCK)
    }

    #[test]
    fn worker_panics_are_contained_and_results_stay_exact() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        let _serial = sabotage_guard();
        // Every worker evaluation panics; the caller's own drain is
        // unaffected, so each batch must still come back complete and
        // bit-identical — panicked items refilled serially.
        sabotage::arm_eval_panics(u64::MAX);
        EvalPool::with_workers(&g, &m, 2, &NoopRecorder, |pool| {
            for round in 0..200 {
                let got: Vec<f64> = pool
                    .run_batch(allocs.clone(), f64::INFINITY)
                    .into_iter()
                    .map(|o| match o {
                        BoundedEval::Complete { makespan, .. } => makespan,
                        BoundedEval::Rejected => unreachable!("infinite cutoff"),
                    })
                    .collect();
                assert_eq!(reference, got, "round {round}");
                if pool.worker_panics() > 0 {
                    break;
                }
            }
            assert!(
                pool.worker_panics() > 0,
                "workers never claimed an item in 200 batches"
            );
            assert_eq!(
                pool.worker_panics(),
                pool.serial_fallbacks(),
                "every panicked item must be refilled by the caller"
            );
            assert_eq!(pool.live_workers(), 2, "contained panics kill no worker");
            assert_eq!(pool.respawns(), 0);
        });
        sabotage::disarm();
    }

    #[test]
    fn dead_worker_stalls_the_batch_and_the_caller_recovers() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        let _serial = sabotage_guard();
        sabotage::arm_worker_deaths(1);
        EvalPool::with_workers(&g, &m, 2, &NoopRecorder, |pool| {
            for round in 0..200 {
                let got: Vec<f64> = pool
                    .run_batch(allocs.clone(), f64::INFINITY)
                    .into_iter()
                    .map(|o| match o {
                        BoundedEval::Complete { makespan, .. } => makespan,
                        BoundedEval::Rejected => unreachable!("infinite cutoff"),
                    })
                    .collect();
                assert_eq!(reference, got, "round {round}");
                if pool.respawns() > 0 {
                    break;
                }
            }
            assert_eq!(pool.respawns(), 1, "the dead incarnation must respawn");
            assert!(
                pool.serial_fallbacks() >= 1,
                "the orphaned claim must be refilled by the caller"
            );
            assert!(
                matches!(pool.last_error(), Some(PoolError::Stalled { missing }) if missing >= 1),
                "expected a stall, got {:?}",
                pool.last_error()
            );
            assert_eq!(pool.live_workers(), 2, "respawn restores full strength");
            // The pool keeps serving batches after the incident.
            let after: Vec<f64> = pool
                .run_batch(allocs.clone(), f64::INFINITY)
                .into_iter()
                .map(|o| match o {
                    BoundedEval::Complete { makespan, .. } => makespan,
                    BoundedEval::Rejected => unreachable!("infinite cutoff"),
                })
                .collect();
            assert_eq!(reference, after);
        });
        sabotage::disarm();
    }

    #[test]
    fn pool_error_messages_are_one_line() {
        let d = PoolError::Disconnected.to_string();
        let s = PoolError::Stalled { missing: 3 }.to_string();
        assert!(!d.contains('\n') && !s.contains('\n'));
        assert!(s.contains('3'));
    }

    #[test]
    fn forced_worker_count_matches_serial_results() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        let _serial = sabotage_guard(); // results are sabotage-sensitive
        for workers in [1, 3] {
            let got = EvalPool::with_workers(&g, &m, workers, &NoopRecorder, |pool| {
                assert_eq!(pool.workers(), workers);
                assert_eq!(pool.live_workers(), workers);
                pool.run_batch(allocs.clone(), f64::INFINITY)
                    .into_iter()
                    .map(|o| match o {
                        BoundedEval::Complete { makespan, .. } => makespan,
                        BoundedEval::Rejected => unreachable!("infinite cutoff"),
                    })
                    .collect::<Vec<_>>()
            });
            assert_eq!(reference, got, "workers={workers}");
        }
    }

    #[test]
    fn offspring_and_batch_paths_share_the_memo() {
        let (g, m, allocs) = setup();
        let parent = allocs[0].clone();
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let record = engine.record(&parent);
            let mut child = parent.clone();
            child.set(ptg::TaskId(3), 7);
            let via_delta =
                engine.eval_offspring(Some(&record), &child, &[ptg::TaskId(3)], f64::INFINITY);
            assert_eq!(engine.cache_misses(), 1);
            // The batch path must now answer the same allocation from cache.
            let via_batch = engine.evaluate(std::slice::from_ref(&child), f64::INFINITY);
            assert_eq!(engine.cache_misses(), 1, "expected a memo hit");
            assert_eq!(via_batch[0].map(f64::to_bits), via_delta.map(f64::to_bits));
        });
    }
}
