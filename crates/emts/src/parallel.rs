//! Parallel fitness evaluation.
//!
//! The paper notes the EA's cost "is mainly determined by the mapping
//! function as it evaluates the fitness of individuals". Fitness evaluation
//! is pure — the list scheduler reads the PTG and the time matrix and
//! returns a makespan — so the λ offspring of a generation can be evaluated
//! on all cores with no effect on the results: mutation (the only RNG
//! consumer) stays on the caller's thread.

use exec_model::TimeMatrix;
use ptg::Ptg;
use sched::{Allocation, ListScheduler};

/// Evaluates the makespan of every allocation, in parallel when asked.
///
/// Output order matches input order regardless of thread interleaving.
pub fn evaluate_fitness(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
) -> Vec<f64> {
    evaluate_fitness_bounded(g, matrix, allocs, parallel, f64::INFINITY)
        .into_iter()
        .map(|f| f.expect("infinite cutoff never rejects"))
        .collect()
}

/// Like [`evaluate_fitness`], but with the rejection strategy: allocations
/// whose partial schedule provably exceeds `cutoff` return `None` without
/// their full schedule ever being constructed (the paper's §VI proposal).
///
/// The cutoff is a *constant per call* (not updated between offspring), so
/// results stay deterministic and order-independent under parallelism.
pub fn evaluate_fitness_bounded(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
    cutoff: f64,
) -> Vec<Option<f64>> {
    let eval = |a: &Allocation| ListScheduler.makespan_bounded(g, matrix, a, cutoff);
    if !parallel || allocs.len() < 4 {
        return allocs.iter().map(eval).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(allocs.len());
    let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
    let chunk = allocs.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (alloc_chunk, result_chunk) in allocs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (a, r) in alloc_chunk.iter().zip(result_chunk.iter_mut()) {
                    *r = ListScheduler.makespan_bounded(g, matrix, a, cutoff);
                }
            });
        }
    })
    .expect("fitness evaluation threads do not panic");
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{SyntheticModel, TimeMatrix};
    use rand::{Rng, SeedableRng};
    use sched::Mapper as _;
    use rand_chacha::ChaCha8Rng;
    use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

    fn setup() -> (Ptg, TimeMatrix, Vec<Allocation>) {
        let params = DaggenParams {
            n: 50,
            width: 0.5,
            regularity: 0.8,
            density: 0.5,
            jump: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 120);
        let allocs: Vec<Allocation> = (0..23)
            .map(|_| {
                Allocation::from_vec((0..50).map(|_| rng.gen_range(1..=120)).collect())
            })
            .collect();
        (g, m, allocs)
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let (g, m, allocs) = setup();
        let serial = evaluate_fitness(&g, &m, &allocs, false);
        let parallel = evaluate_fitness(&g, &m, &allocs, true);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_are_positional() {
        let (g, m, allocs) = setup();
        let fitness = evaluate_fitness(&g, &m, &allocs, true);
        for (a, f) in allocs.iter().zip(&fitness) {
            assert_eq!(*f, ListScheduler.makespan(&g, &m, a));
        }
    }

    #[test]
    fn small_batches_take_the_serial_path() {
        let (g, m, allocs) = setup();
        let few = &allocs[..2];
        let fitness = evaluate_fitness(&g, &m, few, true);
        assert_eq!(fitness.len(), 2);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let (g, m, _) = setup();
        assert!(evaluate_fitness(&g, &m, &[], true).is_empty());
    }

    #[test]
    fn bounded_evaluation_rejects_consistently_in_parallel_and_serial() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        let serial = evaluate_fitness_bounded(&g, &m, &allocs, false, cutoff);
        let parallel = evaluate_fitness_bounded(&g, &m, &allocs, true, cutoff);
        assert_eq!(serial, parallel);
        // Accepted values equal the exact makespans; rejected ones exceeded
        // the cutoff.
        for ((bounded, &ms), alloc) in serial.iter().zip(&exact).zip(&allocs) {
            match bounded {
                Some(f) => assert_eq!(*f, ms, "{alloc:?}"),
                None => assert!(ms > cutoff, "rejected but exact {ms} ≤ cutoff {cutoff}"),
            }
        }
        // The chosen cutoff must actually reject about half the batch.
        let rejected = serial.iter().filter(|f| f.is_none()).count();
        assert!(rejected > 0 && rejected < allocs.len());
    }

    fn stats_median(values: &[f64]) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }
}
