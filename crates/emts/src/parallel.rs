//! The fitness evaluation engine: persistent worker pool + memo cache.
//!
//! The paper notes the EA's cost "is mainly determined by the mapping
//! function as it evaluates the fitness of individuals". Fitness evaluation
//! is pure — the list scheduler reads the PTG and the time matrix and
//! returns a makespan — so the λ offspring of a generation can be evaluated
//! on all cores with no effect on the results: mutation (the only RNG
//! consumer) stays on the caller's thread.
//!
//! Three layers, composed by [`crate::Emts::run`]:
//!
//! * [`sched::EvalScratch`] (in the `sched` crate) — one set of reusable
//!   buffers per thread, so a steady-state evaluation performs zero heap
//!   allocations,
//! * [`EvalPool`] — worker threads spawned **once per run** and fed batches
//!   over a channel, instead of a fresh thread scope per generation,
//! * [`FitnessEngine`] — a memo cache in front of the pool keyed by the
//!   allocation vector: plus-selection and the shrinking mutation operator
//!   frequently reproduce earlier individuals, and a cached individual
//!   skips the mapper entirely.
//!
//! Caching cannot change any result: the mapper is deterministic in the
//! allocation, and a completed evaluation's [`sched::BoundedEval`] carries
//! `reject_key = max_v (start(v) + bl(v))`, the exact quantity the engine's
//! in-flight rejection test compares against the cutoff — so the cache
//! reproduces accept/reject decisions for *any* later cutoff bit-for-bit.
//!
//! [`evaluate_fitness`] / [`evaluate_fitness_bounded`] keep the original
//! scope-per-call implementation as the reference path; the equivalence
//! tests and the `emts_generation` bench compare the engine against it.

use exec_model::TimeMatrix;
use obs::{NoopRecorder, Recorder};
use ptg::Ptg;
use sched::{Allocation, BoundedEval, EvalScratch, ListScheduler};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// The shared disabled recorder every un-instrumented entry point points
/// at (a zero-sized type, so this is purely a lifetime convenience).
static NOOP: NoopRecorder = NoopRecorder;

/// Evaluates the makespan of every allocation, in parallel when asked.
///
/// Output order matches input order regardless of thread interleaving.
/// This is the reference implementation (a fresh thread scope per call);
/// the EA itself runs on [`EvalPool`] + [`FitnessEngine`].
pub fn evaluate_fitness(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
) -> Vec<f64> {
    evaluate_fitness_bounded(g, matrix, allocs, parallel, f64::INFINITY)
        .into_iter()
        .map(|f| f.expect("infinite cutoff never rejects"))
        .collect()
}

/// Like [`evaluate_fitness`], but with the rejection strategy: allocations
/// whose partial schedule provably exceeds `cutoff` return `None` without
/// their full schedule ever being constructed (the paper's §VI proposal).
///
/// The cutoff is a *constant per call* (not updated between offspring), so
/// results stay deterministic and order-independent under parallelism.
pub fn evaluate_fitness_bounded(
    g: &Ptg,
    matrix: &TimeMatrix,
    allocs: &[Allocation],
    parallel: bool,
    cutoff: f64,
) -> Vec<Option<f64>> {
    let eval = |a: &Allocation| ListScheduler.makespan_bounded(g, matrix, a, cutoff);
    if !parallel || allocs.len() < 4 {
        return allocs.iter().map(eval).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(allocs.len());
    let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
    let chunk = allocs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (alloc_chunk, result_chunk) in allocs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (a, r) in alloc_chunk.iter().zip(result_chunk.iter_mut()) {
                    *r = ListScheduler.makespan_bounded(g, matrix, a, cutoff);
                }
            });
        }
    });
    results
}

/// One batch of evaluations shared between the pool's workers.
///
/// Workers claim indices with an atomic counter, so items are never
/// evaluated twice and results land positionally no matter which worker
/// takes which item.
struct Batch {
    allocs: Vec<Allocation>,
    cutoff: f64,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// One write-once slot per allocation.
    results: Vec<OnceLock<BoundedEval>>,
    /// Items not yet finished; the worker that finishes the last one flags
    /// `done`.
    pending: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// Claims and evaluates items from `batch` until none remain.
///
/// When recording, each evaluation's duration feeds the
/// `pool.eval_seconds` latency histogram (callable from any thread).
fn drain_batch<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    batch: &Batch,
    scratch: &mut EvalScratch,
    rec: &R,
) {
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.allocs.len() {
            return;
        }
        let eval_start = if R::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let outcome = ListScheduler.evaluate_bounded_obs(
            g,
            matrix,
            &batch.allocs[i],
            batch.cutoff,
            scratch,
            rec,
        );
        if let Some(t) = eval_start {
            rec.latency("pool.eval_seconds", t.elapsed().as_secs_f64());
        }
        batch.results[i]
            .set(outcome)
            .expect("each index is claimed exactly once");
        if batch.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *batch.done.lock().expect("no poisoned batch lock") = true;
            batch.done_cv.notify_all();
        }
    }
}

/// A worker: one scratch for its whole lifetime, batches from the shared
/// channel until the pool is dropped.
///
/// When recording, the worker accumulates its busy time locally and flushes
/// it **once at shutdown**: total seconds into the flat `pool/worker_busy`
/// phase, its personal total into the `pool.worker_busy_seconds` histogram
/// (one sample per worker — the per-worker busy-time distribution), and
/// its batch count into `pool.worker_batches`.
fn worker_loop<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    rx: &Mutex<Receiver<Arc<Batch>>>,
    rec: &R,
) {
    let mut scratch = EvalScratch::new();
    let mut busy = 0.0f64;
    let mut batches = 0u64;
    loop {
        // Hold the receiver lock only for the handoff, not the evaluation.
        let msg = rx.lock().expect("no poisoned receiver lock").recv();
        match msg {
            Ok(batch) => {
                let batch_start = if R::ENABLED {
                    Some(Instant::now())
                } else {
                    None
                };
                drain_batch(g, matrix, &batch, &mut scratch, rec);
                if let Some(t) = batch_start {
                    busy += t.elapsed().as_secs_f64();
                    batches += 1;
                }
            }
            Err(_) => break, // pool dropped its sender: shut down
        }
    }
    if R::ENABLED && batches > 0 {
        rec.phase_add("pool/worker_busy", busy);
        rec.latency("pool.worker_busy_seconds", busy);
        rec.add("pool.worker_batches", batches);
    }
}

/// A persistent evaluation pool: worker threads spawned once (per EMTS
/// run), each owning one [`EvalScratch`], fed whole generations as batches
/// over a channel.
///
/// The calling thread participates in every batch with its own scratch, so
/// a pool with zero workers degenerates to plain serial evaluation — that
/// is also the configuration chosen when `parallel` is off.
///
/// The pool is generic over a [`Recorder`], defaulted to the no-op one so
/// existing call sites are untouched; [`EvalPool::with_recorder`] threads a
/// live recorder through the dispatch path and every worker.
pub struct EvalPool<'env, R: Recorder = NoopRecorder> {
    g: &'env Ptg,
    matrix: &'env TimeMatrix,
    /// `None` in serial mode.
    tx: Option<Sender<Arc<Batch>>>,
    workers: usize,
    /// The calling thread's scratch.
    scratch: EvalScratch,
    rec: &'env R,
}

impl<'env> EvalPool<'env> {
    /// Runs `f` with a pool over `g`/`matrix`; workers live exactly as long
    /// as the call (they are joined before `with` returns).
    ///
    /// With `parallel` false — or on a single-core machine — no threads are
    /// spawned and every evaluation runs inline on the caller's scratch.
    pub fn with<T>(
        g: &Ptg,
        matrix: &TimeMatrix,
        parallel: bool,
        f: impl FnOnce(&mut EvalPool<'_>) -> T,
    ) -> T {
        Self::with_recorder(g, matrix, parallel, &NOOP, f)
    }
}

impl<'env, REC: Recorder> EvalPool<'env, REC> {
    /// [`EvalPool::with`] with telemetry: batch dispatch/drain time, an
    /// eval-latency histogram and per-worker busy time flow into `rec`.
    pub fn with_recorder<T>(
        g: &Ptg,
        matrix: &TimeMatrix,
        parallel: bool,
        rec: &REC,
        f: impl FnOnce(&mut EvalPool<'_, REC>) -> T,
    ) -> T {
        let workers = if parallel {
            // The caller drains batches too, so spawn cores − 1 workers.
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(1)
        } else {
            0
        };
        if workers == 0 {
            let mut pool = EvalPool {
                g,
                matrix,
                tx: None,
                workers: 0,
                scratch: EvalScratch::new(),
                rec,
            };
            return f(&mut pool);
        }
        let (tx, rx) = channel::<Arc<Batch>>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = &rx;
                scope.spawn(move || worker_loop(g, matrix, rx, rec));
            }
            let mut pool = EvalPool {
                g,
                matrix,
                tx: Some(tx),
                workers,
                scratch: EvalScratch::new(),
                rec,
            };
            let out = f(&mut pool);
            // Dropping the pool drops the sender; workers see the
            // disconnect and exit, and the scope joins them.
            drop(pool);
            out
        })
    }

    /// Number of worker threads (0 in serial mode).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The recorder this pool reports into.
    pub fn recorder(&self) -> &'env REC {
        self.rec
    }

    /// Evaluates every allocation under `cutoff`; results are positional.
    pub fn run_batch(&mut self, allocs: Vec<Allocation>, cutoff: f64) -> Vec<BoundedEval> {
        let n = allocs.len();
        if n == 0 {
            return Vec::new();
        }
        let tx = match &self.tx {
            // Serial mode, and tiny batches aren't worth the dispatch.
            Some(tx) if n >= 4 => tx,
            _ => {
                if REC::ENABLED {
                    self.rec.add("pool.batches", 1);
                    self.rec.add("pool.evals", n as u64);
                }
                return allocs
                    .iter()
                    .map(|a| {
                        let eval_start = if REC::ENABLED {
                            Some(Instant::now())
                        } else {
                            None
                        };
                        let outcome = ListScheduler.evaluate_bounded_obs(
                            self.g,
                            self.matrix,
                            a,
                            cutoff,
                            &mut self.scratch,
                            self.rec,
                        );
                        if let Some(t) = eval_start {
                            self.rec
                                .latency("pool.eval_seconds", t.elapsed().as_secs_f64());
                        }
                        outcome
                    })
                    .collect();
            }
        };
        let dispatch_start = if REC::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let batch = Arc::new(Batch {
            allocs,
            cutoff,
            next: AtomicUsize::new(0),
            results: (0..n).map(|_| OnceLock::new()).collect(),
            pending: AtomicUsize::new(n),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        // One handle per worker; a worker still busy with nothing (batches
        // are strictly sequential) picks its copy up immediately. A stale
        // copy that outlives its batch drains zero items and is discarded.
        for _ in 0..self.workers.min(n) {
            tx.send(Arc::clone(&batch))
                .expect("workers outlive the pool handle");
        }
        let drain_start = if let Some(t) = dispatch_start {
            self.rec
                .phase_add("pool/dispatch", t.elapsed().as_secs_f64());
            Some(Instant::now())
        } else {
            None
        };
        drain_batch(self.g, self.matrix, &batch, &mut self.scratch, self.rec);
        let mut done = batch.done.lock().expect("no poisoned batch lock");
        while !*done {
            done = batch.done_cv.wait(done).expect("no poisoned batch lock");
        }
        drop(done);
        if let Some(t) = drain_start {
            self.rec.phase_add("pool/drain", t.elapsed().as_secs_f64());
            self.rec.add("pool.batches", 1);
            self.rec.add("pool.evals", n as u64);
        }
        batch
            .results
            .iter()
            .map(|slot| *slot.get().expect("finished batch has every result"))
            .collect()
    }
}

/// A completed evaluation's cached outcome.
#[derive(Debug, Clone, Copy)]
struct Cached {
    makespan: f64,
    reject_key: f64,
}

/// Memoizing front end of the evaluation engine.
///
/// Keyed by the full allocation vector. Only *completed* evaluations are
/// cached (a rejection proves nothing about other cutoffs); a hit decides
/// accept/reject from the stored `reject_key` with the engine's exact test,
/// so hits and misses are bit-for-bit interchangeable.
pub struct FitnessEngine<'p, 'env, R: Recorder = NoopRecorder> {
    pool: &'p mut EvalPool<'env, R>,
    cache: HashMap<Allocation, Cached>,
    hits: usize,
    misses: usize,
}

impl<'p, 'env, R: Recorder> FitnessEngine<'p, 'env, R> {
    /// Wraps `pool` with an empty cache. Telemetry (the `emts.cache.*`
    /// counters) flows into the pool's recorder.
    pub fn new(pool: &'p mut EvalPool<'env, R>) -> Self {
        FitnessEngine {
            pool,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Bounded fitness of every allocation (`None` = rejected), positional.
    ///
    /// Duplicates — across generations via the cache, and within the batch
    /// via in-batch dedup — are evaluated once.
    pub fn evaluate(&mut self, allocs: &[Allocation], cutoff: f64) -> Vec<Option<f64>> {
        // Must match the mapper's rejection threshold exactly (see
        // `ListScheduler::makespan_bounded` for why the slack exists).
        let threshold = cutoff * (1.0 + 1e-9);
        let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
        let mut first_seen: HashMap<&Allocation, usize> = HashMap::new();
        let mut miss_indices: Vec<usize> = Vec::new();
        let mut aliases: Vec<(usize, usize)> = Vec::new();
        let hits_before = self.hits;
        let misses_before = self.misses;
        for (i, a) in allocs.iter().enumerate() {
            if let Some(c) = self.cache.get(a) {
                self.hits += 1;
                results[i] = (c.reject_key <= threshold).then_some(c.makespan);
            } else if let Some(&j) = first_seen.get(a) {
                self.hits += 1;
                aliases.push((i, j));
            } else {
                self.misses += 1;
                first_seen.insert(a, i);
                miss_indices.push(i);
            }
        }
        if R::ENABLED {
            let rec = self.pool.recorder();
            rec.add("emts.cache.hits", (self.hits - hits_before) as u64);
            rec.add("emts.cache.misses", (self.misses - misses_before) as u64);
        }
        if !miss_indices.is_empty() {
            let batch: Vec<Allocation> = miss_indices.iter().map(|&i| allocs[i].clone()).collect();
            let outcomes = self.pool.run_batch(batch, cutoff);
            for (&i, outcome) in miss_indices.iter().zip(outcomes) {
                match outcome {
                    BoundedEval::Complete {
                        makespan,
                        reject_key,
                    } => {
                        self.cache.insert(
                            allocs[i].clone(),
                            Cached {
                                makespan,
                                reject_key,
                            },
                        );
                        results[i] = Some(makespan);
                    }
                    BoundedEval::Rejected => results[i] = None,
                }
            }
        }
        for (i, j) in aliases {
            results[i] = results[j];
        }
        results
    }

    /// Evaluations answered from the cache (including in-batch duplicates).
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// Evaluations that ran the mapper.
    pub fn cache_misses(&self) -> usize {
        self.misses
    }

    /// Distinct completed allocations currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{SyntheticModel, TimeMatrix};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sched::Mapper as _;
    use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

    fn setup() -> (Ptg, TimeMatrix, Vec<Allocation>) {
        let params = DaggenParams {
            n: 50,
            width: 0.5,
            regularity: 0.8,
            density: 0.5,
            jump: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 120);
        let allocs: Vec<Allocation> = (0..23)
            .map(|_| Allocation::from_vec((0..50).map(|_| rng.gen_range(1..=120)).collect()))
            .collect();
        (g, m, allocs)
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let (g, m, allocs) = setup();
        let serial = evaluate_fitness(&g, &m, &allocs, false);
        let parallel = evaluate_fitness(&g, &m, &allocs, true);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_are_positional() {
        let (g, m, allocs) = setup();
        let fitness = evaluate_fitness(&g, &m, &allocs, true);
        for (a, f) in allocs.iter().zip(&fitness) {
            assert_eq!(*f, ListScheduler.makespan(&g, &m, a));
        }
    }

    #[test]
    fn small_batches_take_the_serial_path() {
        let (g, m, allocs) = setup();
        let few = &allocs[..2];
        let fitness = evaluate_fitness(&g, &m, few, true);
        assert_eq!(fitness.len(), 2);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let (g, m, _) = setup();
        assert!(evaluate_fitness(&g, &m, &[], true).is_empty());
    }

    #[test]
    fn bounded_evaluation_rejects_consistently_in_parallel_and_serial() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        let serial = evaluate_fitness_bounded(&g, &m, &allocs, false, cutoff);
        let parallel = evaluate_fitness_bounded(&g, &m, &allocs, true, cutoff);
        assert_eq!(serial, parallel);
        // Accepted values equal the exact makespans; rejected ones exceeded
        // the cutoff.
        for ((bounded, &ms), alloc) in serial.iter().zip(&exact).zip(&allocs) {
            match bounded {
                Some(f) => assert_eq!(*f, ms, "{alloc:?}"),
                None => assert!(ms > cutoff, "rejected but exact {ms} ≤ cutoff {cutoff}"),
            }
        }
        // The chosen cutoff must actually reject about half the batch.
        let rejected = serial.iter().filter(|f| f.is_none()).count();
        assert!(rejected > 0 && rejected < allocs.len());
    }

    #[test]
    fn pool_matches_scoped_reference_with_and_without_cutoff() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        for parallel in [false, true] {
            for c in [f64::INFINITY, cutoff] {
                let reference = evaluate_fitness_bounded(&g, &m, &allocs, false, c);
                let pooled = EvalPool::with(&g, &m, parallel, |pool| {
                    pool.run_batch(allocs.clone(), c)
                        .into_iter()
                        .map(|o| match o {
                            BoundedEval::Complete { makespan, .. } => Some(makespan),
                            BoundedEval::Rejected => None,
                        })
                        .collect::<Vec<_>>()
                });
                assert_eq!(reference, pooled, "parallel={parallel} cutoff={c}");
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        EvalPool::with(&g, &m, true, |pool| {
            for _ in 0..3 {
                let got: Vec<f64> = pool
                    .run_batch(allocs.clone(), f64::INFINITY)
                    .into_iter()
                    .map(|o| match o {
                        BoundedEval::Complete { makespan, .. } => makespan,
                        BoundedEval::Rejected => unreachable!("infinite cutoff"),
                    })
                    .collect();
                assert_eq!(reference, got);
            }
        });
    }

    #[test]
    fn engine_cache_hits_return_identical_values() {
        let (g, m, allocs) = setup();
        let reference = evaluate_fitness(&g, &m, &allocs, false);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let first = engine.evaluate(&allocs, f64::INFINITY);
            assert_eq!(engine.cache_misses(), allocs.len());
            assert_eq!(engine.cache_hits(), 0);
            let second = engine.evaluate(&allocs, f64::INFINITY);
            assert_eq!(engine.cache_hits(), allocs.len());
            assert_eq!(first, second);
            for (f, r) in first.iter().zip(&reference) {
                assert_eq!(f.unwrap(), *r);
            }
        });
    }

    #[test]
    fn engine_cached_rejection_decisions_match_fresh_evaluation() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            // Warm the cache with completions (infinite cutoff), then query
            // at a tight cutoff: every answer must come from the cache and
            // equal the engine's own decision.
            let _ = engine.evaluate(&allocs, f64::INFINITY);
            let misses_before = engine.cache_misses();
            let cached = engine.evaluate(&allocs, cutoff);
            assert_eq!(engine.cache_misses(), misses_before, "all hits expected");
            let fresh = evaluate_fitness_bounded(&g, &m, &allocs, false, cutoff);
            assert_eq!(cached, fresh);
        });
    }

    #[test]
    fn engine_deduplicates_within_a_batch() {
        let (g, m, allocs) = setup();
        let mut dup = allocs.clone();
        dup.extend(allocs.iter().take(5).cloned());
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let results = engine.evaluate(&dup, f64::INFINITY);
            assert_eq!(engine.cache_misses(), allocs.len());
            assert_eq!(engine.cache_hits(), 5);
            for i in 0..5 {
                assert_eq!(results[i], results[allocs.len() + i]);
            }
        });
    }

    #[test]
    fn rejected_evaluations_are_not_cached() {
        let (g, m, allocs) = setup();
        let exact = evaluate_fitness(&g, &m, &allocs, false);
        let cutoff = stats_median(&exact);
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let bounded = engine.evaluate(&allocs, cutoff);
            let completed = bounded.iter().filter(|f| f.is_some()).count();
            assert_eq!(engine.cache_len(), completed);
        });
    }

    fn stats_median(values: &[f64]) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }
}
