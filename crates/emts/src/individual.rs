//! EA individuals: an allocation with its (lazily attached) fitness.

use sched::{Allocation, EvalRecord};
use std::sync::Arc;

/// One individual of the EMTS population (the paper's Fig. 2 encoding).
///
/// Fitness is the makespan of the list-scheduled allocation — smaller is
/// fitter.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The genotype: per-task processor counts.
    pub alloc: Allocation,
    /// The evaluated makespan in seconds.
    pub fitness: f64,
    /// Where this individual came from (seed name or `"mutant"`), kept for
    /// experiment traces.
    pub origin: &'static str,
    /// Recorded evaluation of `alloc` (bottom levels + schedule prefix
    /// checkpoints), attached lazily once the individual survives into a
    /// generation whose offspring are evaluated through the delta path.
    pub record: Option<Arc<EvalRecord>>,
}

/// Identity is the genotype and its evaluation — the attached record is a
/// cache of derived data, not state.
impl PartialEq for Individual {
    fn eq(&self, other: &Self) -> bool {
        self.alloc == other.alloc && self.fitness == other.fitness && self.origin == other.origin
    }
}

impl Individual {
    /// Creates an evaluated individual.
    pub fn new(alloc: Allocation, fitness: f64, origin: &'static str) -> Self {
        assert!(
            fitness.is_finite() && fitness >= 0.0,
            "fitness must be a non-negative finite makespan"
        );
        Individual {
            alloc,
            fitness,
            origin,
            record: None,
        }
    }

    /// True if `self` is strictly fitter (smaller makespan) than `other`.
    pub fn fitter_than(&self, other: &Individual) -> bool {
        self.fitness < other.fitness
    }
}

/// Sorts a population by increasing makespan (fittest first) and truncates
/// to `mu` survivors — the plus/comma selection step.
pub fn select_best(mut pool: Vec<Individual>, mu: usize) -> Vec<Individual> {
    pool.sort_by(|a, b| {
        a.fitness
            .partial_cmp(&b.fitness)
            .expect("fitness values are finite")
    });
    pool.truncate(mu);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(fitness: f64) -> Individual {
        Individual::new(Allocation::ones(2), fitness, "test")
    }

    #[test]
    fn fitter_means_smaller_makespan() {
        assert!(ind(1.0).fitter_than(&ind(2.0)));
        assert!(!ind(2.0).fitter_than(&ind(1.0)));
        assert!(!ind(1.0).fitter_than(&ind(1.0)));
    }

    #[test]
    fn selection_keeps_the_best_mu() {
        let pool = vec![ind(3.0), ind(1.0), ind(2.0), ind(0.5)];
        let survivors = select_best(pool, 2);
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors[0].fitness, 0.5);
        assert_eq!(survivors[1].fitness, 1.0);
    }

    #[test]
    fn selection_with_large_mu_keeps_everyone_sorted() {
        let survivors = select_best(vec![ind(2.0), ind(1.0)], 10);
        assert_eq!(survivors.len(), 2);
        assert!(survivors[0].fitness <= survivors[1].fitness);
    }

    #[test]
    #[should_panic(expected = "fitness must be")]
    fn nan_fitness_is_rejected() {
        let _ = ind(f64::NAN);
    }
}
