//! EMTS on multi-cluster grids (extension).
//!
//! The paper schedules one homogeneous cluster; its future work asks for
//! broader evolutionary methods. This module evolves *grid* allocations —
//! each allele is a `(cluster, width)` pair — with the same ingredients as
//! flat EMTS: heuristic seeding (from [`heuristics::HcpaGrid`]), the
//! asymmetric width mutation, a small *migration* probability that moves a
//! task to another cluster, plus-selection, and the grid list scheduler as
//! the fitness function. Because the seeds enter the population unchanged,
//! grid-EMTS is never worse than multi-cluster HCPA.

use crate::config::EmtsConfig;
use crate::mutation::{mutation_count, MutationOperator};
use exec_model::ExecutionTimeModel;
use heuristics::HcpaGrid;
use platform::grid::Grid;
use ptg::Ptg;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::multi::{map_on_grid, GridAllocation, GridTimeMatrix};
use std::time::{Duration, Instant};

/// Grid-EMTS configuration: the flat parameters plus a migration rate.
#[derive(Debug, Clone)]
pub struct GridEmtsConfig {
    /// The underlying ES parameters (µ, λ, U, f_m, operator shape, …).
    pub base: EmtsConfig,
    /// Probability that a mutated allele *migrates* to a uniformly random
    /// other cluster instead of resizing in place.
    pub migration_prob: f64,
}

impl Default for GridEmtsConfig {
    fn default() -> Self {
        GridEmtsConfig {
            base: EmtsConfig::emts5(),
            migration_prob: 0.2,
        }
    }
}

/// Result of a grid-EMTS run.
#[derive(Debug, Clone)]
pub struct GridEmtsResult {
    /// Best grid allocation found.
    pub best: GridAllocation,
    /// Its makespan under the grid list scheduler.
    pub best_makespan: f64,
    /// The HCPA-grid seed allocation's makespan under [`map_on_grid`]
    /// (upper bound on `best_makespan` by plus-selection).
    pub seed_makespan: f64,
    /// Makespan of HCPA-grid's *native* one-pass schedule. Its mapping
    /// co-decides cluster choice during placement, which `map_on_grid`
    /// (mapping a fixed allocation) cannot always reproduce, so this can be
    /// smaller than `seed_makespan`; take
    /// `best_makespan.min(hcpa_native_makespan)` when you only care about
    /// the final schedule.
    pub hcpa_native_makespan: f64,
    /// Total fitness evaluations.
    pub evaluations: usize,
    /// Evaluations answered by the memo cache (subset of `evaluations`).
    pub cache_hits: usize,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
}

/// The grid-EMTS scheduler.
#[derive(Debug, Clone, Default)]
pub struct GridEmts {
    cfg: GridEmtsConfig,
}

impl GridEmts {
    /// Creates a grid-EMTS instance.
    pub fn new(cfg: GridEmtsConfig) -> Self {
        cfg.base.validate();
        assert!(
            (0.0..=1.0).contains(&cfg.migration_prob),
            "migration_prob must lie in [0, 1]"
        );
        GridEmts { cfg }
    }

    /// Runs the evolution on `g` over `grid` under `model`.
    pub fn run<M: ExecutionTimeModel + ?Sized>(
        &self,
        g: &Ptg,
        model: &M,
        grid: &Grid,
        seed: u64,
    ) -> GridEmtsResult {
        // lint:allow(src-timing) -- results report elapsed wall time.
        let start = Instant::now();
        let cfg = &self.cfg.base;
        let op = MutationOperator {
            shrink_prob: cfg.shrink_prob,
            sigma_shrink: cfg.sigma_shrink,
            sigma_stretch: cfg.sigma_stretch,
            uniform: cfg.uniform_mutation,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let matrices = GridTimeMatrix::compute(g, model, grid);
        // Memo cache keyed by the full (cluster, width) vector: the grid
        // mapper is deterministic, so duplicated individuals (plus-selection
        // keeps parents around, mutation reproduces earlier alleles) skip
        // the mapping entirely.
        let mut cache: std::collections::HashMap<Vec<(u32, u32)>, f64> =
            std::collections::HashMap::new();
        let mut cache_hits = 0usize;
        let mut fitness_of = |alloc: &GridAllocation| -> f64 {
            if let Some(&f) = cache.get(&alloc.per_task) {
                cache_hits += 1;
                return f;
            }
            let f = map_on_grid(g, &matrices, alloc, grid).makespan();
            cache.insert(alloc.per_task.clone(), f);
            f
        };

        // Seeds: HCPA-grid, plus "everything on cluster k, sequential" for
        // each cluster, then mutated copies up to µ.
        let mut population: Vec<(GridAllocation, f64)> = Vec::with_capacity(cfg.mu);
        let (hcpa_alloc, hcpa_schedule) = HcpaGrid.schedule(g, model, grid);
        let hcpa_native_makespan = hcpa_schedule.makespan();
        let f = fitness_of(&hcpa_alloc);
        population.push((hcpa_alloc, f));
        for k in 0..grid.cluster_count().min(cfg.mu.saturating_sub(1)) {
            let alloc = GridAllocation {
                per_task: vec![(k as u32, 1); g.task_count()],
            };
            let f = fitness_of(&alloc);
            population.push((alloc, f));
        }
        let m0 = ((cfg.fm * g.task_count() as f64).round() as usize).max(1);
        while population.len() < cfg.mu {
            let base = population[rng.gen_range(0..population.len())].0.clone();
            let mut alloc = base;
            self.mutate(&mut alloc, m0, grid, &op, &mut rng);
            let f = fitness_of(&alloc);
            population.push((alloc, f));
        }
        population.truncate(cfg.mu);
        let seed_makespan = population
            .iter()
            .map(|(_, f)| *f)
            .fold(f64::INFINITY, f64::min);
        let mut evaluations = population.len();

        for u in 0..cfg.generations {
            let m = mutation_count(u, cfg.generations, cfg.fm, g.task_count());
            let mut offspring: Vec<(GridAllocation, f64)> = Vec::with_capacity(cfg.lambda);
            for _ in 0..cfg.lambda {
                let pidx = rng.gen_range(0..population.len());
                let mut alloc = population[pidx].0.clone();
                // Optional single-point crossover on the (cluster, width)
                // vector, mirroring the flat EA. The probability guard
                // precedes every draw so the default crossover_prob = 0.0
                // keeps the historical RNG stream bit-for-bit.
                if cfg.crossover_prob > 0.0
                    && population.len() > 1
                    && alloc.per_task.len() > 1
                    && rng.gen_bool(cfg.crossover_prob)
                {
                    let mut qidx = rng.gen_range(0..population.len() - 1);
                    if qidx >= pidx {
                        qidx += 1;
                    }
                    let cut = rng.gen_range(1..alloc.per_task.len());
                    alloc.per_task[cut..].copy_from_slice(&population[qidx].0.per_task[cut..]);
                }
                self.mutate(&mut alloc, m, grid, &op, &mut rng);
                let f = fitness_of(&alloc);
                offspring.push((alloc, f));
            }
            evaluations += offspring.len();
            population.extend(offspring);
            population.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite makespans"));
            population.truncate(cfg.mu);
        }

        let (best, best_makespan) = population
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite makespans"))
            .expect("population never empty");
        GridEmtsResult {
            best,
            best_makespan,
            seed_makespan,
            hcpa_native_makespan,
            evaluations,
            cache_hits,
            wall_time: start.elapsed(),
        }
    }

    /// Mutates `m` distinct alleles: each either migrates to a random other
    /// cluster (keeping a clamped width) or resizes in place with the paper
    /// operator.
    fn mutate<R: Rng + ?Sized>(
        &self,
        alloc: &mut GridAllocation,
        m: usize,
        grid: &Grid,
        op: &MutationOperator,
        rng: &mut R,
    ) {
        let v = alloc.per_task.len();
        let m = m.min(v);
        let mut indices: Vec<usize> = (0..v).collect();
        for i in 0..m {
            let j = rng.gen_range(i..v);
            indices.swap(i, j);
            let idx = indices[i];
            let (k, width) = alloc.per_task[idx];
            let migrate = grid.cluster_count() > 1 && rng.gen_bool(self.cfg.migration_prob);
            if migrate {
                // Uniform choice among the *other* clusters.
                let mut new_k = rng.gen_range(0..grid.cluster_count() as u32 - 1);
                if new_k >= k {
                    new_k += 1;
                }
                let cap = grid.clusters[new_k as usize].processors;
                alloc.per_task[idx] = (new_k, width.clamp(1, cap));
            } else {
                let cap = grid.clusters[k as usize].processors;
                let delta = op.sample_delta(rng);
                let next = (width as i64 + delta).clamp(1, cap as i64) as u32;
                alloc.per_task[idx] = (k, next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::SyntheticModel;
    use platform::grid::grid5000_pair;
    use sched::multi::validate_grid_schedule;
    use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

    fn sample(seed: u64) -> Ptg {
        random_ptg(
            &DaggenParams {
                n: 40,
                width: 0.5,
                regularity: 0.5,
                density: 0.3,
                jump: 1,
            },
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
    }

    #[test]
    fn grid_emts_never_loses_to_its_hcpa_seed() {
        let g = sample(1);
        let grid = grid5000_pair();
        let result = GridEmts::default().run(&g, &SyntheticModel::default(), &grid, 7);
        assert!(result.best_makespan <= result.seed_makespan + 1e-9);
        assert!(result.hcpa_native_makespan > 0.0);
        assert!(result.best.is_valid_for(&g, &grid));
    }

    #[test]
    fn best_allocation_maps_to_a_valid_schedule() {
        let g = sample(2);
        let grid = grid5000_pair();
        let model = SyntheticModel::default();
        let result = GridEmts::default().run(&g, &model, &grid, 3);
        let matrices = GridTimeMatrix::compute(&g, &model, &grid);
        let schedule = map_on_grid(&g, &matrices, &result.best, &grid);
        validate_grid_schedule(&g, &grid, &schedule).unwrap();
        assert!((schedule.makespan() - result.best_makespan).abs() < 1e-9);
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let g = sample(3);
        let grid = grid5000_pair();
        let model = SyntheticModel::default();
        let a = GridEmts::default().run(&g, &model, &grid, 9);
        let b = GridEmts::default().run(&g, &model, &grid, 9);
        assert_eq!(a.best_makespan, b.best_makespan);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn migration_uses_both_clusters_eventually() {
        let g = sample(4);
        let grid = grid5000_pair();
        let result = GridEmts::default().run(&g, &SyntheticModel::default(), &grid, 11);
        let clusters_used: std::collections::HashSet<u32> =
            result.best.per_task.iter().map(|&(k, _)| k).collect();
        // 40 heavy tasks on a 140-processor grid: leaving one cluster fully
        // idle would waste half the machine; the EA should not do that.
        assert_eq!(clusters_used.len(), 2, "{:?}", result.best.per_task);
    }

    #[test]
    fn single_cluster_grid_degenerates_gracefully() {
        let g = sample(5);
        let grid = Grid::new("solo", vec![platform::presets::chti()]);
        let result = GridEmts::default().run(&g, &SyntheticModel::default(), &grid, 13);
        assert!(result.best.per_task.iter().all(|&(k, _)| k == 0));
        assert!(result.best_makespan <= result.seed_makespan + 1e-9);
    }

    #[test]
    fn crossover_variant_keeps_guarantees_and_determinism() {
        let g = sample(6);
        let grid = grid5000_pair();
        let model = SyntheticModel::default();
        let cfg = GridEmtsConfig {
            base: EmtsConfig {
                crossover_prob: 0.4,
                ..EmtsConfig::emts5()
            },
            ..GridEmtsConfig::default()
        };
        let a = GridEmts::new(cfg.clone()).run(&g, &model, &grid, 15);
        let b = GridEmts::new(cfg).run(&g, &model, &grid, 15);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_makespan, b.best_makespan);
        assert!(a.best_makespan <= a.seed_makespan + 1e-9);
        assert!(a.best.is_valid_for(&g, &grid));
    }

    #[test]
    #[should_panic(expected = "migration_prob")]
    fn invalid_migration_prob_panics() {
        let _ = GridEmts::new(GridEmtsConfig {
            migration_prob: 1.5,
            ..GridEmtsConfig::default()
        });
    }
}
