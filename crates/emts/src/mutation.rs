//! The paper's asymmetric integer mutation operator (§III-D) and the
//! adaptive mutation count (§III-C).
//!
//! The per-allele step is `C = −(⌊|X₁|⌋ + 1)` with probability `a` (shrink,
//! `X₁ ~ N(0, σ₁)`) and `C = +(⌊|X₂|⌋ + 1)` with probability `1 − a`
//! (stretch, `X₂ ~ N(0, σ₂)`), so small changes are more likely than large
//! ones and stretching dominates — exactly the density shown in the paper's
//! Figure 3 (σ₁ = σ₂ = 5, a = 0.2). Mutated allocations clamp into `[1, P]`.
//!
//! Normal variates come from a local Box–Muller transform to avoid pulling
//! in a distribution crate for one density.

use rand::Rng;
use sched::Allocation;

/// The mutation operator with its distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationOperator {
    /// Probability of shrinking an allocation (paper: `a = 0.2`).
    pub shrink_prob: f64,
    /// σ₁ — spread of shrink magnitudes.
    pub sigma_shrink: f64,
    /// σ₂ — spread of stretch magnitudes.
    pub sigma_stretch: f64,
    /// Ablation switch: draw magnitudes from `U{1..=2σ}` instead of the
    /// folded normal (uniform steps make ±k equally likely for all k, the
    /// convergence problem §III-D argues against).
    pub uniform: bool,
}

impl MutationOperator {
    /// The paper's operator: `a = 0.2`, `σ₁ = σ₂ = 5`.
    pub fn paper() -> Self {
        MutationOperator {
            shrink_prob: 0.2,
            sigma_shrink: 5.0,
            sigma_stretch: 5.0,
            uniform: false,
        }
    }

    /// Samples the signed processor delta `C` (never 0).
    pub fn sample_delta<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let shrink = rng.gen_bool(self.shrink_prob);
        let sigma = if shrink {
            self.sigma_shrink
        } else {
            self.sigma_stretch
        };
        let magnitude = if self.uniform {
            rng.gen_range(1..=(2.0 * sigma).max(1.0) as i64)
        } else {
            standard_normal(rng).abs().mul_add(sigma, 0.0).floor() as i64 + 1
        };
        if shrink {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Mutates `m` distinct alleles of `alloc` in place, clamping each new
    /// value into `[1, p_max]`, and returns the alleles whose value
    /// actually changed.
    ///
    /// Clamping can be a no-op (shrinking a width-1 task, stretching a
    /// width-`p_max` one), so the returned set may be smaller than `m` —
    /// even empty, in which case the offspring equals its parent and the
    /// fitness engine skips re-evaluation entirely. The RNG draw sequence
    /// is independent of the clamp outcomes.
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        alloc: &mut Allocation,
        m: usize,
        p_max: u32,
        rng: &mut R,
    ) -> Vec<ptg::TaskId> {
        let v = alloc.len();
        let m = m.min(v);
        // Partial Fisher–Yates over the index set picks m distinct alleles.
        let mut indices: Vec<usize> = (0..v).collect();
        let mut changed = Vec::with_capacity(m);
        for i in 0..m {
            let j = rng.gen_range(i..v);
            indices.swap(i, j);
            let idx = ptg::TaskId::from_index(indices[i]);
            let delta = self.sample_delta(rng);
            let current = alloc.of(idx) as i64;
            let next = (current + delta).clamp(1, p_max as i64) as u32;
            if next != current as u32 {
                alloc.set(idx, next);
                changed.push(idx);
            }
        }
        changed
    }
}

/// Number of alleles mutated in generation `u` of `total` (0-based):
/// `m(u) = (1 − u/U) · f_m · V`, at least 1.
///
/// The paper indexes generations so that the mutation strength decays
/// linearly; with 0-based `u` the first generation mutates the full
/// `f_m · V` alleles and the last one `f_m · V / U` — we floor at one allele
/// so every offspring differs from its parent.
pub fn mutation_count(u: usize, total: usize, fm: f64, v: usize) -> usize {
    assert!(total >= 1 && u < total, "generation index out of range");
    let m = (1.0 - u as f64 / total as f64) * fm * v as f64;
    (m.round() as usize).max(1)
}

/// One standard-normal variate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(2024)
    }

    #[test]
    fn delta_is_never_zero() {
        let op = MutationOperator::paper();
        let mut r = rng();
        for _ in 0..2000 {
            assert_ne!(op.sample_delta(&mut r), 0);
        }
    }

    #[test]
    fn shrink_fraction_approximates_a() {
        let op = MutationOperator::paper();
        let mut r = rng();
        let n = 20_000;
        let shrinks = (0..n).filter(|_| op.sample_delta(&mut r) < 0).count();
        let frac = shrinks as f64 / n as f64;
        assert!(
            (frac - 0.2).abs() < 0.02,
            "shrink fraction {frac} far from a = 0.2"
        );
    }

    #[test]
    fn magnitude_mean_matches_folded_normal() {
        // E[⌊|N(0,5)|⌋ + 1] ≈ 5·√(2/π) + 0.5 ≈ 4.49
        let op = MutationOperator::paper();
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| op.sample_delta(&mut r).unsigned_abs() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 4.49).abs() < 0.25, "mean magnitude {mean}");
    }

    #[test]
    fn small_steps_are_more_likely_than_large_ones() {
        let op = MutationOperator::paper();
        let mut r = rng();
        let n = 30_000;
        let mut small = 0usize; // |C| ≤ 3
        let mut large = 0usize; // |C| ≥ 10
        for _ in 0..n {
            let c = op.sample_delta(&mut r).unsigned_abs();
            if c <= 3 {
                small += 1;
            } else if c >= 10 {
                large += 1;
            }
        }
        assert!(small > 3 * large, "small {small} vs large {large}");
    }

    #[test]
    fn mutate_changes_exactly_m_or_fewer_alleles() {
        let op = MutationOperator::paper();
        let mut r = rng();
        for m in [1usize, 3, 5] {
            let mut alloc = Allocation::uniform(10, 50);
            op.mutate(&mut alloc, m, 100, &mut r);
            let changed = alloc.as_slice().iter().filter(|&&s| s != 50).count();
            // All m picked alleles get a nonzero delta and cannot clamp back
            // to 50 from 50 (delta ≠ 0 and 50 ± |C| stays in [1,100] for
            // small |C|) — but a large shrink could clamp to 1 and another
            // allele could coincidentally also be 1; equality of value, not
            // identity, is what we count, so allow ≤ m.
            assert!(changed <= m, "m = {m}, changed {changed}");
            assert!(changed >= 1);
        }
    }

    #[test]
    fn mutate_reports_exactly_the_alleles_that_differ() {
        let op = MutationOperator::paper();
        let mut r = rng();
        for m in [1usize, 4, 10] {
            let before = Allocation::uniform(10, 50);
            let mut after = before.clone();
            let changed = op.mutate(&mut after, m, 100, &mut r);
            let diff: Vec<usize> = (0..10)
                .filter(|&i| before.as_slice()[i] != after.as_slice()[i])
                .collect();
            let mut reported: Vec<usize> = changed.iter().map(|t| t.index()).collect();
            reported.sort_unstable();
            assert_eq!(reported, diff, "m = {m}");
        }
    }

    #[test]
    fn zero_width_mutation_is_detected_as_empty_change_set() {
        // Shrink-only operator on an all-ones allocation: every delta is
        // negative and clamps straight back to 1, so nothing changes and
        // the engine can skip re-evaluating the offspring.
        let op = MutationOperator {
            shrink_prob: 1.0,
            ..MutationOperator::paper()
        };
        let mut r = rng();
        for _ in 0..50 {
            let mut alloc = Allocation::uniform(12, 1);
            let changed = op.mutate(&mut alloc, 5, 64, &mut r);
            assert!(changed.is_empty(), "clamped no-op reported {changed:?}");
            assert!(alloc.as_slice().iter().all(|&s| s == 1));
        }
    }

    #[test]
    fn mutate_respects_platform_bounds() {
        let op = MutationOperator::paper();
        let mut r = rng();
        for _ in 0..200 {
            let mut alloc = Allocation::uniform(20, 2);
            op.mutate(&mut alloc, 20, 4, &mut r);
            assert!(alloc.as_slice().iter().all(|&s| (1..=4).contains(&s)));
        }
    }

    #[test]
    fn mutation_count_decays_linearly() {
        // V = 100, fm = 0.33, U = 5 → 33, 26, 20, 13, 7
        let counts: Vec<usize> = (0..5).map(|u| mutation_count(u, 5, 0.33, 100)).collect();
        assert_eq!(counts, vec![33, 26, 20, 13, 7]);
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn mutation_count_never_drops_below_one() {
        assert_eq!(mutation_count(9, 10, 0.33, 2), 1);
        assert_eq!(mutation_count(0, 1, 0.01, 3), 1);
    }

    #[test]
    fn uniform_variant_spreads_magnitudes_evenly() {
        let op = MutationOperator {
            uniform: true,
            ..MutationOperator::paper()
        };
        let mut r = rng();
        let n = 30_000;
        let mut buckets = [0usize; 10]; // magnitudes 1..=10
        for _ in 0..n {
            let c = op.sample_delta(&mut r).unsigned_abs() as usize;
            assert!((1..=10).contains(&c));
            buckets[c - 1] += 1;
        }
        let min = *buckets.iter().min().unwrap() as f64;
        let max = *buckets.iter().max().unwrap() as f64;
        assert!(max / min < 1.25, "uniform buckets skewed: {buckets:?}");
    }

    #[test]
    fn box_muller_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "generation index out of range")]
    fn mutation_count_checks_bounds() {
        let _ = mutation_count(5, 5, 0.33, 100);
    }
}
