//! Configuration portfolios (future-work extension).
//!
//! The paper's conclusions suggest comparing "different evolutionary
//! methods … with respect to scheduling performance and speed". A portfolio
//! runs several EMTS configurations on the same problem — on separate
//! threads, since each run is independent — and returns the best result,
//! plus per-member outcomes for analysis. Under a wall-clock constraint
//! this is the classic algorithm-portfolio answer to "which (µ, λ, U) should
//! I pick?": don't pick, race them.

use crate::config::EmtsConfig;
use crate::ea::{Emts, EmtsResult};
use exec_model::TimeMatrix;
use ptg::Ptg;

/// One portfolio member's outcome.
#[derive(Debug, Clone)]
pub struct MemberResult {
    /// Label of the configuration.
    pub label: String,
    /// The member's full EA result.
    pub result: EmtsResult,
}

/// The portfolio outcome: the winner plus every member.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// Index into `members` of the best (smallest makespan) run.
    pub winner: usize,
    /// All member outcomes, in configuration order.
    pub members: Vec<MemberResult>,
}

impl PortfolioResult {
    /// The winning member.
    pub fn best(&self) -> &MemberResult {
        &self.members[self.winner]
    }
}

/// Runs every labeled configuration on `(g, matrix)` and returns the best.
///
/// Each member gets a distinct deterministic seed derived from `seed` and
/// its index, so the portfolio as a whole is reproducible. Members run
/// concurrently (one thread each); their internal parallel evaluation is
/// disabled to avoid oversubscription.
pub fn run_portfolio(
    configs: &[(String, EmtsConfig)],
    g: &Ptg,
    matrix: &TimeMatrix,
    seed: u64,
) -> PortfolioResult {
    assert!(!configs.is_empty(), "portfolio needs at least one member");
    let mut members: Vec<Option<MemberResult>> = Vec::new();
    members.resize_with(configs.len(), || None);
    std::thread::scope(|scope| {
        for (i, ((label, cfg), slot)) in configs.iter().zip(members.iter_mut()).enumerate() {
            scope.spawn(move || {
                let mut cfg = cfg.clone();
                cfg.parallel_evaluation = false;
                let emts = Emts::new(cfg);
                let result = emts.run(g, matrix, seed.wrapping_add(i as u64));
                *slot = Some(MemberResult {
                    label: label.clone(),
                    result,
                });
            });
        }
    });
    let members: Vec<MemberResult> = members
        .into_iter()
        .map(|m| m.expect("every member completed"))
        .collect();
    let winner = members
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.result
                .best_makespan
                .partial_cmp(&b.1.result.best_makespan)
                .expect("finite makespans")
        })
        .expect("non-empty portfolio")
        .0;
    PortfolioResult { winner, members }
}

/// A sensible default portfolio: the paper's two presets plus a
/// wide-and-shallow and a narrow-and-deep variant.
pub fn default_portfolio() -> Vec<(String, EmtsConfig)> {
    vec![
        ("EMTS5".into(), EmtsConfig::emts5()),
        ("EMTS10".into(), EmtsConfig::emts10()),
        (
            "wide (5+100)×3".into(),
            EmtsConfig {
                mu: 5,
                lambda: 100,
                generations: 3,
                ..EmtsConfig::default()
            },
        ),
        (
            "deep (5+10)×25".into(),
            EmtsConfig {
                mu: 5,
                lambda: 10,
                generations: 25,
                ..EmtsConfig::default()
            },
        ),
        // Recombination variant: a quarter of the offspring start from a
        // single-point crossover of two parents before mutation. The only
        // member that departs from the paper's mutation-only reproduction.
        (
            "EMTS5 ⊕ crossover".into(),
            EmtsConfig {
                crossover_prob: 0.25,
                ..EmtsConfig::emts5()
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{SyntheticModel, TimeMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::{fft::fft_ptg, CostConfig};

    fn setup() -> (Ptg, TimeMatrix) {
        let g = fft_ptg(8, &CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(2));
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 4.3e9, 20);
        (g, m)
    }

    #[test]
    fn winner_is_the_minimum_makespan_member() {
        let (g, m) = setup();
        let portfolio = default_portfolio();
        let result = run_portfolio(&portfolio, &g, &m, 7);
        assert_eq!(result.members.len(), 5);
        let best = result.best().result.best_makespan;
        for member in &result.members {
            assert!(
                best <= member.result.best_makespan + 1e-12,
                "{}",
                member.label
            );
        }
    }

    #[test]
    fn portfolio_is_reproducible() {
        let (g, m) = setup();
        let portfolio = default_portfolio();
        let a = run_portfolio(&portfolio, &g, &m, 9);
        let b = run_portfolio(&portfolio, &g, &m, 9);
        assert_eq!(a.winner, b.winner);
        for (x, y) in a.members.iter().zip(&b.members) {
            assert_eq!(x.result.best_makespan, y.result.best_makespan);
        }
    }

    #[test]
    fn portfolio_never_loses_to_any_single_member_rerun() {
        let (g, m) = setup();
        let portfolio = default_portfolio();
        let result = run_portfolio(&portfolio, &g, &m, 11);
        // Rerun EMTS5 standalone with the member's seed: must match the
        // member's outcome exactly (independence of the portfolio wrapper).
        let mut cfg = EmtsConfig::emts5();
        cfg.parallel_evaluation = false;
        let standalone = Emts::new(cfg).run(&g, &m, 11);
        assert_eq!(
            standalone.best_makespan,
            result.members[0].result.best_makespan
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_panics() {
        let (g, m) = setup();
        let _ = run_portfolio(&[], &g, &m, 1);
    }
}
