//! Island-model parallel EMTS (extension).
//!
//! The classic coarse-grained parallel evolution strategy: several
//! *islands* evolve independent populations on their own threads and
//! periodically exchange their best individuals (ring migration). For
//! EMTS this buys two things the paper's single population cannot:
//!
//! * **diversity** — each island gets a different RNG stream and therefore
//!   explores a different neighbourhood of the heuristic seeds,
//! * **hardware parallelism across the run**, complementing the per-
//!   generation parallel fitness evaluation of [`crate::parallel`].
//!
//! Implementation: each epoch runs `generations_per_epoch` generations per
//! island (using the ordinary [`Emts`] machinery on warm-started
//! populations via allocation injection), then the best individual of each
//! island replaces the worst of its ring successor.

use crate::config::EmtsConfig;
use crate::ea::Emts;
use exec_model::TimeMatrix;
use ptg::Ptg;
use sched::{Allocation, ListScheduler, Mapper};
use std::time::{Duration, Instant};

/// Island-model configuration.
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// Per-island ES parameters.
    pub base: EmtsConfig,
    /// Number of islands (threads).
    pub islands: usize,
    /// Migration epochs: the base config's `generations` are split into
    /// this many epochs with a ring migration after each.
    pub epochs: usize,
}

impl Default for IslandConfig {
    fn default() -> Self {
        IslandConfig {
            base: EmtsConfig::emts5(),
            islands: 4,
            epochs: 2,
        }
    }
}

/// Result of an island run.
#[derive(Debug, Clone)]
pub struct IslandResult {
    /// Best allocation across all islands.
    pub best: Allocation,
    /// Its makespan.
    pub best_makespan: f64,
    /// Best makespan per island (post-run), in island order.
    pub island_makespans: Vec<f64>,
    /// Total fitness evaluations across all islands.
    pub evaluations: usize,
    /// Wall-clock time.
    pub wall_time: Duration,
}

/// The island-model scheduler.
#[derive(Debug, Clone, Default)]
pub struct IslandEmts {
    cfg: IslandConfig,
}

impl IslandEmts {
    /// Creates an island EMTS.
    pub fn new(cfg: IslandConfig) -> Self {
        cfg.base.validate();
        assert!(cfg.islands >= 1, "need at least one island");
        assert!(cfg.epochs >= 1, "need at least one epoch");
        IslandEmts { cfg }
    }

    /// Runs the island model; deterministic in `seed` (island `i` uses
    /// stream `seed·islands + i + epoch` per epoch).
    pub fn run(&self, g: &Ptg, matrix: &TimeMatrix, seed: u64) -> IslandResult {
        // lint:allow(src-timing) -- results report elapsed wall time.
        let start = Instant::now();
        let cfg = &self.cfg;
        // Per-epoch generation budget (≥ 1 each).
        let gens = (cfg.base.generations / cfg.epochs).max(1);
        let epoch_cfg = EmtsConfig {
            generations: gens,
            parallel_evaluation: false, // islands already use the cores
            ..cfg.base.clone()
        };

        // Island state: the current best allocation carried between epochs
        // (None in epoch 0 → islands start from the heuristic seeds).
        let mut carried: Vec<Option<Allocation>> = vec![None; cfg.islands];
        let mut makespans = vec![f64::INFINITY; cfg.islands];
        let mut evaluations = 0usize;

        for epoch in 0..cfg.epochs {
            let mut results: Vec<Option<(Allocation, f64, usize)>> = Vec::new();
            results.resize_with(cfg.islands, || None);
            std::thread::scope(|scope| {
                for (i, (slot, warm)) in results.iter_mut().zip(&carried).enumerate() {
                    let epoch_cfg = &epoch_cfg;
                    scope.spawn(move || {
                        // Warm start: inject the carried individual by
                        // running EMTS whose first mutation targets it via
                        // the ordinary seeding, then take the better of the
                        // EA result and the carried allocation.
                        let emts = Emts::new(epoch_cfg.clone());
                        let stream = seed
                            .wrapping_mul(cfg.islands as u64)
                            .wrapping_add(i as u64)
                            .wrapping_add((epoch as u64) << 32);
                        let r = emts.run(g, matrix, stream);
                        let (alloc, ms) = match warm {
                            Some(w) => {
                                let wm = ListScheduler.makespan(g, matrix, w);
                                if wm < r.best_makespan {
                                    (w.clone(), wm)
                                } else {
                                    (r.best.clone(), r.best_makespan)
                                }
                            }
                            None => (r.best.clone(), r.best_makespan),
                        };
                        *slot = Some((alloc, ms, r.evaluations));
                    });
                }
            });
            let epoch_results: Vec<(Allocation, f64, usize)> = results
                .into_iter()
                .map(|r| r.expect("every island completed"))
                .collect();
            for (i, (alloc, ms, evals)) in epoch_results.iter().enumerate() {
                carried[i] = Some(alloc.clone());
                makespans[i] = *ms;
                evaluations += evals;
            }
            // Ring migration: island i's champion also seeds island i+1.
            if cfg.islands > 1 && epoch + 1 < cfg.epochs {
                let champions: Vec<(Allocation, f64)> = epoch_results
                    .iter()
                    .map(|(a, m, _)| (a.clone(), *m))
                    .collect();
                for i in 0..cfg.islands {
                    let donor = &champions[(i + cfg.islands - 1) % cfg.islands];
                    if donor.1 < makespans[i] {
                        carried[i] = Some(donor.0.clone());
                        makespans[i] = donor.1;
                    }
                }
            }
        }

        let (winner, &best_makespan) = makespans
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite makespans"))
            .expect("at least one island");
        IslandResult {
            best: carried[winner].clone().expect("islands ran"),
            best_makespan,
            island_makespans: makespans,
            evaluations,
            wall_time: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::SyntheticModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

    fn setup() -> (Ptg, TimeMatrix) {
        let g = random_ptg(
            &DaggenParams {
                n: 50,
                width: 0.5,
                regularity: 0.5,
                density: 0.3,
                jump: 1,
            },
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(8),
        );
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 60);
        (g, m)
    }

    #[test]
    fn islands_never_lose_to_a_single_island_seeded_run() {
        let (g, m) = setup();
        let result = IslandEmts::default().run(&g, &m, 1);
        // Every island starts from the heuristic seeds, so the overall best
        // cannot exceed the seed makespan.
        let solo = Emts::new(EmtsConfig {
            parallel_evaluation: false,
            ..EmtsConfig::emts5()
        })
        .run(&g, &m, 4); // island 0's stream of the default config (seed 1 × 4 islands)
        assert!(result.best_makespan <= solo.seed_makespan + 1e-9);
        assert!(result.best.is_valid_for(&g, 60));
    }

    #[test]
    fn reports_one_makespan_per_island() {
        let (g, m) = setup();
        let cfg = IslandConfig {
            islands: 3,
            epochs: 2,
            ..IslandConfig::default()
        };
        let result = IslandEmts::new(cfg).run(&g, &m, 2);
        assert_eq!(result.island_makespans.len(), 3);
        let min = result
            .island_makespans
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        assert_eq!(min, result.best_makespan);
    }

    #[test]
    fn runs_are_deterministic() {
        let (g, m) = setup();
        let a = IslandEmts::default().run(&g, &m, 5);
        let b = IslandEmts::default().run(&g, &m, 5);
        assert_eq!(a.best_makespan, b.best_makespan);
        assert_eq!(a.island_makespans, b.island_makespans);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn migration_spreads_the_champion() {
        // After migration every island carries something at least as good
        // as the previous epoch's global champion, so the spread of final
        // island makespans must not exceed the single-epoch spread wildly.
        let (g, m) = setup();
        let result = IslandEmts::new(IslandConfig {
            islands: 4,
            epochs: 3,
            ..IslandConfig::default()
        })
        .run(&g, &m, 7);
        let min = result
            .island_makespans
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        let max = result
            .island_makespans
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(
            max / min < 1.5,
            "islands diverged: {:?}",
            result.island_makespans
        );
    }

    #[test]
    fn single_island_single_epoch_degenerates_to_plain_emts() {
        let (g, m) = setup();
        let cfg = IslandConfig {
            islands: 1,
            epochs: 1,
            base: EmtsConfig {
                parallel_evaluation: false,
                ..EmtsConfig::emts5()
            },
        };
        let island = IslandEmts::new(cfg.clone()).run(&g, &m, 3);
        let stream = 3u64.wrapping_mul(1).wrapping_add(0);
        let plain = Emts::new(EmtsConfig {
            parallel_evaluation: false,
            ..EmtsConfig::emts5()
        })
        .run(&g, &m, stream);
        assert_eq!(island.best_makespan, plain.best_makespan);
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_panics() {
        let _ = IslandEmts::new(IslandConfig {
            islands: 0,
            ..IslandConfig::default()
        });
    }
}
