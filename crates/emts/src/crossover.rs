//! Single-point crossover on the allocation vector (extension).
//!
//! The paper's ES is mutation-only (§III-C): "no crossover". Its
//! conclusions nevertheless ask for comparisons with "different
//! evolutionary methods", and the classic GA move on a flat integer
//! vector is single-point recombination — the child inherits the first
//! `cut` alleles from one parent and the rest from another. This module
//! provides exactly that as an *opt-in* variant
//! ([`crate::EmtsConfig::crossover_prob`], 0.0 by default): with the
//! probability gate closed, no RNG is drawn and the run is bit-identical
//! to the paper's pure ES.

use rand::Rng;
use sched::Allocation;

/// Recombines `p` and `q` at one uniformly random cut point, returning the
/// child together with the alleles where it differs from `p`.
///
/// The child is `p[..cut] ++ q[cut..]` with `cut ∈ [1, V)`, so both parents
/// always contribute at least one allele (for `V < 2` there is no interior
/// cut and the child is a plain copy of `p`). The returned change list is
/// exactly what the incremental evaluator needs on top of `p`'s recorded
/// schedule; alleles where the parents agree are omitted, so two identical
/// parents yield an empty list and the engine's no-op skip applies.
///
/// Deterministic in the RNG state: one `gen_range` draw, always.
pub fn single_point<R: Rng + ?Sized>(
    p: &Allocation,
    q: &Allocation,
    rng: &mut R,
) -> (Allocation, Vec<ptg::TaskId>) {
    assert_eq!(p.len(), q.len(), "parents must allocate the same PTG");
    let v = p.len();
    let mut child = p.clone();
    let mut changed = Vec::new();
    if v < 2 {
        return (child, changed);
    }
    let cut = rng.gen_range(1..v);
    for i in cut..v {
        let t = ptg::TaskId::from_index(i);
        let allele = q.of(t);
        if child.of(t) != allele {
            child.set(t, allele);
            changed.push(t);
        }
    }
    (child, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn child_is_a_prefix_of_p_and_a_suffix_of_q() {
        let p = Allocation::uniform(12, 3);
        let q = Allocation::uniform(12, 9);
        let (child, changed) = single_point(&p, &q, &mut rng(1));
        let genes = child.as_slice();
        let cut = genes.iter().position(|&s| s == 9).expect("suffix from q");
        assert!((1..12).contains(&cut));
        assert!(genes[..cut].iter().all(|&s| s == 3));
        assert!(genes[cut..].iter().all(|&s| s == 9));
        let mut reported: Vec<usize> = changed.iter().map(|t| t.index()).collect();
        reported.sort_unstable();
        assert_eq!(reported, (cut..12).collect::<Vec<_>>());
    }

    #[test]
    fn change_list_is_exactly_the_differing_alleles() {
        let mut p = Allocation::uniform(10, 4);
        let mut q = Allocation::uniform(10, 4);
        // Parents agree everywhere except alleles 2 and 8.
        p.set(ptg::TaskId::from_index(2), 7);
        q.set(ptg::TaskId::from_index(8), 11);
        for seed in 0..20 {
            let (child, changed) = single_point(&p, &q, &mut rng(seed));
            let diff: Vec<usize> = (0..10)
                .filter(|&i| p.as_slice()[i] != child.as_slice()[i])
                .collect();
            let mut reported: Vec<usize> = changed.iter().map(|t| t.index()).collect();
            reported.sort_unstable();
            assert_eq!(reported, diff, "seed {seed}");
        }
    }

    #[test]
    fn identical_parents_yield_a_noop_child() {
        let p = Allocation::uniform(8, 5);
        let (child, changed) = single_point(&p, &p.clone(), &mut rng(3));
        assert_eq!(child.as_slice(), p.as_slice());
        assert!(changed.is_empty(), "no-op crossover must report no change");
    }

    #[test]
    fn crossover_is_seed_deterministic() {
        let p = Allocation::uniform(30, 2);
        let q = Allocation::uniform(30, 17);
        let (a, ca) = single_point(&p, &q, &mut rng(9));
        let (b, cb) = single_point(&p, &q, &mut rng(9));
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(ca, cb);
    }

    #[test]
    fn single_task_graph_degenerates_to_a_copy() {
        let p = Allocation::uniform(1, 6);
        let q = Allocation::uniform(1, 2);
        let mut r = rng(4);
        let (child, changed) = single_point(&p, &q, &mut r);
        assert_eq!(child.as_slice(), &[6]);
        assert!(changed.is_empty());
        // Degenerate case draws no RNG at all: the next draw matches a
        // fresh stream from the same seed.
        assert_eq!(
            rand::Rng::gen::<u64>(&mut r),
            rand::Rng::gen::<u64>(&mut rng(4))
        );
    }

    #[test]
    #[should_panic(expected = "same PTG")]
    fn mismatched_parents_panic() {
        let p = Allocation::uniform(4, 1);
        let q = Allocation::uniform(5, 1);
        let _ = single_point(&p, &q, &mut rng(0));
    }
}
