//! EMTS configuration and the paper's two presets.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Tunable parameters of the EMTS evolution strategy.
///
/// Defaults follow the paper's experimental setup (§V): `Δ = 0.9`,
/// `f_m = 0.33`, shrink probability `a = 0.2`, `σ₁ = σ₂ = 5`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmtsConfig {
    /// Number of parents µ kept each generation.
    pub mu: usize,
    /// Number of offspring λ generated per generation.
    pub lambda: usize,
    /// Number of generations U.
    pub generations: usize,
    /// Initial fraction of alleles mutated, `f_m ∈ (0, 1]` (paper: 0.33).
    pub fm: f64,
    /// Criticality threshold Δ of the seeding heuristic (paper: 0.9).
    pub delta: f64,
    /// Probability that a mutation *shrinks* an allocation (paper: `a = 0.2`;
    /// see DESIGN.md on the sign convention in the paper's Eq. 1).
    pub shrink_prob: f64,
    /// Standard deviation σ₁ of the shrink magnitude (paper: 5).
    pub sigma_shrink: f64,
    /// Standard deviation σ₂ of the stretch magnitude (paper: 5).
    pub sigma_stretch: f64,
    /// Seed the population with MCPA / HCPA / Δ-critical results (paper:
    /// always on; the ablation benches switch it off).
    pub heuristic_seeds: bool,
    /// Evaluate offspring fitness on multiple threads. Does not affect
    /// results — mutation happens on the main thread, only the (pure)
    /// fitness evaluations run concurrently.
    pub parallel_evaluation: bool,
    /// Optional wall-clock budget; the loop stops after the first
    /// generation that exceeds it ("we focus on a given time constraint",
    /// §II-C).
    pub time_budget: Option<Duration>,
    /// Use comma-selection (best µ of offspring only) instead of the
    /// paper's plus-selection. Only for the selection ablation; plus is the
    /// paper's choice and the default.
    pub comma_selection: bool,
    /// Enable the rejection strategy from the paper's future-work section
    /// (§VI): abort an offspring's mapping as soon as its partial schedule
    /// provably exceeds the cutoff `rejection_slack × best-so-far` — the
    /// whole schedule of hopeless individuals is never constructed. Off by
    /// default (the paper's evaluated configuration).
    pub rejection: bool,
    /// Cutoff multiplier for the rejection strategy (≥ 1). Offspring worse
    /// than `slack × best` can never survive plus-selection when the
    /// population is already full of better individuals, so 1.0 is lossless
    /// for the *best* individual; slightly larger values also preserve
    /// population diversity.
    pub rejection_slack: f64,
    /// Draw mutation magnitudes from `U{1..=2σ}` instead of the asymmetric
    /// folded normal. Only for the mutation-operator ablation.
    pub uniform_mutation: bool,
    /// Route pooled batch evaluation through the two-tier fitness
    /// pipeline: a cheap tier-1 surrogate interval per offspring, exact
    /// evaluation only when the interval cannot prove rejection at the
    /// current cutoff (see `sched::surrogate`). Never changes any result
    /// visible to selection — screening skips exactly the offspring the
    /// bounded exact evaluation would reject. No effect on the
    /// serial/delta path, and inert under comma-selection or a disabled
    /// rejection strategy (both leave the cutoff infinite for most of the
    /// run, where nothing screens). Off by default.
    #[serde(default)]
    pub two_tier: bool,
    /// Probability that an offspring is produced by single-point crossover
    /// of two distinct parents' allocation vectors (GA-style, after the
    /// GA/LSH literature) before mutation. 0.0 — the paper's pure-ES
    /// configuration — disables recombination entirely and is the default.
    #[serde(default)]
    pub crossover_prob: f64,
    /// Adapt both σ parameters online with Rechenberg's 1/5 success rule
    /// (the classic step-size control from the evolution-strategy
    /// literature the paper cites): after each generation, grow σ when more
    /// than a fifth of the offspring improved on the generation-start best,
    /// shrink it otherwise. Off by default (the paper uses fixed σ = 5).
    pub adaptive_sigma: bool,
}

impl EmtsConfig {
    /// EMTS5: a (5+25)-ES over 5 generations (§V).
    pub fn emts5() -> Self {
        EmtsConfig {
            mu: 5,
            lambda: 25,
            generations: 5,
            ..EmtsConfig::default()
        }
    }

    /// EMTS10: a (10+100)-ES over 10 generations (§V).
    pub fn emts10() -> Self {
        EmtsConfig {
            mu: 10,
            lambda: 100,
            generations: 10,
            ..EmtsConfig::default()
        }
    }

    /// Panics unless all parameters are in range.
    pub fn validate(&self) {
        assert!(self.mu >= 1, "mu must be at least 1");
        assert!(self.lambda >= 1, "lambda must be at least 1");
        assert!(self.generations >= 1, "need at least one generation");
        assert!(self.fm > 0.0 && self.fm <= 1.0, "fm must lie in (0, 1]");
        assert!(
            (0.0..=1.0).contains(&self.delta),
            "delta must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.shrink_prob),
            "shrink_prob must lie in [0, 1]"
        );
        assert!(self.sigma_shrink > 0.0, "sigma_shrink must be positive");
        assert!(self.sigma_stretch > 0.0, "sigma_stretch must be positive");
        assert!(
            self.rejection_slack >= 1.0,
            "rejection_slack below 1.0 could reject improving offspring"
        );
        assert!(
            (0.0..=1.0).contains(&self.crossover_prob),
            "crossover_prob must lie in [0, 1]"
        );
    }
}

impl Default for EmtsConfig {
    fn default() -> Self {
        EmtsConfig {
            mu: 5,
            lambda: 25,
            generations: 5,
            fm: 0.33,
            delta: 0.9,
            shrink_prob: 0.2,
            sigma_shrink: 5.0,
            sigma_stretch: 5.0,
            heuristic_seeds: true,
            parallel_evaluation: true,
            time_budget: None,
            comma_selection: false,
            rejection: false,
            rejection_slack: 1.5,
            two_tier: false,
            crossover_prob: 0.0,
            uniform_mutation: false,
            adaptive_sigma: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let e5 = EmtsConfig::emts5();
        assert_eq!((e5.mu, e5.lambda, e5.generations), (5, 25, 5));
        let e10 = EmtsConfig::emts10();
        assert_eq!((e10.mu, e10.lambda, e10.generations), (10, 100, 10));
        for c in [e5, e10] {
            assert_eq!(c.fm, 0.33);
            assert_eq!(c.delta, 0.9);
            assert_eq!(c.shrink_prob, 0.2);
            assert_eq!(c.sigma_shrink, 5.0);
            assert!(c.heuristic_seeds);
            assert!(!c.comma_selection);
            c.validate();
        }
    }

    #[test]
    #[should_panic(expected = "fm must lie in")]
    fn invalid_fm_fails_validation() {
        EmtsConfig {
            fm: 0.0,
            ..EmtsConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "mu must be")]
    fn zero_mu_fails_validation() {
        EmtsConfig {
            mu: 0,
            ..EmtsConfig::default()
        }
        .validate();
    }
}
