//! EMTS — Evolutionary Moldable Task Scheduling.
//!
//! The primary contribution of Hunold & Lepping (CLUSTER 2011): a
//! (µ+λ) evolution strategy over the vector of per-task processor
//! allocations of a parallel task graph. The fitness of an individual is the
//! makespan produced by the paper's list-scheduling mapping function
//! ([`sched::ListScheduler`]), so EMTS is a *meta-heuristic* that works with
//! any execution-time model — monotonic or not.
//!
//! Key design points, all reproduced here:
//!
//! * **Seeded start** (§III-B): the initial population contains the
//!   allocations computed by MCPA, HCPA and a Δ-critical processor-sharing
//!   heuristic, which "significantly reduces the time to find efficient
//!   schedules".
//! * **Mutation-only reproduction** (§III-C): no crossover; the number of
//!   mutated alleles shrinks linearly over generations,
//!   `m(u) = (1 − u/U) · f_m · V`.
//! * **Asymmetric integer mutation operator** (§III-D): an allocation
//!   changes by `±(⌊|N(0, σ)|⌋ + 1)` processors, shrinking with probability
//!   `a` and stretching with probability `1 − a` (`a = 0.2`, `σ = 5` in the
//!   paper).
//! * **Plus-selection** (§V): the best µ of parents ∪ offspring survive, so
//!   the population never worsens — EMTS can only improve on its seeds.
//! * The paper evaluates **EMTS5**, a (5+25)-ES run for 5 generations, and
//!   **EMTS10**, a (10+100)-ES run for 10 generations
//!   ([`EmtsConfig::emts5`] / [`EmtsConfig::emts10`]).
//!
//! ```
//! use emts::{Emts, EmtsConfig};
//! use exec_model::{SyntheticModel, TimeMatrix};
//! use ptg::PtgBuilder;
//!
//! let mut b = PtgBuilder::new();
//! let a = b.add_task("a", 20e9, 0.05);
//! let c = b.add_task("c", 20e9, 0.05);
//! b.add_edge(a, c).unwrap();
//! let g = b.build().unwrap();
//!
//! let matrix = TimeMatrix::compute(&g, &SyntheticModel::default(), 4.3e9, 20);
//! let result = Emts::new(EmtsConfig::emts5()).run(&g, &matrix, 42);
//! assert!(result.best_makespan <= result.seed_makespan); // plus-selection
//! ```

pub mod config;
pub mod crossover;
pub mod ea;
pub mod grid;
pub mod individual;
pub mod island;
pub mod mutation;
pub mod parallel;
pub mod portfolio;
pub mod seeds;
pub mod trace;

pub use config::EmtsConfig;
pub use crossover::single_point;
pub use ea::{Emts, EmtsResult};
pub use grid::{GridEmts, GridEmtsConfig, GridEmtsResult};
pub use individual::Individual;
pub use island::{IslandConfig, IslandEmts, IslandResult};
pub use mutation::MutationOperator;
pub use parallel::{EvalPool, FitnessEngine, PoolError};
pub use portfolio::{run_portfolio, PortfolioResult};
pub use trace::{ConvergenceTrace, GenerationStats};
