//! Per-generation statistics for convergence analysis.

use serde::{Deserialize, Serialize};

/// Fitness summary of one generation's surviving population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// 0-based generation index (`usize::MAX` marks the seed population;
    /// use [`GenerationStats::is_seed`]).
    pub generation: usize,
    /// Best (smallest) makespan in the population.
    pub best: f64,
    /// Mean makespan.
    pub mean: f64,
    /// Worst (largest) makespan.
    pub worst: f64,
    /// Number of alleles mutated per offspring this generation (0 for the
    /// seed population).
    pub mutated_alleles: usize,
}

impl GenerationStats {
    /// Marker value for the pre-evolution seed population.
    pub const SEED: usize = usize::MAX;

    /// Summarizes a population's fitness values.
    pub fn from_fitness(generation: usize, fitness: &[f64], mutated_alleles: usize) -> Self {
        assert!(!fitness.is_empty(), "empty population");
        let best = fitness.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = fitness.iter().copied().fold(0.0f64, f64::max);
        let mean = fitness.iter().sum::<f64>() / fitness.len() as f64;
        GenerationStats {
            generation,
            best,
            mean,
            worst,
            mutated_alleles,
        }
    }

    /// True for the entry describing the seed population.
    pub fn is_seed(&self) -> bool {
        self.generation == Self::SEED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = GenerationStats::from_fitness(2, &[3.0, 1.0, 2.0], 7);
        assert_eq!(s.best, 1.0);
        assert_eq!(s.worst, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.generation, 2);
        assert_eq!(s.mutated_alleles, 7);
        assert!(!s.is_seed());
    }

    #[test]
    fn seed_marker() {
        let s = GenerationStats::from_fitness(GenerationStats::SEED, &[1.0], 0);
        assert!(s.is_seed());
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let _ = GenerationStats::from_fitness(0, &[], 0);
    }
}
