//! Per-generation statistics for convergence analysis.

use serde::{Deserialize, Serialize};

/// Fitness summary of one generation's surviving population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// 0-based generation index (`usize::MAX` marks the seed population;
    /// use [`GenerationStats::is_seed`]).
    pub generation: usize,
    /// Best (smallest) makespan in the population.
    pub best: f64,
    /// Mean makespan over the *finite* fitness values.
    pub mean: f64,
    /// Worst (largest) makespan among the *finite* fitness values.
    pub worst: f64,
    /// Fitness values that were non-finite — individuals surfaced as
    /// `f64::INFINITY` by the rejection cutoff. They are excluded from
    /// `mean`/`worst` (one infinity would otherwise poison both).
    pub rejected: usize,
    /// Number of alleles mutated per offspring this generation (0 for the
    /// seed population).
    pub mutated_alleles: usize,
    /// Fitness requests this generation answered from the memo cache
    /// (includes no-op skips and within-generation rejection replays).
    #[serde(default)]
    pub cache_hits: usize,
    /// Fitness requests this generation that ran the mapper.
    #[serde(default)]
    pub cache_misses: usize,
    /// Misses this generation served by the incremental (delta) path
    /// (0 on the batch/pool path).
    #[serde(default)]
    pub delta_evals: usize,
    /// Placement events this generation replayed from parent prefix
    /// checkpoints instead of being simulated (0 on the batch/pool path).
    #[serde(default)]
    pub prefix_reuse_events: u64,
    /// Offspring this generation scored by the tier-1 surrogate (0 unless
    /// the two-tier pipeline is active).
    #[serde(default)]
    pub surrogate_evals: usize,
    /// Offspring this generation whose exact evaluation was skipped
    /// because the surrogate interval proved rejection.
    #[serde(default)]
    pub exact_skipped: usize,
    /// Offspring this generation whose surrogate interval straddled the
    /// cutoff, forcing the exact-evaluation fallback to decide survival.
    #[serde(default)]
    pub ambiguous_fallbacks: usize,
    /// Mean surrogate interval width (`hi - lo`) over this generation's
    /// finite intervals, in makespan seconds (0 when none were produced).
    #[serde(default)]
    pub surrogate_interval_width: f64,
}

impl GenerationStats {
    /// Marker value for the pre-evolution seed population.
    pub const SEED: usize = usize::MAX;

    /// Summarizes a population's fitness values.
    ///
    /// Non-finite values (rejected/cutoff individuals surfaced as
    /// `f64::INFINITY`) are counted in `rejected` and excluded from the
    /// summary statistics. If *every* value is non-finite the statistics
    /// degenerate to `f64::INFINITY` (best) and `0.0` (mean/worst).
    pub fn from_fitness(generation: usize, fitness: &[f64], mutated_alleles: usize) -> Self {
        assert!(!fitness.is_empty(), "empty population");
        let mut best = f64::INFINITY;
        let mut worst = 0.0f64;
        let mut sum = 0.0f64;
        let mut finite = 0usize;
        for &f in fitness {
            if f.is_finite() {
                finite += 1;
                sum += f;
                best = best.min(f);
                worst = worst.max(f);
            }
        }
        let mean = if finite == 0 {
            0.0
        } else {
            sum / finite as f64
        };
        GenerationStats {
            generation,
            best,
            mean,
            worst,
            rejected: fitness.len() - finite,
            mutated_alleles,
            cache_hits: 0,
            cache_misses: 0,
            delta_evals: 0,
            prefix_reuse_events: 0,
            surrogate_evals: 0,
            exact_skipped: 0,
            ambiguous_fallbacks: 0,
            surrogate_interval_width: 0.0,
        }
    }

    /// True for the entry describing the seed population.
    pub fn is_seed(&self) -> bool {
        self.generation == Self::SEED
    }

    /// The trajectory-defining fields: fitness summary and mutation
    /// strength, with float payloads compared bit-for-bit. Excludes the
    /// per-generation engine counters, which legitimately differ between
    /// the delta and pool evaluation paths even when the search
    /// trajectories coincide exactly.
    pub fn fitness_key(&self) -> (usize, u64, u64, u64, usize, usize) {
        (
            self.generation,
            self.best.to_bits(),
            self.mean.to_bits(),
            self.worst.to_bits(),
            self.rejected,
            self.mutated_alleles,
        )
    }
}

/// The full convergence record of one run: per-generation statistics plus
/// the fitness engine's memo-cache counters.
///
/// Derefs to the generation vector, so existing `trace[i]` / `trace.iter()`
/// call sites keep working.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// One entry per generation; the first describes the seed population.
    pub generations: Vec<GenerationStats>,
    /// Fitness requests answered from the memo cache.
    pub cache_hits: usize,
    /// Fitness requests that ran the mapper.
    pub cache_misses: usize,
    /// Misses evaluated through the incremental (delta) path rather than a
    /// full mapper pass (0 when the run used batch evaluation).
    #[serde(default)]
    pub delta_evals: usize,
    /// Delta evaluations rejected by the critical-path/area lower-bound
    /// prescreen before any scheduling.
    #[serde(default)]
    pub lb_pruned: usize,
    /// Placement events replayed from parent prefix checkpoints instead of
    /// being simulated.
    #[serde(default)]
    pub prefix_reuse_events: u64,
    /// Offspring skipped entirely because their mutation was a clamped
    /// no-op (counted in `cache_hits` too).
    #[serde(default)]
    pub noop_skips: usize,
    /// Worker evaluations that panicked and were contained by the pool
    /// (the affected items were re-evaluated on the caller — see
    /// `serial_fallbacks`).
    #[serde(default)]
    pub worker_panics: u64,
    /// Worker incarnations the pool respawned after an uncontained panic.
    #[serde(default)]
    pub pool_respawns: u64,
    /// Batch items the caller re-evaluated serially after the pool failed
    /// to produce them.
    #[serde(default)]
    pub serial_fallbacks: u64,
    /// Offspring scored by the tier-1 surrogate over the whole run.
    #[serde(default)]
    pub surrogate_evals: usize,
    /// Exact evaluations the surrogate screen made unnecessary.
    #[serde(default)]
    pub exact_skipped: usize,
    /// Surrogate intervals that straddled the cutoff and fell back to the
    /// exact tier for the survival decision.
    #[serde(default)]
    pub ambiguous_fallbacks: usize,
}

impl ConvergenceTrace {
    /// Empty trace with room for `capacity` generations.
    pub fn with_capacity(capacity: usize) -> Self {
        ConvergenceTrace {
            generations: Vec::with_capacity(capacity),
            ..ConvergenceTrace::default()
        }
    }

    /// Fraction of fitness requests served by the cache (0 when none were
    /// made).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::ops::Deref for ConvergenceTrace {
    type Target = Vec<GenerationStats>;
    fn deref(&self) -> &Self::Target {
        &self.generations
    }
}

impl std::ops::DerefMut for ConvergenceTrace {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.generations
    }
}

impl<'a> IntoIterator for &'a ConvergenceTrace {
    type Item = &'a GenerationStats;
    type IntoIter = std::slice::Iter<'a, GenerationStats>;
    fn into_iter(self) -> Self::IntoIter {
        self.generations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_derefs_to_generations() {
        let mut trace = ConvergenceTrace::with_capacity(2);
        trace.push(GenerationStats::from_fitness(
            GenerationStats::SEED,
            &[2.0],
            0,
        ));
        trace.push(GenerationStats::from_fitness(0, &[1.0], 3));
        assert_eq!(trace.len(), 2);
        assert!(trace[0].is_seed());
        assert_eq!(
            trace.iter().map(|t| t.best).fold(f64::INFINITY, f64::min),
            1.0
        );
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut trace = ConvergenceTrace::default();
        assert_eq!(trace.cache_hit_rate(), 0.0);
        trace.cache_hits = 3;
        trace.cache_misses = 1;
        assert_eq!(trace.cache_hit_rate(), 0.75);
    }

    #[test]
    fn summary_statistics() {
        let s = GenerationStats::from_fitness(2, &[3.0, 1.0, 2.0], 7);
        assert_eq!(s.best, 1.0);
        assert_eq!(s.worst, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.generation, 2);
        assert_eq!(s.mutated_alleles, 7);
        assert!(!s.is_seed());
    }

    #[test]
    fn non_finite_fitness_is_counted_not_averaged() {
        // Rejected individuals surface as +inf; they must not poison the
        // mean/worst of the survivors.
        let s = GenerationStats::from_fitness(1, &[4.0, f64::INFINITY, 2.0, f64::NAN], 3);
        assert_eq!(s.best, 2.0);
        assert_eq!(s.worst, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.rejected, 2);
    }

    #[test]
    fn all_rejected_population_degenerates_cleanly() {
        let s = GenerationStats::from_fitness(0, &[f64::INFINITY, f64::INFINITY], 1);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.best, f64::INFINITY);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.worst, 0.0);
    }

    #[test]
    fn seed_marker() {
        let s = GenerationStats::from_fitness(GenerationStats::SEED, &[1.0], 0);
        assert!(s.is_seed());
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let _ = GenerationStats::from_fitness(0, &[], 0);
    }
}
