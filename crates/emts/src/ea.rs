//! The EMTS evolution loop (§III).

use crate::config::EmtsConfig;
use crate::crossover::single_point;
use crate::individual::{select_best, Individual};
use crate::mutation::{mutation_count, MutationOperator};
use crate::parallel::{EvalPool, FitnessEngine};
use crate::seeds::initial_population;
use crate::trace::{ConvergenceTrace, GenerationStats};
use exec_model::TimeMatrix;
use obs::Recorder;
use ptg::Ptg;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, ListScheduler, Mapper, Surrogate};
use std::time::{Duration, Instant};

/// The EMTS scheduler.
#[derive(Debug, Clone)]
pub struct Emts {
    cfg: EmtsConfig,
    op: MutationOperator,
}

/// Outcome of one EMTS run.
#[derive(Debug, Clone)]
pub struct EmtsResult {
    /// The best allocation found.
    pub best: Allocation,
    /// Makespan of `best` under the list-scheduling mapper.
    pub best_makespan: f64,
    /// Best makespan among the *seed* individuals (what the heuristics
    /// alone achieve); plus-selection guarantees
    /// `best_makespan ≤ seed_makespan`.
    pub seed_makespan: f64,
    /// Which seed/origin the best individual descended from at the moment
    /// of final selection (`"mutant"` once mutated).
    pub best_origin: &'static str,
    /// Per-generation fitness trace (first entry is the seed population),
    /// including the fitness engine's memo-cache counters.
    pub trace: ConvergenceTrace,
    /// Total fitness evaluations performed (seeds + offspring).
    pub evaluations: usize,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
    /// Generations actually executed (< configured when the time budget
    /// cuts the run short).
    pub generations_run: usize,
    /// Offspring whose mapping was aborted early by the rejection strategy
    /// (always 0 when `rejection` is off).
    pub rejected: usize,
    /// Offspring dropped by the (µ+λ) survival screen — their makespan
    /// provably exceeded the worst current parent, so plus-selection could
    /// never keep them. Counted separately from `rejected` (which tracks
    /// the paper's §VI cutoff) and always 0 under comma-selection or when
    /// the rejection strategy already owns the cutoff.
    pub pruned: usize,
}

impl EmtsResult {
    /// Relative improvement over the seeds: `seed_makespan / best_makespan`
    /// (≥ 1 by construction).
    pub fn improvement(&self) -> f64 {
        self.seed_makespan / self.best_makespan
    }
}

impl Emts {
    /// Creates an EMTS instance from a validated configuration.
    pub fn new(cfg: EmtsConfig) -> Self {
        cfg.validate();
        let op = MutationOperator {
            shrink_prob: cfg.shrink_prob,
            sigma_shrink: cfg.sigma_shrink,
            sigma_stretch: cfg.sigma_stretch,
            uniform: cfg.uniform_mutation,
        };
        Emts { cfg, op }
    }

    /// The active configuration.
    pub fn config(&self) -> &EmtsConfig {
        &self.cfg
    }

    /// Runs the evolution strategy on `g` for the platform captured in
    /// `matrix`, deterministically derived from `seed`.
    ///
    /// Fitness goes through the evaluation engine: a worker pool spawned
    /// once for the whole run (when `parallel_evaluation` is on) behind a
    /// memo cache — see [`crate::parallel`]. Neither changes any result.
    pub fn run(&self, g: &Ptg, matrix: &TimeMatrix, seed: u64) -> EmtsResult {
        EvalPool::with(g, matrix, self.cfg.parallel_evaluation, |pool| {
            self.run_with_pool(g, matrix, seed, pool, None, &[])
        })
    }

    /// Anytime/budgeted mode for the online control loop: like
    /// [`Self::run_recorded`], but the generation loop additionally stops
    /// at an absolute wall-clock `deadline` (checked at generation
    /// boundaries; best-so-far is returned), and `warm` allocations —
    /// typically the incumbent plan of the previous decision epoch — are
    /// merged into the seed population before evolution starts.
    ///
    /// Warm individuals that duplicate an existing seed are skipped, and
    /// with `deadline = None` and `warm = &[]` this is bit-identical to
    /// [`Self::run_recorded`] — the default path consumes the exact same
    /// RNG stream and performs no extra selection.
    pub fn run_deadline<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        seed: u64,
        deadline: Option<Instant>,
        warm: &[Allocation],
        rec: &R,
    ) -> EmtsResult {
        EvalPool::with_recorder(g, matrix, self.cfg.parallel_evaluation, rec, |pool| {
            self.run_with_pool(g, matrix, seed, pool, deadline, warm)
        })
    }

    /// [`Self::run`] with telemetry: the whole run is wrapped in an `ea`
    /// span with per-generation `seed` / `mutate` / `evaluate` / `select`
    /// child spans, the engine's memo counters and the pool's latency
    /// histograms flow into `rec`, and the outcome is summarized into the
    /// `emts.*` counters and gauges. Results are bit-identical to
    /// [`Self::run`] — telemetry never touches the RNG or the search.
    pub fn run_recorded<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        seed: u64,
        rec: &R,
    ) -> EmtsResult {
        EvalPool::with_recorder(g, matrix, self.cfg.parallel_evaluation, rec, |pool| {
            self.run_with_pool(g, matrix, seed, pool, None, &[])
        })
    }

    /// [`Self::run_recorded`] with an explicit worker count, bypassing the
    /// machine-derived default (and `parallel_evaluation`): benchmarks pin
    /// their concurrency with it, and the robustness tests use it to force
    /// a worker-backed pool on single-core machines. Results are
    /// bit-identical to [`Self::run`] for any worker count.
    pub fn run_with_workers<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        seed: u64,
        workers: usize,
        rec: &R,
    ) -> EmtsResult {
        EvalPool::with_workers(g, matrix, workers, rec, |pool| {
            self.run_with_pool(g, matrix, seed, pool, None, &[])
        })
    }

    fn run_with_pool<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        seed: u64,
        pool: &mut EvalPool<'_, R>,
        deadline: Option<Instant>,
        warm: &[Allocation],
    ) -> EmtsResult {
        let rec = pool.recorder();
        let _run_span = rec.span("ea");
        // lint:allow(src-timing) -- results report elapsed wall time.
        let start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let v = g.task_count();
        let p_max = matrix.p_max();
        let cfg = &self.cfg;
        // Local copy so the 1/5 success rule can adapt σ without mutating
        // the scheduler object (runs stay independent).
        let mut op = self.op;

        // With no worker threads (serial mode, or a single-core machine)
        // every offspring funnels through the caller's thread anyway, so it
        // takes the incremental path: parents carry recorded evaluations
        // and offspring replay the unchanged schedule prefix. With workers,
        // batch dispatch wins and offspring are evaluated fresh. Both paths
        // are bit-identical, so the trajectory is machine-independent.
        let mut use_delta = pool.workers() == 0;
        // Two-tier screening only pays off on the batch path (the delta
        // path already prescreens with the same bounds per offspring), so
        // the surrogate configuration is consulted only when `!use_delta`.
        // The hot path uses the rungs-only screening configuration: the
        // full-interval replay costs about as much per event as the exact
        // core and never screens earlier than it rejects (see
        // `Surrogate::screening`).
        let two_tier = cfg.two_tier.then(Surrogate::screening);
        let mut engine = FitnessEngine::new(pool);
        let mut population = rec.time("seed", || initial_population(cfg, &op, g, matrix, &mut rng));
        let mut evaluations = population.len();
        if !warm.is_empty() {
            // Warm-start from incumbent individuals (online rolling
            // horizon): inject them alongside the heuristic seeds, then
            // keep the best µ. Exact duplicates of existing members are
            // skipped — in particular, a warm seed that *is* one of the
            // heuristic seeds leaves the run bit-identical to a cold
            // start (no extra evaluation, no re-sorting of the
            // population, same RNG stream).
            let mut merged = false;
            for alloc in warm {
                assert_eq!(alloc.len(), v, "warm allocation/PTG size mismatch");
                let mut a = alloc.clone();
                a.clamp(p_max);
                if population.iter().any(|ind| ind.alloc == a) {
                    continue;
                }
                let fitness = ListScheduler.makespan(g, matrix, &a);
                population.push(Individual::new(a, fitness, "warm"));
                evaluations += 1;
                merged = true;
            }
            if merged {
                population = select_best(population, cfg.mu);
            }
        }
        let seed_makespan = population
            .iter()
            .map(|i| i.fitness)
            .fold(f64::INFINITY, f64::min);
        let mut trace = ConvergenceTrace::with_capacity(cfg.generations + 1);
        trace.push(GenerationStats::from_fitness(
            GenerationStats::SEED,
            &population.iter().map(|i| i.fitness).collect::<Vec<_>>(),
            0,
        ));

        let mut generations_run = 0;
        let mut rejected = 0usize;
        let mut pruned = 0usize;
        for u in 0..cfg.generations {
            if let Some(budget) = cfg.time_budget {
                if start.elapsed() >= budget {
                    break;
                }
            }
            // lint:allow(src-timing) -- anytime-mode deadline, checked at generation boundaries
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
            engine.begin_generation();
            // Timeline marker plus counter snapshots: the per-generation
            // series in the trace records each counter's delta over this
            // generation, not the running total.
            rec.event("ea.generation", u as u64);
            let gen_hits = engine.cache_hits();
            let gen_misses = engine.cache_misses();
            let gen_delta_evals = engine.delta_evals();
            let gen_prefix_reuse = engine.prefix_reuse_events();
            let gen_surrogate = engine.surrogate_evals();
            let gen_skipped = engine.exact_skipped();
            let gen_ambiguous = engine.ambiguous_fallbacks();
            let (gen_wsum, gen_wcount) = engine.surrogate_width_stats();
            if !use_delta && engine.pool_degraded() {
                // Every worker is gone and none respawned: batches
                // dispatched to the pool would only come back through the
                // stall deadline, so finish the run on the serial delta
                // path. Both paths are bit-identical, so the switch cannot
                // change the result — only who computes it.
                use_delta = true;
            }
            if use_delta {
                // Attach recorded evaluations to the survivors that lack
                // one (fresh mutants from the previous generation). The
                // record is a full mapper pass, so its makespan must agree
                // with the already-evaluated fitness to the bit.
                rec.time("record", || {
                    for ind in &mut population {
                        if ind.record.is_none() {
                            let r = engine.record(&ind.alloc);
                            assert_eq!(
                                r.makespan().to_bits(),
                                ind.fitness.to_bits(),
                                "recorded evaluation diverged from fitness"
                            );
                            ind.record = Some(r);
                        }
                    }
                });
            }
            let m = mutation_count(u, cfg.generations, cfg.fm, v);
            // Mutation consumes the RNG on this thread only, so parallel
            // fitness evaluation cannot change the search trajectory.
            let gen_start_best = population
                .iter()
                .map(|i| i.fitness)
                .fold(f64::INFINITY, f64::min);
            let mut offspring_allocs: Vec<Allocation> = Vec::with_capacity(cfg.lambda);
            let mut offspring_changed: Vec<Vec<ptg::TaskId>> = Vec::with_capacity(cfg.lambda);
            let mut offspring_parent: Vec<usize> = Vec::with_capacity(cfg.lambda);
            rec.time("mutate", || {
                for _ in 0..cfg.lambda {
                    let pidx = rand::Rng::gen_range(&mut rng, 0..population.len());
                    // Optional single-point crossover before mutation. The
                    // outer probability guard must precede every RNG draw so
                    // the default configuration (crossover_prob = 0.0, the
                    // paper's pure ES) consumes the exact same stream as
                    // before the operator existed.
                    let (mut alloc, mut changed) = if cfg.crossover_prob > 0.0
                        && population.len() > 1
                        && rand::Rng::gen_bool(&mut rng, cfg.crossover_prob)
                    {
                        // Second parent distinct from the first.
                        let mut qidx = rand::Rng::gen_range(&mut rng, 0..population.len() - 1);
                        if qidx >= pidx {
                            qidx += 1;
                        }
                        single_point(&population[pidx].alloc, &population[qidx].alloc, &mut rng)
                    } else {
                        (population[pidx].alloc.clone(), Vec::new())
                    };
                    // The delta path needs every allele where the offspring
                    // may differ from parent `pidx`: crossover's diff plus
                    // the mutated alleles (duplicates are allowed).
                    changed.extend(op.mutate(&mut alloc, m, p_max, &mut rng));
                    offspring_allocs.push(alloc);
                    offspring_changed.push(changed);
                    offspring_parent.push(pidx);
                }
            });
            // Rejection cutoff: fixed at the generation's start so the
            // result is independent of evaluation order. With
            // comma-selection every offspring must survive, so rejection is
            // unsound there and disabled.
            let rejection_cutoff = if cfg.rejection && !cfg.comma_selection {
                let best = population
                    .iter()
                    .map(|i| i.fitness)
                    .fold(f64::INFINITY, f64::min);
                best * cfg.rejection_slack
            } else {
                f64::INFINITY
            };
            // Survival screen: under plus-selection an offspring whose
            // makespan exceeds the worst current parent is discarded by
            // select_best with certainty (µ parents all rank ahead of it),
            // so evaluating past that bound is wasted work. A screened-out
            // offspring also never counts as a 1/5-rule success (its
            // makespan exceeds the generation-start best), so the whole
            // trajectory — selection, σ adaptation, RNG stream — is
            // untouched. Unsound under comma-selection, where parents die.
            let survival_cutoff = if cfg.comma_selection {
                f64::INFINITY
            } else {
                population.iter().map(|i| i.fitness).fold(0.0f64, f64::max)
            };
            let cutoff = rejection_cutoff.min(survival_cutoff);
            let fitness: Vec<Option<f64>> = rec.time("evaluate", || {
                if use_delta {
                    offspring_allocs
                        .iter()
                        .enumerate()
                        .map(|(i, alloc)| {
                            let parent = &population[offspring_parent[i]];
                            engine.eval_offspring(
                                parent.record.as_deref(),
                                alloc,
                                &offspring_changed[i],
                                cutoff,
                            )
                        })
                        .collect()
                } else if let Some(sur) = &two_tier {
                    engine.evaluate_two_tier(&offspring_allocs, cutoff, sur)
                } else {
                    engine.evaluate(&offspring_allocs, cutoff)
                }
            });
            evaluations += offspring_allocs.len();
            let offspring: Vec<Individual> = offspring_allocs
                .into_iter()
                .zip(fitness)
                .filter_map(|(alloc, f)| match f {
                    Some(f) => Some(Individual::new(alloc, f, "mutant")),
                    None => {
                        if cfg.rejection {
                            rejected += 1;
                        } else {
                            pruned += 1;
                        }
                        None
                    }
                })
                .collect();
            let _select_span = rec.span("select");
            if cfg.adaptive_sigma {
                // Rechenberg's 1/5 success rule: an offspring counts as a
                // success when it beats the generation-start best. The
                // factor 1.22 ≈ e^0.2 is the classic choice; σ is kept in
                // [0.5, P] so steps stay meaningful.
                let successes = offspring
                    .iter()
                    .filter(|o| o.fitness < gen_start_best)
                    .count();
                let factor = if (successes as f64) > cfg.lambda as f64 / 5.0 {
                    1.22
                } else {
                    1.0 / 1.22
                };
                op.sigma_shrink = (op.sigma_shrink * factor).clamp(0.5, p_max as f64);
                op.sigma_stretch = (op.sigma_stretch * factor).clamp(0.5, p_max as f64);
            }

            population = if cfg.comma_selection {
                // (µ, λ): parents die; requires λ ≥ µ to sustain the
                // population.
                select_best(offspring, cfg.mu)
            } else {
                // (µ + λ): the paper's plus-strategy conserves the best
                // individual, so fitness never regresses.
                let mut pool = population;
                pool.extend(offspring);
                select_best(pool, cfg.mu)
            };
            generations_run = u + 1;
            let mut stats = GenerationStats::from_fitness(
                u,
                &population.iter().map(|i| i.fitness).collect::<Vec<_>>(),
                m,
            );
            stats.cache_hits = engine.cache_hits() - gen_hits;
            stats.cache_misses = engine.cache_misses() - gen_misses;
            stats.delta_evals = engine.delta_evals() - gen_delta_evals;
            stats.prefix_reuse_events = engine.prefix_reuse_events() - gen_prefix_reuse;
            stats.surrogate_evals = engine.surrogate_evals() - gen_surrogate;
            stats.exact_skipped = engine.exact_skipped() - gen_skipped;
            stats.ambiguous_fallbacks = engine.ambiguous_fallbacks() - gen_ambiguous;
            let (wsum, wcount) = engine.surrogate_width_stats();
            stats.surrogate_interval_width = if wcount > gen_wcount {
                (wsum - gen_wsum) / (wcount - gen_wcount) as f64
            } else {
                0.0
            };
            trace.push(stats);
        }

        trace.cache_hits = engine.cache_hits();
        trace.cache_misses = engine.cache_misses();
        trace.delta_evals = engine.delta_evals();
        trace.lb_pruned = engine.lb_pruned();
        trace.prefix_reuse_events = engine.prefix_reuse_events();
        trace.noop_skips = engine.noop_skips();
        trace.worker_panics = engine.worker_panics();
        trace.pool_respawns = engine.pool_respawns();
        trace.serial_fallbacks = engine.serial_fallbacks();
        trace.surrogate_evals = engine.surrogate_evals();
        trace.exact_skipped = engine.exact_skipped();
        trace.ambiguous_fallbacks = engine.ambiguous_fallbacks();
        let best = population
            .into_iter()
            .min_by(|a, b| {
                a.fitness
                    .partial_cmp(&b.fitness)
                    .expect("fitness values are finite")
            })
            .expect("population is never empty");
        if R::ENABLED {
            // The engine emits hit/miss deltas as they happen; a run whose
            // offspring all miss (or a zero-generation run) must still
            // surface both counters, so touch them with zero deltas.
            rec.add("emts.cache.hits", 0);
            rec.add("emts.cache.misses", 0);
            rec.add("emts.evaluations", evaluations as u64);
            rec.add("emts.rejected", rejected as u64);
            rec.add("emts.pruned", pruned as u64);
            rec.add("emts.generations", generations_run as u64);
            rec.gauge("emts.best_makespan", best.fitness);
            rec.gauge("emts.seed_makespan", seed_makespan);
        }
        EmtsResult {
            best_makespan: best.fitness,
            seed_makespan,
            best_origin: best.origin,
            best: best.alloc,
            trace,
            evaluations,
            wall_time: start.elapsed(),
            generations_run,
            rejected,
            pruned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{Amdahl, SyntheticModel};
    use heuristics::{allocate_and_map, Hcpa, Mcpa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::{daggen::random_ptg, fft::fft_ptg, CostConfig, DaggenParams};

    fn fft_setup(model2: bool) -> (Ptg, TimeMatrix) {
        let g = fft_ptg(
            8,
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(21),
        );
        let m = if model2 {
            TimeMatrix::compute(&g, &SyntheticModel::default(), 4.3e9, 20)
        } else {
            TimeMatrix::compute(&g, &Amdahl, 4.3e9, 20)
        };
        (g, m)
    }

    #[test]
    fn plus_selection_never_loses_to_seeds() {
        let (g, m) = fft_setup(true);
        let result = Emts::new(EmtsConfig::emts5()).run(&g, &m, 1);
        assert!(result.best_makespan <= result.seed_makespan);
        assert!(result.improvement() >= 1.0);
    }

    #[test]
    fn emts_beats_both_heuristics_or_ties() {
        let (g, m) = fft_setup(true);
        let result = Emts::new(EmtsConfig::emts5()).run(&g, &m, 2);
        let (_, ms_mcpa) = allocate_and_map(&Mcpa, &g, &m);
        let (_, ms_hcpa) = allocate_and_map(&Hcpa, &g, &m);
        assert!(result.best_makespan <= ms_mcpa + 1e-9);
        assert!(result.best_makespan <= ms_hcpa + 1e-9);
    }

    #[test]
    fn trace_best_is_monotone_under_plus_selection() {
        let (g, m) = fft_setup(true);
        let result = Emts::new(EmtsConfig::emts5()).run(&g, &m, 3);
        let bests: Vec<f64> = result.trace.iter().map(|t| t.best).collect();
        for w in bests.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "best regressed: {bests:?}");
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let (g, m) = fft_setup(true);
        let emts = Emts::new(EmtsConfig::emts5());
        let a = emts.run(&g, &m, 7);
        let b = emts.run(&g, &m, 7);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_makespan, b.best_makespan);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn different_seeds_explore_differently() {
        let (g, m) = fft_setup(true);
        let emts = Emts::new(EmtsConfig::emts5());
        let a = emts.run(&g, &m, 1);
        let b = emts.run(&g, &m, 2);
        // Same final makespan is possible, identical full traces are not
        // (λ·U = 125 random mutations each).
        assert!(
            a.trace.iter().zip(&b.trace).any(|(x, y)| x.mean != y.mean),
            "traces identical across seeds"
        );
    }

    #[test]
    fn evaluation_budget_is_accounted() {
        let (g, m) = fft_setup(false);
        let result = Emts::new(EmtsConfig::emts5()).run(&g, &m, 4);
        // 5 seeds + 5 generations × 25 offspring
        assert_eq!(result.evaluations, 5 + 5 * 25);
        assert_eq!(result.generations_run, 5);
        assert_eq!(result.trace.len(), 6);
    }

    #[test]
    fn cache_counters_account_for_every_offspring() {
        let (g, m) = fft_setup(true);
        let r = Emts::new(EmtsConfig::emts5()).run(&g, &m, 2);
        // Seeds are evaluated during population init; the engine sees the
        // λ offspring of each of the 5 generations.
        assert_eq!(r.trace.cache_hits + r.trace.cache_misses, 5 * 25);
        assert!((0.0..=1.0).contains(&r.trace.cache_hit_rate()));
    }

    #[test]
    fn serial_runs_route_every_miss_through_the_delta_path() {
        let (g, m) = fft_setup(true);
        let r = Emts::new(EmtsConfig {
            parallel_evaluation: false,
            ..EmtsConfig::emts5()
        })
        .run(&g, &m, 2);
        // Serial mode has no workers, so the incremental path serves all
        // engine misses; hits (memo, no-op skips, within-generation
        // rejection replays) account for the rest of the λ·U offspring.
        assert_eq!(r.trace.delta_evals, r.trace.cache_misses);
        assert_eq!(r.trace.cache_hits + r.trace.cache_misses, 5 * 25);
        assert!(r.trace.lb_pruned + r.pruned + r.rejected <= 5 * 25);
        assert!(r.trace.noop_skips <= r.trace.cache_hits);
    }

    #[test]
    fn survival_pruning_never_changes_the_outcome_visible_to_selection() {
        // The survival screen only drops offspring that plus-selection
        // would discard anyway, so serial (delta+screen) and the reference
        // trajectory pinned by the other tests must coincide. Spot-check:
        // both evaluation modes of the same config and seed agree exactly.
        let (g, m) = fft_setup(true);
        let serial = Emts::new(EmtsConfig {
            parallel_evaluation: false,
            ..EmtsConfig::emts5()
        })
        .run(&g, &m, 11);
        let parallel = Emts::new(EmtsConfig::emts5()).run(&g, &m, 11);
        assert_eq!(serial.best, parallel.best);
        assert_eq!(
            serial.best_makespan.to_bits(),
            parallel.best_makespan.to_bits()
        );
        // Compare trajectories, not engine counters: delta_evals and
        // prefix reuse legitimately differ between the two paths.
        let keys = |r: &EmtsResult| {
            r.trace
                .iter()
                .map(GenerationStats::fitness_key)
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&serial), keys(&parallel));
    }

    #[test]
    fn two_tier_screening_is_invisible_to_selection() {
        // The surrogate screen only skips exact evaluations it has proved
        // would be rejected at the cutoff, so the whole trajectory — best
        // individual, per-generation fitness summaries, pruned counts —
        // must be bit-identical to the all-exact batch run.
        let (g, m) = fft_setup(true);
        for seed in [2u64, 11] {
            let base = Emts::new(EmtsConfig::emts5()).run_with_workers(
                &g,
                &m,
                seed,
                2,
                &obs::NoopRecorder,
            );
            let tiered = Emts::new(EmtsConfig {
                two_tier: true,
                ..EmtsConfig::emts5()
            })
            .run_with_workers(&g, &m, seed, 2, &obs::NoopRecorder);
            assert_eq!(base.best, tiered.best);
            assert_eq!(base.best_makespan.to_bits(), tiered.best_makespan.to_bits());
            assert_eq!(base.pruned, tiered.pruned);
            assert_eq!(base.rejected, tiered.rejected);
            let keys = |r: &EmtsResult| {
                r.trace
                    .iter()
                    .map(GenerationStats::fitness_key)
                    .collect::<Vec<_>>()
            };
            assert_eq!(keys(&base), keys(&tiered));
        }
    }

    #[test]
    fn two_tier_counters_account_for_the_screen() {
        let (g, m) = fft_setup(true);
        let r = Emts::new(EmtsConfig {
            two_tier: true,
            ..EmtsConfig::emts5()
        })
        .run_with_workers(&g, &m, 2, 2, &obs::NoopRecorder);
        // Every cache miss went through tier 1, screened offspring still
        // count as misses, and the per-generation series sums to the run
        // totals.
        assert_eq!(r.trace.surrogate_evals, r.trace.cache_misses);
        assert_eq!(r.trace.cache_hits + r.trace.cache_misses, 5 * 25);
        assert!(r.trace.exact_skipped <= r.trace.surrogate_evals);
        assert!(r.trace.ambiguous_fallbacks + r.trace.exact_skipped <= r.trace.surrogate_evals);
        assert!(
            r.trace.exact_skipped > 0,
            "survival cutoff never screened anything on the headline workload"
        );
        let gen_sums = |f: fn(&GenerationStats) -> usize| -> usize {
            r.trace.iter().filter(|s| !s.is_seed()).map(f).sum()
        };
        assert_eq!(gen_sums(|s| s.surrogate_evals), r.trace.surrogate_evals);
        assert_eq!(gen_sums(|s| s.exact_skipped), r.trace.exact_skipped);
        assert_eq!(
            gen_sums(|s| s.ambiguous_fallbacks),
            r.trace.ambiguous_fallbacks
        );
    }

    #[test]
    fn two_tier_is_inert_on_the_serial_path_and_under_comma_selection() {
        let (g, m) = fft_setup(true);
        let serial = Emts::new(EmtsConfig {
            two_tier: true,
            parallel_evaluation: false,
            ..EmtsConfig::emts5()
        })
        .run(&g, &m, 4);
        assert_eq!(serial.trace.surrogate_evals, 0);
        assert_eq!(serial.trace.delta_evals, serial.trace.cache_misses);
        let comma = Emts::new(EmtsConfig {
            two_tier: true,
            comma_selection: true,
            ..EmtsConfig::emts5()
        })
        .run_with_workers(&g, &m, 4, 2, &obs::NoopRecorder);
        // Comma-selection leaves the cutoff infinite; tier 1 is bypassed.
        assert_eq!(comma.trace.surrogate_evals, 0);
        assert_eq!(comma.trace.exact_skipped, 0);
    }

    #[test]
    fn crossover_keeps_plus_selection_guarantees_and_determinism() {
        let (g, m) = fft_setup(true);
        let cfg = EmtsConfig {
            crossover_prob: 0.5,
            ..EmtsConfig::emts5()
        };
        let a = Emts::new(cfg.clone()).run(&g, &m, 13);
        let b = Emts::new(cfg).run(&g, &m, 13);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_makespan.to_bits(), b.best_makespan.to_bits());
        assert!(a.best_makespan <= a.seed_makespan + 1e-12);
        assert!(a.best.is_valid_for(&g, 20));
        // Recombination must actually change the search relative to the
        // pure ES under the same seed.
        let pure = Emts::new(EmtsConfig::emts5()).run(&g, &m, 13);
        assert!(
            a.trace
                .iter()
                .zip(&pure.trace)
                .any(|(x, y)| x.mean != y.mean),
            "crossover had no effect on the trajectory"
        );
    }

    #[test]
    fn crossover_prob_zero_is_bit_identical_to_the_pure_es() {
        // The guard must keep the RNG stream untouched: explicitly setting
        // 0.0 and the default must coincide to the bit.
        let (g, m) = fft_setup(true);
        let base = Emts::new(EmtsConfig::emts5()).run(&g, &m, 7);
        let zero = Emts::new(EmtsConfig {
            crossover_prob: 0.0,
            ..EmtsConfig::emts5()
        })
        .run(&g, &m, 7);
        assert_eq!(base.best, zero.best);
        let keys = |r: &EmtsResult| {
            r.trace
                .iter()
                .map(GenerationStats::fitness_key)
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&base), keys(&zero));
    }

    #[test]
    fn emts10_does_at_least_as_well_as_emts5() {
        // Same seed ⇒ EMTS10 explores a superset-quality search: not a
        // strict guarantee (different stream shapes), so compare best to
        // seed instead: both must be ≤ seeds, and EMTS10 must not be worse
        // than its own seed baseline.
        let (g, m) = fft_setup(true);
        let r5 = Emts::new(EmtsConfig::emts5()).run(&g, &m, 5);
        let r10 = Emts::new(EmtsConfig::emts10()).run(&g, &m, 5);
        assert!(r5.best_makespan <= r5.seed_makespan);
        assert!(r10.best_makespan <= r10.seed_makespan);
    }

    #[test]
    fn zero_time_budget_skips_evolution() {
        let (g, m) = fft_setup(false);
        let cfg = EmtsConfig {
            time_budget: Some(Duration::ZERO),
            ..EmtsConfig::emts5()
        };
        let result = Emts::new(cfg).run(&g, &m, 6);
        assert_eq!(result.generations_run, 0);
        assert_eq!(result.best_makespan, result.seed_makespan);
    }

    #[test]
    fn comma_selection_still_produces_valid_results() {
        let (g, m) = fft_setup(true);
        let cfg = EmtsConfig {
            comma_selection: true,
            ..EmtsConfig::emts5()
        };
        let result = Emts::new(cfg).run(&g, &m, 8);
        assert!(result.best.is_valid_for(&g, 20));
        assert!(result.best_makespan.is_finite());
    }

    #[test]
    fn improves_irregular_graphs_on_large_platform() {
        // The paper's headline case: irregular 100-task PTG on Grelon under
        // Model 2 — EMTS should strictly improve on MCPA and HCPA here.
        let params = DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        };
        let g = random_ptg(
            &params,
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(33),
        );
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 120);
        let result = Emts::new(EmtsConfig::emts5()).run(&g, &m, 9);
        let (_, ms_mcpa) = allocate_and_map(&Mcpa, &g, &m);
        assert!(
            result.best_makespan < ms_mcpa,
            "EMTS {} should beat MCPA {}",
            result.best_makespan,
            ms_mcpa
        );
    }

    #[test]
    fn adaptive_sigma_keeps_plus_selection_guarantees() {
        let (g, m) = fft_setup(true);
        for seed in 0..4 {
            let r = Emts::new(EmtsConfig {
                adaptive_sigma: true,
                ..EmtsConfig::emts10()
            })
            .run(&g, &m, seed);
            assert!(r.best_makespan <= r.seed_makespan + 1e-12);
            assert!(r.best.is_valid_for(&g, 20));
        }
    }

    #[test]
    fn adaptive_sigma_changes_the_search_trajectory() {
        let (g, m) = fft_setup(true);
        let fixed = Emts::new(EmtsConfig::emts10()).run(&g, &m, 5);
        let adaptive = Emts::new(EmtsConfig {
            adaptive_sigma: true,
            ..EmtsConfig::emts10()
        })
        .run(&g, &m, 5);
        // Identical until the first σ update kicks in; afterwards the
        // mutation stream differs. The traces should not be identical.
        assert!(
            fixed
                .trace
                .iter()
                .zip(&adaptive.trace)
                .any(|(a, b)| a.mean != b.mean),
            "adaptive sigma had no effect on the trajectory"
        );
    }

    #[test]
    fn rejection_preserves_the_best_result() {
        // With slack ≥ 1 the eventual best individual can never be
        // rejected (its makespan is ≤ the cutoff that would kill it), so
        // rejection must reproduce the exact same best makespan as the
        // unmodified EA under the same seed.
        let (g, m) = fft_setup(true);
        for seed in 0..4 {
            let base = Emts::new(EmtsConfig::emts5()).run(&g, &m, seed);
            let rej = Emts::new(EmtsConfig {
                rejection: true,
                rejection_slack: 1.0,
                ..EmtsConfig::emts5()
            })
            .run(&g, &m, seed);
            assert_eq!(base.rejected, 0);
            // Identical RNG stream (mutation happens before evaluation), so
            // the same offspring are generated; rejection only prunes ones
            // that plus-selection would discard anyway — except that pruned
            // mid-tier parents can change later parent sampling. The *best*
            // makespan must still never be worse than the seeds, and
            // rejection must actually fire sometimes.
            assert!(rej.best_makespan <= rej.seed_makespan + 1e-12);
            assert!(rej.best.is_valid_for(&g, 20));
        }
    }

    #[test]
    fn rejection_fires_and_is_counted() {
        let (g, m) = fft_setup(true);
        let mut any_rejected = 0;
        for seed in 0..6 {
            let rej = Emts::new(EmtsConfig {
                rejection: true,
                rejection_slack: 1.0,
                parallel_evaluation: false,
                ..EmtsConfig::emts5()
            })
            .run(&g, &m, seed);
            any_rejected += rej.rejected;
        }
        assert!(
            any_rejected > 0,
            "tight slack never rejected an offspring across 6 runs"
        );
    }

    #[test]
    fn rejection_is_disabled_under_comma_selection() {
        let (g, m) = fft_setup(true);
        let r = Emts::new(EmtsConfig {
            rejection: true,
            comma_selection: true,
            ..EmtsConfig::emts5()
        })
        .run(&g, &m, 3);
        assert_eq!(r.rejected, 0, "comma-selection must not reject");
    }

    #[test]
    fn best_allocation_is_always_platform_valid() {
        let (g, m) = fft_setup(true);
        for seed in 0..5 {
            let r = Emts::new(EmtsConfig::emts5()).run(&g, &m, seed);
            assert!(r.best.is_valid_for(&g, 20));
        }
    }
}
