//! Starting solutions (§III-B).
//!
//! "To obtain starting solutions, EMTS makes use of results produced by
//! other heuristics. In the present work, we execute the allocation
//! functions of MCPA and HCPA and encode their results as individuals in the
//! initial population. Additionally, we designed another heuristic
//! [Δ-critical processor sharing]."
//!
//! The population needs µ individuals; with three heuristic seeds the
//! remaining µ − 3 slots hold mutated copies of the seeds (round-robin), so
//! the initial population is diverse but anchored near the heuristic
//! solutions. With `heuristic_seeds` disabled (ablation), the population is
//! the all-ones allocation plus random perturbations of it.

use crate::config::EmtsConfig;
use crate::individual::Individual;
use crate::mutation::MutationOperator;
use exec_model::TimeMatrix;
use heuristics::{Allocator, DeltaCritical, Hcpa, Mcpa};
use ptg::Ptg;
use rand::Rng;
use sched::{Allocation, ListScheduler, Mapper};

/// Builds and evaluates the initial population of µ individuals.
pub fn initial_population<R: Rng + ?Sized>(
    cfg: &EmtsConfig,
    op: &MutationOperator,
    g: &Ptg,
    matrix: &TimeMatrix,
    rng: &mut R,
) -> Vec<Individual> {
    let p_max = matrix.p_max();
    let mut seeds: Vec<(Allocation, &'static str)> = Vec::new();
    if cfg.heuristic_seeds {
        seeds.push((Mcpa.allocate(g, matrix), "MCPA"));
        seeds.push((Hcpa.allocate(g, matrix), "HCPA"));
        seeds.push((
            DeltaCritical::new(cfg.delta).allocate(g, matrix),
            "DeltaCritical",
        ));
    } else {
        seeds.push((Allocation::ones(g.task_count()), "AllOne"));
    }
    seeds.truncate(cfg.mu);

    let mut population: Vec<Individual> = Vec::with_capacity(cfg.mu);
    for (alloc, origin) in &seeds {
        let fitness = ListScheduler.makespan(g, matrix, alloc);
        population.push(Individual::new(alloc.clone(), fitness, origin));
    }
    // Fill the remaining slots with perturbed copies of the seeds.
    let m0 = ((cfg.fm * g.task_count() as f64).round() as usize).max(1);
    let mut next_seed = 0usize;
    while population.len() < cfg.mu {
        let mut alloc = seeds[next_seed % seeds.len()].0.clone();
        next_seed += 1;
        op.mutate(&mut alloc, m0, p_max, rng);
        let fitness = ListScheduler.makespan(g, matrix, &alloc);
        population.push(Individual::new(alloc, fitness, "seed-mutant"));
    }
    population
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{Amdahl, TimeMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::{fft::fft_ptg, CostConfig};

    fn setup() -> (Ptg, TimeMatrix) {
        let g = fft_ptg(4, &CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(5));
        let m = TimeMatrix::compute(&g, &Amdahl, 4.3e9, 20);
        (g, m)
    }

    #[test]
    fn population_has_mu_individuals_with_heuristic_anchors() {
        let (g, m) = setup();
        let cfg = EmtsConfig::emts5();
        let pop = initial_population(
            &cfg,
            &MutationOperator::paper(),
            &g,
            &m,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        assert_eq!(pop.len(), 5);
        let origins: Vec<&str> = pop.iter().map(|i| i.origin).collect();
        assert!(origins.contains(&"MCPA"));
        assert!(origins.contains(&"HCPA"));
        assert!(origins.contains(&"DeltaCritical"));
        assert_eq!(origins.iter().filter(|&&o| o == "seed-mutant").count(), 2);
    }

    #[test]
    fn seed_fitness_matches_direct_mapping() {
        let (g, m) = setup();
        let cfg = EmtsConfig::emts5();
        let pop = initial_population(
            &cfg,
            &MutationOperator::paper(),
            &g,
            &m,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        for ind in &pop {
            let direct = ListScheduler.makespan(&g, &m, &ind.alloc);
            assert_eq!(ind.fitness, direct, "{}", ind.origin);
        }
    }

    #[test]
    fn ablation_mode_uses_all_ones() {
        let (g, m) = setup();
        let cfg = EmtsConfig {
            heuristic_seeds: false,
            ..EmtsConfig::emts5()
        };
        let pop = initial_population(
            &cfg,
            &MutationOperator::paper(),
            &g,
            &m,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        assert_eq!(pop[0].origin, "AllOne");
        assert!(pop[0].alloc.as_slice().iter().all(|&s| s == 1));
        assert_eq!(pop.len(), 5);
    }

    #[test]
    fn tiny_mu_truncates_seed_list() {
        let (g, m) = setup();
        let cfg = EmtsConfig {
            mu: 2,
            ..EmtsConfig::emts5()
        };
        let pop = initial_population(
            &cfg,
            &MutationOperator::paper(),
            &g,
            &m,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        assert_eq!(pop.len(), 2);
    }

    #[test]
    fn all_individuals_are_valid_for_the_platform() {
        let (g, m) = setup();
        let cfg = EmtsConfig::emts10();
        let pop = initial_population(
            &cfg,
            &MutationOperator::paper(),
            &g,
            &m,
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        assert_eq!(pop.len(), 10);
        for ind in &pop {
            assert!(ind.alloc.is_valid_for(&g, 20), "{}", ind.origin);
        }
    }
}
