//! Release-mode regression guard for the incremental fitness path.
//!
//! Fails if delta evaluation of single-gene mutants is slower than the
//! pooled full evaluation of the same offspring on the paper's hard case
//! (irregular n=100 DAGGEN on Grelon, P=120). `#[ignore]` because wall
//! clock in a debug build is meaningless — `scripts/ci.sh` runs it with
//! `cargo test --release -- --ignored`.

use emts::parallel::EvalPool;
use exec_model::{SyntheticModel, TimeMatrix};
use obs::NoopRecorder;
use platform::grelon;
use ptg::critpath::BlRepairer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, BoundedEval, EvalScratch, ListScheduler};
use std::time::Instant;
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

#[test]
#[ignore = "wall-clock guard; run in release via scripts/ci.sh"]
fn delta_path_is_not_slower_than_pooled_full_evaluation() {
    const LAMBDA: usize = 25;
    const ROUNDS: usize = 7;

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let g = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let cluster = grelon();
    let matrix = TimeMatrix::compute(
        &g,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );
    let tasks = g.task_count();
    let parent = Allocation::from_vec(
        (0..tasks)
            .map(|_| rng.gen_range(1..=cluster.processors))
            .collect(),
    );

    let mut scratch = EvalScratch::new();
    let mut repairer = BlRepairer::new(&g);
    let record = ListScheduler.evaluate_recorded(&g, &matrix, &parent, &mut scratch, &NoopRecorder);

    // λ single-gene mutants of the recorded parent, produced by the
    // paper's mutation operator (Gaussian width change, σ = 5, m = 1) —
    // the exact distribution the EA feeds the delta path.
    let op = emts::MutationOperator::paper();
    let mutants: Vec<(Allocation, ptg::TaskId)> = std::iter::repeat_with(|| {
        let mut child = parent.clone();
        let changed = op.mutate(&mut child, 1, cluster.processors, &mut rng);
        changed.first().map(|&gene| (child, gene))
    })
    .flatten()
    .take(LAMBDA)
    .collect();
    let batch: Vec<Allocation> = mutants.iter().map(|(a, _)| a.clone()).collect();

    // Interleaved min-of-k: alternate the two paths so frequency scaling and
    // cache warmth hit both equally; compare the best round of each.
    let mut best_pooled = f64::INFINITY;
    let mut best_delta = f64::INFINITY;
    EvalPool::with(&g, &matrix, true, |pool| {
        for _ in 0..ROUNDS {
            let t = Instant::now();
            let full = pool.run_batch(batch.clone(), f64::INFINITY);
            let pooled_s = t.elapsed().as_secs_f64();
            best_pooled = best_pooled.min(pooled_s);

            let t = Instant::now();
            let mut check = 0u64;
            for (child, gene) in &mutants {
                let d = ListScheduler.evaluate_delta(
                    &g,
                    &matrix,
                    &record,
                    child,
                    std::slice::from_ref(gene),
                    f64::INFINITY,
                    &mut scratch,
                    &mut repairer,
                    &NoopRecorder,
                );
                if let BoundedEval::Complete { makespan, .. } = d.outcome {
                    check ^= makespan.to_bits();
                }
            }
            let delta_s = t.elapsed().as_secs_f64();
            best_delta = best_delta.min(delta_s);
            std::hint::black_box((full, check));
        }
    });

    let pooled_ns = best_pooled * 1e9 / LAMBDA as f64;
    let delta_ns = best_delta * 1e9 / LAMBDA as f64;
    println!(
        "PERF_GUARD pooled_ns_per_eval={pooled_ns:.1} delta_ns_per_eval={delta_ns:.1} \
         speedup={:.2}",
        pooled_ns / delta_ns
    );
    assert!(
        best_delta <= best_pooled,
        "delta path regressed: {delta_ns:.1} ns/eval vs pooled {pooled_ns:.1} ns/eval"
    );
}
