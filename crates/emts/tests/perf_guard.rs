//! Release-mode regression guards for the fitness hot paths.
//!
//! Four guards on the paper's hard case (irregular n=100 DAGGEN on
//! Grelon, P=120), all relative — they compare two in-tree
//! implementations on the same machine, so they hold on any host:
//!
//! * delta evaluation of single-gene mutants must not be slower than the
//!   pooled full evaluation of the same offspring,
//! * the flight recorder must stay within its overhead budget over the
//!   compiled-out (`NoopRecorder`) mapper loop,
//! * the SoA grouped core (packed `u128` heaps, CSR adjacency) must beat
//!   the retained pre-refactor oracle core by a clear margin,
//! * the two-tier fitness pipeline (rung screening + cutoff-bounded
//!   exact) must beat the pooled all-exact batch on a converged-shape
//!   EMTS10 generation.
//!
//! `#[ignore]` because wall clock in a debug build is meaningless —
//! `scripts/ci.sh` runs them with `cargo test --release -- --ignored`.

use emts::parallel::EvalPool;
use exec_model::{SyntheticModel, TimeMatrix};
use obs::{FlightRecorder, NoopRecorder, Recorder};
use platform::grelon;
use ptg::critpath::BlRepairer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, BoundedEval, EvalScratch, ListScheduler};
use std::time::Instant;
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

#[test]
#[ignore = "wall-clock guard; run in release via scripts/ci.sh"]
fn delta_path_is_not_slower_than_pooled_full_evaluation() {
    const LAMBDA: usize = 25;
    const ROUNDS: usize = 7;

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let g = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let cluster = grelon();
    let matrix = TimeMatrix::compute(
        &g,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );
    let tasks = g.task_count();
    let parent = Allocation::from_vec(
        (0..tasks)
            .map(|_| rng.gen_range(1..=cluster.processors))
            .collect(),
    );

    let mut scratch = EvalScratch::new();
    let mut repairer = BlRepairer::new(&g);
    let record = ListScheduler.evaluate_recorded(&g, &matrix, &parent, &mut scratch, &NoopRecorder);

    // λ single-gene mutants of the recorded parent, produced by the
    // paper's mutation operator (Gaussian width change, σ = 5, m = 1) —
    // the exact distribution the EA feeds the delta path.
    let op = emts::MutationOperator::paper();
    let mutants: Vec<(Allocation, ptg::TaskId)> = std::iter::repeat_with(|| {
        let mut child = parent.clone();
        let changed = op.mutate(&mut child, 1, cluster.processors, &mut rng);
        changed.first().map(|&gene| (child, gene))
    })
    .flatten()
    .take(LAMBDA)
    .collect();
    let batch: Vec<Allocation> = mutants.iter().map(|(a, _)| a.clone()).collect();

    // Interleaved min-of-k: alternate the two paths so frequency scaling and
    // cache warmth hit both equally; compare the best round of each.
    let mut best_pooled = f64::INFINITY;
    let mut best_delta = f64::INFINITY;
    EvalPool::with(&g, &matrix, true, |pool| {
        for _ in 0..ROUNDS {
            let t = Instant::now();
            let full = pool.run_batch(batch.clone(), f64::INFINITY);
            let pooled_s = t.elapsed().as_secs_f64();
            best_pooled = best_pooled.min(pooled_s);

            let t = Instant::now();
            let mut check = 0u64;
            for (child, gene) in &mutants {
                let d = ListScheduler.evaluate_delta(
                    &g,
                    &matrix,
                    &record,
                    child,
                    std::slice::from_ref(gene),
                    f64::INFINITY,
                    &mut scratch,
                    &mut repairer,
                    &NoopRecorder,
                );
                if let BoundedEval::Complete { makespan, .. } = d.outcome {
                    check ^= makespan.to_bits();
                }
            }
            let delta_s = t.elapsed().as_secs_f64();
            best_delta = best_delta.min(delta_s);
            std::hint::black_box((full, check));
        }
    });

    let pooled_ns = best_pooled * 1e9 / LAMBDA as f64;
    let delta_ns = best_delta * 1e9 / LAMBDA as f64;
    println!(
        "PERF_GUARD pooled_ns_per_eval={pooled_ns:.1} delta_ns_per_eval={delta_ns:.1} \
         speedup={:.2}",
        pooled_ns / delta_ns
    );
    // Measured ~1.4× after the SoA refactor (both paths got faster);
    // 1.15× keeps headroom for host noise while still failing if the
    // prefix-replay machinery ever stops paying for itself.
    assert!(
        best_delta * 1.15 <= best_pooled,
        "delta path regressed: {delta_ns:.1} ns/eval vs pooled {pooled_ns:.1} ns/eval \
         (need ≥1.15×)"
    );
}

#[test]
#[ignore = "wall-clock guard; run in release via scripts/ci.sh"]
fn two_tier_pipeline_beats_pooled_all_exact_evaluation() {
    const ROUNDS: usize = 9;
    // The two-tier pipeline (rung screening + cutoff-bounded exact) vs the
    // pooled all-exact baseline that evaluates every offspring to
    // completion — the cost a (µ+λ) generation pays without the engine.
    // Measurement note (kept honest in EXPERIMENTS.md): against the
    // *bounded* exact batch at the same cutoff the pipeline is at parity,
    // because the exact core's own first-pop reject test embeds the same
    // bounds the rungs compute; the win this guard protects is
    // rungs + bounded rejection together over full evaluation.
    const REQUIRED_SPEEDUP: f64 = 1.15;

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let g = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let cluster = grelon();
    let matrix = TimeMatrix::compute(
        &g,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );

    // Converged-generation stand-in: the best heuristic seed plus µ−1
    // single-gene perturbations of it as parents (a tight fitness spread,
    // like a late EMTS10 population), λ = 100 offspring mutated at full
    // strength (m = f_m·V = 33), and the cutoff the EA computes with the
    // rejection strategy live. Most offspring land above the cutoff, which
    // is exactly the regime screening exists for.
    let cfg = emts::EmtsConfig {
        rejection: true,
        two_tier: true,
        ..emts::EmtsConfig::emts10()
    };
    let op = emts::MutationOperator::paper();
    let seeds = emts::seeds::initial_population(&cfg, &op, &g, &matrix, &mut rng);
    let elite = seeds
        .iter()
        .min_by(|a, b| a.fitness.total_cmp(&b.fitness))
        .expect("non-empty seed population");
    let parents: Vec<(Allocation, f64)> = (0..cfg.mu)
        .map(|k| {
            let mut a = elite.alloc.clone();
            if k > 0 {
                op.mutate(&mut a, 1, cluster.processors, &mut rng);
            }
            let f = sched::Mapper::makespan(&ListScheduler, &g, &matrix, &a);
            (a, f)
        })
        .collect();
    let best = parents.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let worst = parents.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let cutoff = (best * cfg.rejection_slack).min(worst);
    let m = (cfg.fm * g.task_count() as f64).round() as usize;
    let batch: Vec<Allocation> = (0..cfg.lambda)
        .map(|_| {
            let pidx = rng.gen_range(0..parents.len());
            let mut child = parents[pidx].0.clone();
            op.mutate(&mut child, m, cluster.processors, &mut rng);
            child
        })
        .collect();

    // The engine's hot-path configuration (rung bounds only) — the same
    // one `Emts` uses when `two_tier` is enabled.
    let sur = sched::Surrogate::screening();
    let mut best_exact = f64::INFINITY;
    let mut best_tiered = f64::INFINITY;
    let mut screened = 0usize;
    EvalPool::with(&g, &matrix, true, |pool| {
        // Warm both paths, and check once that screening decisions agree
        // with the exact rejections before timing anything.
        let exact = pool.run_batch(batch.clone(), cutoff);
        let tiered = pool.run_batch_two_tier(batch.clone(), cutoff, &sur);
        for (e, t) in exact.iter().zip(&tiered) {
            match t {
                sched::TwoTierEval::Screened(_) => {
                    assert!(
                        matches!(e, BoundedEval::Rejected),
                        "screened offspring was not an exact rejection"
                    );
                    screened += 1;
                }
                sched::TwoTierEval::Exact(_, ev) => assert_eq!(ev, e),
            }
        }
        assert!(
            screened > 0,
            "cutoff never screened an offspring — the guard measures nothing"
        );

        for _ in 0..ROUNDS {
            let t = Instant::now();
            std::hint::black_box(pool.run_batch(batch.clone(), f64::INFINITY));
            best_exact = best_exact.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            std::hint::black_box(pool.run_batch_two_tier(batch.clone(), cutoff, &sur));
            best_tiered = best_tiered.min(t.elapsed().as_secs_f64());
        }
    });

    let exact_ns = best_exact * 1e9 / batch.len() as f64;
    let tiered_ns = best_tiered * 1e9 / batch.len() as f64;
    println!(
        "PERF_GUARD all_exact_ns_per_eval={exact_ns:.1} two_tier_ns_per_eval={tiered_ns:.1} \
         screen_rate={:.4} speedup={:.2}",
        screened as f64 / batch.len() as f64,
        exact_ns / tiered_ns
    );
    assert!(
        best_tiered * REQUIRED_SPEEDUP <= best_exact,
        "two-tier pipeline regressed: {tiered_ns:.1} ns/eval vs pooled all-exact {exact_ns:.1} \
         ns/eval (need ≥{REQUIRED_SPEEDUP}×)"
    );
}

#[test]
#[ignore = "wall-clock guard; run in release via scripts/ci.sh"]
fn flight_recorder_overhead_stays_within_budget() {
    const LAMBDA: usize = 25;
    const ROUNDS: usize = 40;
    // Each timed pass repeats the λ-batch this many times — passes in the
    // hundreds of microseconds make the min-of-k far less jittery than a
    // single ~180µs batch on a shared host.
    const REPS: usize = 4;
    // The observability contract is ≤5% overhead with the flight recorder
    // live on the mapper loop. Quiet-machine runs measure ~3%, but this
    // container shares its host and min-of-k still swings several percent
    // either way, so the gate allows 15% — tight enough to catch a
    // wholesale regression of the push fast path (the per-event
    // `Weak::upgrade` it replaced cost that much on a *quiet* machine),
    // loose enough not to flake on a noisy neighbour.
    const MAX_RATIO: f64 = 1.15;

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let g = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let cluster = grelon();
    let matrix = TimeMatrix::compute(
        &g,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );
    let allocs: Vec<Allocation> = (0..LAMBDA)
        .map(|_| {
            Allocation::from_vec(
                (0..g.task_count())
                    .map(|_| rng.gen_range(1..=cluster.processors))
                    .collect(),
            )
        })
        .collect();
    let mut scratch = EvalScratch::with_capacity(g.task_count(), cluster.processors);

    fn pass<R: Recorder>(
        g: &ptg::Ptg,
        matrix: &TimeMatrix,
        allocs: &[Allocation],
        scratch: &mut EvalScratch,
        rec: &R,
    ) -> f64 {
        let t = Instant::now();
        for _ in 0..REPS {
            for a in allocs {
                std::hint::black_box(ListScheduler.evaluate_bounded_obs(
                    g,
                    matrix,
                    a,
                    f64::INFINITY,
                    scratch,
                    rec,
                ));
            }
        }
        t.elapsed().as_secs_f64()
    }

    // Ring big enough that the measured pushes never wrap — wrap cost is
    // the saturation measurement in `emts-obsbench`, not this budget.
    let flight = FlightRecorder::with_capacity(1 << 22);
    let _ = pass(&g, &matrix, &allocs, &mut scratch, &NoopRecorder);
    let _ = pass(&g, &matrix, &allocs, &mut scratch, &flight);

    // Interleaved min-of-k against the compiled-out baseline, same
    // discipline as the other guards.
    let mut best_noop = f64::INFINITY;
    let mut best_flight = f64::INFINITY;
    for _ in 0..ROUNDS {
        best_noop = best_noop.min(pass(&g, &matrix, &allocs, &mut scratch, &NoopRecorder));
        best_flight = best_flight.min(pass(&g, &matrix, &allocs, &mut scratch, &flight));
    }

    let noop_ns = best_noop * 1e9 / (LAMBDA * REPS) as f64;
    let flight_ns = best_flight * 1e9 / (LAMBDA * REPS) as f64;
    println!(
        "PERF_GUARD noop_ns_per_eval={noop_ns:.1} flight_ns_per_eval={flight_ns:.1} \
         overhead_pct={:.2}",
        (best_flight / best_noop - 1.0) * 100.0
    );
    assert!(
        best_flight <= best_noop * MAX_RATIO,
        "flight recorder overhead regressed: {flight_ns:.1} ns/eval vs noop {noop_ns:.1} \
         ns/eval (budget {:.0}%)",
        (MAX_RATIO - 1.0) * 100.0
    );
}

#[test]
#[ignore = "wall-clock guard; run in release via scripts/ci.sh"]
fn soa_core_is_faster_than_the_reference_oracle() {
    const EVALS: usize = 400;
    const ROUNDS: usize = 7;
    // The oracle keeps one heap entry per *processor* (the pre-grouping
    // design), so on P=120 the SoA grouped core measures ~80× faster
    // here; 10× leaves an order of magnitude for noisy CI hosts while
    // still catching any wholesale regression of the packed-heap/CSR
    // core. (Against the grouped-BinaryHeap core it replaced, the SoA
    // core measures ~1.8× — that comparison lives in BENCH_fitness.json's
    // `list_makespan_only/Grelon_n100` history, not here, because the old
    // grouped core no longer exists in-tree.)
    const REQUIRED_SPEEDUP: f64 = 10.0;

    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let costs = CostConfig::default();
    let g = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let cluster = grelon();
    let matrix = TimeMatrix::compute(
        &g,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );
    let alloc = Allocation::from_vec(
        (0..g.task_count())
            .map(|_| rng.gen_range(1..=cluster.processors))
            .collect(),
    );
    let mut scratch = EvalScratch::new();

    // Interleaved min-of-k, same discipline as the delta guard.
    let mut best_soa = f64::INFINITY;
    let mut best_oracle = f64::INFINITY;
    let mut check = 0u64;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..EVALS {
            let m = ListScheduler
                .makespan_bounded_with(&g, &matrix, &alloc, f64::INFINITY, &mut scratch)
                .expect("infinite cutoff never rejects");
            check ^= m.to_bits();
        }
        best_soa = best_soa.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for _ in 0..EVALS {
            let m = ListScheduler
                .makespan_bounded_reference(&g, &matrix, &alloc, f64::INFINITY)
                .expect("infinite cutoff never rejects");
            check ^= m.to_bits();
        }
        best_oracle = best_oracle.min(t.elapsed().as_secs_f64());
    }
    std::hint::black_box(check);

    let soa_ns = best_soa * 1e9 / EVALS as f64;
    let oracle_ns = best_oracle * 1e9 / EVALS as f64;
    println!(
        "PERF_GUARD soa_ns_per_eval={soa_ns:.1} oracle_ns_per_eval={oracle_ns:.1} \
         speedup={:.2}",
        oracle_ns / soa_ns
    );
    assert!(
        best_soa * REQUIRED_SPEEDUP <= best_oracle,
        "SoA core regressed: {soa_ns:.1} ns/eval vs oracle {oracle_ns:.1} ns/eval \
         (need ≥{REQUIRED_SPEEDUP}×)"
    );
}
