//! Property-based equivalence of every fitness-evaluation path.
//!
//! The evaluation engine (scratch reuse, persistent pool, memo cache) is a
//! pure performance layer: on random DAGGEN PTGs and random allocations,
//! fresh-serial, scratch-reuse, scoped-parallel, pooled-parallel, and
//! memoized evaluation must return *identical* makespans — including the
//! accept/reject decision under rejection cutoffs, and including cache hits
//! answered at a different cutoff than the one they were computed under.

use emts::parallel::{evaluate_fitness_bounded, EvalPool, FitnessEngine};
use emts::trace::GenerationStats;
use emts::{Emts, EmtsConfig, EmtsResult, MutationOperator};
use exec_model::{Amdahl, SyntheticModel, TimeMatrix};
use obs::NoopRecorder;
use proptest::prelude::*;
use ptg::critpath::BlRepairer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, BoundedEval, EvalScratch, ListScheduler, Surrogate};
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn scenario() -> impl Strategy<Value = (u64, usize, u32, f64)> {
    // (graph/allocation seed, task count, platform size, cutoff factor
    // around the batch median)
    (0u64..1 << 40, 8usize..40, 4u32..64, 0.5f64..1.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_fitness_paths_agree_exactly((seed, n, p, cutoff_factor) in scenario()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let params = DaggenParams {
            n,
            width: 0.5,
            regularity: 0.4,
            density: 0.3,
            jump: 2,
        };
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, p);
        let tasks = g.task_count();
        let allocs: Vec<Allocation> = (0..12)
            .map(|_| Allocation::from_vec((0..tasks).map(|_| rng.gen_range(1..=p)).collect()))
            .collect();

        let exact: Vec<f64> = allocs
            .iter()
            .map(|a| sched::Mapper::makespan(&ListScheduler, &g, &m, a))
            .collect();
        let mut sorted = exact.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
        let median = sorted[sorted.len() / 2];

        for cutoff in [f64::INFINITY, median * cutoff_factor] {
            // Reference: a fresh allocation of every buffer per call.
            let fresh: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded(&g, &m, a, cutoff))
                .collect();

            // The per-processor oracle: the pre-optimization core that keeps
            // one heap entry per processor instead of grouped runs. The
            // grouped fitness core must agree bit-for-bit, accept and
            // reject alike.
            let reference: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded_reference(&g, &m, a, cutoff))
                .collect();
            prop_assert_eq!(&reference, &fresh);

            // One scratch reused across the whole batch.
            let mut scratch = EvalScratch::new();
            let scratched: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded_with(&g, &m, a, cutoff, &mut scratch))
                .collect();
            prop_assert_eq!(&fresh, &scratched);

            // The legacy scope-per-call parallel path.
            let scoped = evaluate_fitness_bounded(&g, &m, &allocs, true, cutoff);
            prop_assert_eq!(&fresh, &scoped);

            // The persistent pool, parallel and serial.
            for parallel in [true, false] {
                let pooled = EvalPool::with(&g, &m, parallel, |pool| {
                    pool.run_batch(allocs.clone(), cutoff)
                        .into_iter()
                        .map(|o| match o {
                            BoundedEval::Complete { makespan, .. } => Some(makespan),
                            BoundedEval::Rejected => None,
                        })
                        .collect::<Vec<_>>()
                });
                prop_assert_eq!(&fresh, &pooled, "parallel={}", parallel);
            }

            // The memoizing engine: first pass (all misses), second pass
            // (all hits for completed entries) must both match.
            EvalPool::with(&g, &m, false, |pool| {
                let mut engine = FitnessEngine::new(pool);
                let first = engine.evaluate(&allocs, cutoff);
                let second = engine.evaluate(&allocs, cutoff);
                assert_eq!(first, fresh, "engine first pass diverged");
                assert_eq!(second, fresh, "engine cached pass diverged");
            });
        }

        // Cross-cutoff memoization: warm the cache with completions at an
        // infinite cutoff, then query at the tight cutoff — every answer is
        // a cache hit and must reproduce the engine's own decision.
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let _ = engine.evaluate(&allocs, f64::INFINITY);
            let misses = engine.cache_misses();
            let tight = median * cutoff_factor;
            let cached = engine.evaluate(&allocs, tight);
            assert_eq!(engine.cache_misses(), misses, "expected pure cache hits");
            let fresh: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded(&g, &m, a, tight))
                .collect();
            assert_eq!(cached, fresh, "cached cutoff decision diverged");
        });
    }

    /// The incremental path — recorded parent, repaired bottom levels,
    /// lower-bound prescreen, prefix-checkpoint replay — must be
    /// bit-identical to a fresh bounded evaluation along whole mutation
    /// chains, where each accepted offspring becomes the next recorded
    /// parent. When the prescreen fires, the offspring's true makespan must
    /// indeed exceed the cutoff (the prune is a proof, not a heuristic).
    #[test]
    fn delta_chains_match_fresh_evaluation((seed, n, p, cutoff_factor) in scenario()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9);
        let params = DaggenParams {
            n,
            width: 0.5,
            regularity: 0.4,
            density: 0.3,
            jump: 2,
        };
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, p);
        let tasks = g.task_count();
        let op = MutationOperator::paper();
        let mut scratch = EvalScratch::new();
        let mut repairer = BlRepairer::new(&g);

        let mut parent =
            Allocation::from_vec((0..tasks).map(|_| rng.gen_range(1..=p)).collect());
        let mut record =
            ListScheduler.evaluate_recorded(&g, &m, &parent, &mut scratch, &NoopRecorder);
        prop_assert_eq!(
            record.makespan().to_bits(),
            sched::Mapper::makespan(&ListScheduler, &g, &m, &parent).to_bits()
        );
        let mut pruned_seen = 0usize;
        for step in 0..10 {
            let mut child = parent.clone();
            let mutated = 1 + step % 5;
            let changed = op.mutate(&mut child, mutated, p, &mut rng);
            // Alternate unconstrained and tight cutoffs along the chain;
            // tight ones exercise the prescreen and mid-prefix rejections.
            let cutoff = if step % 2 == 0 {
                f64::INFINITY
            } else {
                record.makespan() * cutoff_factor
            };
            let delta = ListScheduler.evaluate_delta(
                &g,
                &m,
                &record,
                &child,
                &changed,
                cutoff,
                &mut scratch,
                &mut repairer,
                &NoopRecorder,
            );
            let fresh = ListScheduler.makespan_bounded(&g, &m, &child, cutoff);
            match (delta.outcome, fresh) {
                (BoundedEval::Complete { makespan, .. }, Some(f)) => {
                    prop_assert_eq!(makespan.to_bits(), f.to_bits(), "step {}", step);
                }
                (BoundedEval::Rejected, None) => {}
                (d, f) => prop_assert!(false, "step {}: delta {:?} vs fresh {:?}", step, d, f),
            }
            if delta.lb_pruned {
                pruned_seen += 1;
                let true_ms = sched::Mapper::makespan(&ListScheduler, &g, &m, &child);
                prop_assert!(
                    true_ms > cutoff,
                    "LB-pruned offspring has makespan {} ≤ cutoff {}",
                    true_ms,
                    cutoff
                );
            }
            // The chain continues from the child regardless of the cutoff
            // outcome (the EA re-records only survivors; here we stress the
            // machinery on every link).
            record = ListScheduler.evaluate_recorded(&g, &m, &child, &mut scratch, &NoopRecorder);
            parent = child;
        }
        // Not every chain prunes — but the counter must never exceed the
        // tight-cutoff steps.
        prop_assert!(pruned_seen <= 5);
    }

    /// Tier-1 screening must be *provably* invisible: on random DAGGEN
    /// PTGs under both execution models, the two-tier engine's per-batch
    /// answers and the EA's per-generation survivors are bit-identical to
    /// the all-exact run — at infinite and tight rejection cutoffs, on the
    /// pooled path, and on the degraded-pool (0-worker) batch path.
    #[test]
    fn survivors_bit_identical_two_tier_vs_exact((seed, n, p, cutoff_factor) in scenario()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x51ed_2701);
        let params = DaggenParams {
            n,
            width: 0.5,
            regularity: 0.4,
            density: 0.3,
            jump: 2,
        };
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let tasks = g.task_count();
        let sur = Surrogate::default();
        for model2 in [false, true] {
            let m = if model2 {
                TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, p)
            } else {
                TimeMatrix::compute(&g, &Amdahl, 3.1e9, p)
            };

            // Engine level: raw batches at an unconstrained and a tight
            // cutoff. Screened offspring and exact rejections both surface
            // as None, so whole result vectors must coincide.
            let allocs: Vec<Allocation> = (0..12)
                .map(|_| Allocation::from_vec((0..tasks).map(|_| rng.gen_range(1..=p)).collect()))
                .collect();
            let exact: Vec<f64> = allocs
                .iter()
                .map(|a| sched::Mapper::makespan(&ListScheduler, &g, &m, a))
                .collect();
            let mut sorted = exact.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
            let median = sorted[sorted.len() / 2];
            for cutoff in [f64::INFINITY, median * cutoff_factor] {
                for parallel in [true, false] {
                    let all_exact = EvalPool::with(&g, &m, parallel, |pool| {
                        let mut e = FitnessEngine::new(pool);
                        e.evaluate(&allocs, cutoff)
                    });
                    let tiered = EvalPool::with(&g, &m, parallel, |pool| {
                        let mut e = FitnessEngine::new(pool);
                        e.evaluate_two_tier(&allocs, cutoff, &sur)
                    });
                    prop_assert_eq!(
                        &all_exact, &tiered,
                        "model2={} cutoff={} parallel={}", model2, cutoff, parallel
                    );
                }
            }

            // EA level: whole mutation chains with the rejection strategy
            // active, so tier 1 sees both the survival and the rejection
            // cutoff. Survivor summaries must match generation by
            // generation.
            let cfg = EmtsConfig {
                mu: 4,
                lambda: 10,
                generations: 4,
                rejection: true,
                rejection_slack: 0.5 + cutoff_factor,
                ..EmtsConfig::default()
            };
            let ea_seed = seed ^ u64::from(model2);
            let base = Emts::new(cfg.clone()).run_with_workers(&g, &m, ea_seed, 2, &NoopRecorder);
            let tiered = Emts::new(EmtsConfig {
                two_tier: true,
                ..cfg.clone()
            })
            .run_with_workers(&g, &m, ea_seed, 2, &NoopRecorder);
            // Serial pool (0 workers) falls back to the delta path, where
            // two-tier is inert by design — the trajectory must still agree.
            let serial = Emts::new(EmtsConfig {
                two_tier: true,
                ..cfg
            })
            .run_with_workers(&g, &m, ea_seed, 0, &NoopRecorder);
            let keys = |r: &EmtsResult| {
                r.trace
                    .iter()
                    .map(GenerationStats::fitness_key)
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(base.best.as_slice(), tiered.best.as_slice());
            prop_assert_eq!(base.best_makespan.to_bits(), tiered.best_makespan.to_bits());
            prop_assert_eq!(keys(&base), keys(&tiered), "model2={}", model2);
            prop_assert_eq!(base.rejected, tiered.rejected);
            prop_assert_eq!(base.pruned, tiered.pruned);
            prop_assert_eq!(keys(&base), keys(&serial), "serial path model2={}", model2);
            prop_assert_eq!(serial.trace.surrogate_evals, 0, "delta path must not consult tier 1");
        }
    }
}
