//! Property-based equivalence of every fitness-evaluation path.
//!
//! The evaluation engine (scratch reuse, persistent pool, memo cache) is a
//! pure performance layer: on random DAGGEN PTGs and random allocations,
//! fresh-serial, scratch-reuse, scoped-parallel, pooled-parallel, and
//! memoized evaluation must return *identical* makespans — including the
//! accept/reject decision under rejection cutoffs, and including cache hits
//! answered at a different cutoff than the one they were computed under.

use emts::parallel::{evaluate_fitness_bounded, EvalPool, FitnessEngine};
use exec_model::{SyntheticModel, TimeMatrix};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, BoundedEval, EvalScratch, ListScheduler};
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn scenario() -> impl Strategy<Value = (u64, usize, u32, f64)> {
    // (graph/allocation seed, task count, platform size, cutoff factor
    // around the batch median)
    (0u64..1 << 40, 8usize..40, 4u32..64, 0.5f64..1.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_fitness_paths_agree_exactly((seed, n, p, cutoff_factor) in scenario()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let params = DaggenParams {
            n,
            width: 0.5,
            regularity: 0.4,
            density: 0.3,
            jump: 2,
        };
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, p);
        let tasks = g.task_count();
        let allocs: Vec<Allocation> = (0..12)
            .map(|_| Allocation::from_vec((0..tasks).map(|_| rng.gen_range(1..=p)).collect()))
            .collect();

        let exact: Vec<f64> = allocs
            .iter()
            .map(|a| sched::Mapper::makespan(&ListScheduler, &g, &m, a))
            .collect();
        let mut sorted = exact.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
        let median = sorted[sorted.len() / 2];

        for cutoff in [f64::INFINITY, median * cutoff_factor] {
            // Reference: a fresh allocation of every buffer per call.
            let fresh: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded(&g, &m, a, cutoff))
                .collect();

            // The per-processor oracle: the pre-optimization core that keeps
            // one heap entry per processor instead of grouped runs. The
            // grouped fitness core must agree bit-for-bit, accept and
            // reject alike.
            let reference: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded_reference(&g, &m, a, cutoff))
                .collect();
            prop_assert_eq!(&reference, &fresh);

            // One scratch reused across the whole batch.
            let mut scratch = EvalScratch::new();
            let scratched: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded_with(&g, &m, a, cutoff, &mut scratch))
                .collect();
            prop_assert_eq!(&fresh, &scratched);

            // The legacy scope-per-call parallel path.
            let scoped = evaluate_fitness_bounded(&g, &m, &allocs, true, cutoff);
            prop_assert_eq!(&fresh, &scoped);

            // The persistent pool, parallel and serial.
            for parallel in [true, false] {
                let pooled = EvalPool::with(&g, &m, parallel, |pool| {
                    pool.run_batch(allocs.clone(), cutoff)
                        .into_iter()
                        .map(|o| match o {
                            BoundedEval::Complete { makespan, .. } => Some(makespan),
                            BoundedEval::Rejected => None,
                        })
                        .collect::<Vec<_>>()
                });
                prop_assert_eq!(&fresh, &pooled, "parallel={}", parallel);
            }

            // The memoizing engine: first pass (all misses), second pass
            // (all hits for completed entries) must both match.
            EvalPool::with(&g, &m, false, |pool| {
                let mut engine = FitnessEngine::new(pool);
                let first = engine.evaluate(&allocs, cutoff);
                let second = engine.evaluate(&allocs, cutoff);
                assert_eq!(first, fresh, "engine first pass diverged");
                assert_eq!(second, fresh, "engine cached pass diverged");
            });
        }

        // Cross-cutoff memoization: warm the cache with completions at an
        // infinite cutoff, then query at the tight cutoff — every answer is
        // a cache hit and must reproduce the engine's own decision.
        EvalPool::with(&g, &m, false, |pool| {
            let mut engine = FitnessEngine::new(pool);
            let _ = engine.evaluate(&allocs, f64::INFINITY);
            let misses = engine.cache_misses();
            let tight = median * cutoff_factor;
            let cached = engine.evaluate(&allocs, tight);
            assert_eq!(engine.cache_misses(), misses, "expected pure cache hits");
            let fresh: Vec<Option<f64>> = allocs
                .iter()
                .map(|a| ListScheduler.makespan_bounded(&g, &m, a, tight))
                .collect();
            assert_eq!(cached, fresh, "cached cutoff decision diverged");
        });
    }
}
