//! Property-based bit-identity of the SoA fitness core against the
//! pre-refactor oracle.
//!
//! The struct-of-arrays refactor (CSR adjacency, packed `u128` heaps,
//! branchless sifts) must be a pure representation change:
//! `makespan_bounded_reference` keeps the original comparator-driven
//! `BinaryHeap`s and pointer adjacency, and every production path — the
//! grouped core, the recorded/delta incremental path, the rescheduler —
//! has to reproduce its results *bit for bit* on random DAGGEN PTGs,
//! under **both** execution-time models (Amdahl and the synthetic Model
//! 2), accept and reject alike. `prop_fitness.rs` covers the engine
//! plumbing on the synthetic model; this suite pins the core itself on
//! both models.

use exec_model::{Amdahl, ExecutionTimeModel, SyntheticModel, TimeMatrix};
use obs::{NoopRecorder, StatsRecorder};
use proptest::prelude::*;
use ptg::critpath::BlRepairer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{
    Allocation, BoundedEval, EvalScratch, ListScheduler, Mapper, Rescheduler, ResumeState,
};
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn scenario() -> impl Strategy<Value = (u64, usize, u32, f64)> {
    // (seed, task count, platform size, cutoff factor around the median)
    (0u64..1 << 40, 6usize..48, 3u32..72, 0.5f64..1.5)
}

fn graph(seed: u64, n: usize) -> (ptg::Ptg, ChaCha8Rng) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let params = DaggenParams {
        n,
        width: 0.6,
        regularity: 0.3,
        density: 0.4,
        jump: 3,
    };
    let g = random_ptg(&params, &CostConfig::default(), &mut rng);
    (g, rng)
}

/// Both execution-time models, by name (for assertion messages).
fn models() -> [(&'static str, Box<dyn ExecutionTimeModel>); 2] {
    [
        ("amdahl", Box::new(Amdahl)),
        ("synthetic", Box::<SyntheticModel>::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grouped SoA core vs per-processor oracle: identical `Option<f64>`
    /// results (down to the bit pattern) at unconstrained and tight
    /// cutoffs, on both models — and the instrumented variant both agrees
    /// and reports a full schedule's worth of ready-queue pops.
    #[test]
    fn soa_core_matches_oracle_on_both_models((seed, n, p, cutoff_factor) in scenario()) {
        let (g, mut rng) = graph(seed, n);
        for (model_name, model) in models() {
            let m = TimeMatrix::compute(&g, model.as_ref(), 3.1e9, p);
            let allocs: Vec<Allocation> = (0..8)
                .map(|_| {
                    Allocation::from_vec((0..g.task_count()).map(|_| rng.gen_range(1..=p)).collect())
                })
                .collect();
            let exact: Vec<f64> = allocs
                .iter()
                .map(|a| ListScheduler.makespan(&g, &m, a))
                .collect();
            let mut sorted = exact.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
            let median = sorted[sorted.len() / 2];

            for cutoff in [f64::INFINITY, median * cutoff_factor] {
                for a in &allocs {
                    let oracle = ListScheduler.makespan_bounded_reference(&g, &m, a, cutoff);
                    let soa = ListScheduler.makespan_bounded(&g, &m, a, cutoff);
                    prop_assert_eq!(
                        soa.map(f64::to_bits),
                        oracle.map(f64::to_bits),
                        "model {} cutoff {}",
                        model_name,
                        cutoff
                    );

                    let stats = StatsRecorder::new();
                    let mut scratch = EvalScratch::new();
                    let obs =
                        ListScheduler.evaluate_bounded_obs(&g, &m, a, cutoff, &mut scratch, &stats);
                    match (obs, oracle) {
                        (BoundedEval::Complete { makespan, .. }, Some(o)) => {
                            prop_assert_eq!(makespan.to_bits(), o.to_bits());
                            prop_assert_eq!(
                                stats.counter("sched.tasks_placed"),
                                g.task_count() as u64,
                                "a completed run places every task exactly once"
                            );
                        }
                        (BoundedEval::Rejected, None) => {
                            prop_assert!(stats.counter("sched.rejections") >= 1);
                        }
                        (got, want) => prop_assert!(
                            false,
                            "model {}: instrumented {:?} vs oracle {:?}",
                            model_name,
                            got,
                            want
                        ),
                    }
                }
            }
        }
    }

    /// The full-schedule path (placements, not just makespans) agrees with
    /// the oracle makespan, and the rescheduler's from-scratch replan —
    /// which shares only the CSR adjacency with the SoA core — reproduces
    /// the very same starts and finishes on both models.
    #[test]
    fn full_schedules_and_fresh_replans_agree((seed, n, p, _cf) in scenario()) {
        let (g, mut rng) = graph(seed ^ 0x5ca1_ab1e, n);
        for (model_name, model) in models() {
            let m = TimeMatrix::compute(&g, model.as_ref(), 3.1e9, p);
            let alloc = Allocation::from_vec(
                (0..g.task_count()).map(|_| rng.gen_range(1..=p)).collect(),
            );
            let schedule = ListScheduler.map(&g, &m, &alloc);
            let oracle = ListScheduler
                .makespan_bounded_reference(&g, &m, &alloc, f64::INFINITY)
                .expect("infinite cutoff never rejects");
            prop_assert_eq!(
                schedule.makespan().to_bits(),
                oracle.to_bits(),
                "model {}",
                model_name
            );

            let state = ResumeState::fresh(g.task_count(), p as usize, 0.0);
            let replan = Rescheduler
                .reschedule(&g, &m, &alloc, &state)
                .expect("live platform");
            prop_assert_eq!(replan.len(), g.task_count());
            for pl in &replan {
                let want = schedule.placement(pl.task);
                prop_assert_eq!(pl.start.to_bits(), want.start.to_bits(), "model {}", model_name);
                prop_assert_eq!(pl.finish.to_bits(), want.finish.to_bits(), "model {}", model_name);
            }
        }
    }

    /// The incremental path on the Amdahl model (`prop_fitness.rs` runs
    /// the synthetic one): recorded evaluation, checkpoint-replayed delta
    /// chains and their accept/reject decisions all match the oracle bit
    /// for bit.
    #[test]
    fn delta_chains_match_oracle_under_amdahl((seed, n, p, cutoff_factor) in scenario()) {
        let (g, mut rng) = graph(seed ^ 0x00dd_ba11, n);
        let m = TimeMatrix::compute(&g, &Amdahl, 3.1e9, p);
        let op = emts::MutationOperator::paper();
        let mut scratch = EvalScratch::new();
        let mut repairer = BlRepairer::new(&g);

        let mut parent = Allocation::from_vec(
            (0..g.task_count()).map(|_| rng.gen_range(1..=p)).collect(),
        );
        let mut record =
            ListScheduler.evaluate_recorded(&g, &m, &parent, &mut scratch, &NoopRecorder);
        prop_assert_eq!(
            record.makespan().to_bits(),
            ListScheduler
                .makespan_bounded_reference(&g, &m, &parent, f64::INFINITY)
                .expect("infinite cutoff never rejects")
                .to_bits()
        );
        for step in 0..6 {
            let mut child = parent.clone();
            let changed = op.mutate(&mut child, 1 + step % 4, p, &mut rng);
            let cutoff = if step % 2 == 0 {
                f64::INFINITY
            } else {
                record.makespan() * cutoff_factor
            };
            let delta = ListScheduler.evaluate_delta(
                &g,
                &m,
                &record,
                &child,
                &changed,
                cutoff,
                &mut scratch,
                &mut repairer,
                &NoopRecorder,
            );
            let oracle = ListScheduler.makespan_bounded_reference(&g, &m, &child, cutoff);
            match (delta.outcome, oracle) {
                (BoundedEval::Complete { makespan, .. }, Some(o)) => {
                    prop_assert_eq!(makespan.to_bits(), o.to_bits(), "step {}", step);
                }
                (BoundedEval::Rejected, None) => {}
                (d, o) => prop_assert!(false, "step {}: delta {:?} vs oracle {:?}", step, d, o),
            }
            record =
                ListScheduler.evaluate_recorded(&g, &m, &child, &mut scratch, &NoopRecorder);
            parent = child;
        }
    }
}
