//! End-to-end self-healing: an EMTS run whose workers misbehave must
//! neither hang nor abort, and must produce the exact result of a healthy
//! (serial) run — the pool's recovery machinery re-evaluates everything a
//! worker failed to deliver.
//!
//! The sabotage hooks are process-global, so every test here serializes on
//! one mutex and disarms on exit.

use emts::parallel::sabotage;
use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use obs::StatsRecorder;
use ptg::Ptg;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Mutex, MutexGuard, PoisonError};
use workloads::{fft::fft_ptg, CostConfig};

fn setup() -> (Ptg, TimeMatrix) {
    let g = fft_ptg(
        8,
        &CostConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(21),
    );
    let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 4.3e9, 20);
    (g, m)
}

/// Serializes the sabotage tests and silences the expected panic spew
/// (every injected failure would otherwise print a backtrace).
fn sabotage_session() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info.payload().downcast_ref::<&str>().copied();
            if msg.is_some_and(|m| m.starts_with("sabotage:")) {
                return;
            }
            default(info);
        }));
    });
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn worker_panics_mid_run_leave_the_ea_result_intact() {
    let (g, m) = setup();
    let emts = Emts::new(EmtsConfig::emts5());
    let serial = emts.run(&g, &m, 7);

    let _session = sabotage_session();
    // Every worker evaluation panics for the whole run. The run must still
    // finish (no hang, no abort) with the serial path's exact result.
    let mut faulty = None;
    for _attempt in 0..5 {
        sabotage::arm_eval_panics(u64::MAX);
        let rec = StatsRecorder::new();
        let r = emts.run_with_workers(&g, &m, 7, 2, &rec);
        sabotage::disarm();
        // Thread scheduling decides whether a worker claimed any item; on
        // a loaded single-core machine the caller can drain every batch
        // first. Retry until a worker actually hit the sabotage.
        if r.trace.worker_panics > 0 {
            faulty = Some((r, rec.report("self-healing")));
            break;
        }
    }
    let (faulty, report) = faulty.expect("no worker claimed a single evaluation in 5 full EA runs");

    assert_eq!(faulty.best, serial.best);
    assert_eq!(
        faulty.best_makespan.to_bits(),
        serial.best_makespan.to_bits(),
        "sabotaged run diverged from the serial path"
    );
    assert_eq!(faulty.generations_run, serial.generations_run);
    assert!(faulty.trace.worker_panics > 0);
    assert_eq!(
        faulty.trace.worker_panics, faulty.trace.serial_fallbacks,
        "every panicked item must be refilled exactly once"
    );
    // The counters surface in the observability report too.
    assert!(report.counters["pool.worker_panics"] > 0);
    assert!(report.counters["pool.serial_fallbacks"] > 0);
}

#[test]
fn worker_death_mid_run_stalls_heals_and_preserves_the_result() {
    let (g, m) = setup();
    let emts = Emts::new(EmtsConfig::emts5());
    let serial = emts.run(&g, &m, 11);

    let _session = sabotage_session();
    let mut healed = None;
    for _attempt in 0..5 {
        sabotage::arm_worker_deaths(1);
        let rec = StatsRecorder::new();
        let r = emts.run_with_workers(&g, &m, 11, 2, &rec);
        sabotage::disarm();
        if r.trace.pool_respawns > 0 {
            healed = Some(r);
            break;
        }
    }
    let healed = healed.expect("no worker claimed a single item in 5 full EA runs");

    assert_eq!(healed.best, serial.best);
    assert_eq!(
        healed.best_makespan.to_bits(),
        serial.best_makespan.to_bits(),
        "run with a mid-run worker death diverged from the serial path"
    );
    assert_eq!(healed.trace.pool_respawns, 1);
    assert!(
        healed.trace.serial_fallbacks >= 1,
        "the orphaned claim must be refilled by the caller"
    );
}

#[test]
fn forced_worker_counts_are_bit_identical_to_serial() {
    let (g, m) = setup();
    let _session = sabotage_session(); // results are sabotage-sensitive
    let emts = Emts::new(EmtsConfig::emts5());
    let serial = emts.run(&g, &m, 3);
    for workers in [1, 2, 4] {
        let r = emts.run_with_workers(&g, &m, 3, workers, &obs::NoopRecorder);
        assert_eq!(r.best, serial.best, "workers={workers}");
        assert_eq!(
            r.best_makespan.to_bits(),
            serial.best_makespan.to_bits(),
            "workers={workers}"
        );
        assert_eq!(r.trace.worker_panics, 0);
        assert_eq!(r.trace.pool_respawns, 0);
    }
}
