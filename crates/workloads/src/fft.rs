//! FFT parallel task graphs.
//!
//! The FFT PTG (Cormen et al.; also in Suter's DAG suite and Hall et al.)
//! consists of a binary *recursion tree* fanning out from a single source to
//! `k` leaves, followed by `log₂ k` *butterfly* stages of `k` tasks each.
//! For the paper's "levels" parameter `k ∈ {2, 4, 8, 16}` the task counts
//! are `k·log₂ k + 2k − 1` = 5, 15, 39, 95 — exactly the counts in §IV-C.

use crate::costs::CostConfig;
use ptg::{Ptg, PtgBuilder, TaskId};
use rand::Rng;

/// Expected task count for an FFT PTG with parameter `k` (a power of two).
pub fn fft_task_count(k: u32) -> usize {
    let k = k as usize;
    let log = k.trailing_zeros() as usize;
    k * log + 2 * k - 1
}

/// Builds an FFT PTG with `k` leaves (`k` must be a power of two ≥ 2) and
/// random task costs drawn from `costs`.
pub fn fft_ptg<R: Rng + ?Sized>(k: u32, costs: &CostConfig, rng: &mut R) -> Ptg {
    assert!(
        k >= 2 && k.is_power_of_two(),
        "k must be a power of two ≥ 2"
    );
    let log_k = k.trailing_zeros();
    let mut b = PtgBuilder::with_capacity(fft_task_count(k));
    let add = |b: &mut PtgBuilder, name: String, rng: &mut R| -> TaskId {
        let c = costs.sample(rng);
        b.add_task(name, c.flop, c.alpha)
    };

    // Recursion tree: level t has 2^t nodes, t = 0..=log_k; level log_k are
    // the leaves feeding the butterfly stages.
    let mut tree_levels: Vec<Vec<TaskId>> = Vec::with_capacity(log_k as usize + 1);
    for t in 0..=log_k {
        let width = 1u32 << t;
        let level: Vec<TaskId> = (0..width)
            .map(|i| add(&mut b, format!("split_{t}_{i}"), rng))
            .collect();
        if let Some(parents) = tree_levels.last() {
            for (i, &child) in level.iter().enumerate() {
                b.add_edge(parents[i / 2], child).expect("fresh edge");
            }
        }
        tree_levels.push(level);
    }

    // Butterfly stages: stage s (0-based) connects node i of the previous
    // row to nodes i and i XOR 2^s of the current row.
    let mut prev: Vec<TaskId> = tree_levels.last().expect("tree has levels").clone();
    for s in 0..log_k {
        let stage: Vec<TaskId> = (0..k)
            .map(|i| add(&mut b, format!("bfly_{s}_{i}"), rng))
            .collect();
        for (i, &node) in stage.iter().enumerate() {
            let partner = i ^ (1usize << s);
            b.add_edge(prev[i], node).expect("fresh edge");
            b.add_edge(prev[partner], node).expect("fresh edge");
        }
        prev = stage;
    }

    b.build().expect("FFT construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptg::analysis::shape_stats;
    use ptg::levels::PrecedenceLevels;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn task_counts_match_the_paper() {
        // "We use FFT PTGs with 2, 4, 8, and 16 levels, which lead to 5, 15,
        // 39, or 95 tasks respectively."
        assert_eq!(fft_task_count(2), 5);
        assert_eq!(fft_task_count(4), 15);
        assert_eq!(fft_task_count(8), 39);
        assert_eq!(fft_task_count(16), 95);
        for k in [2u32, 4, 8, 16] {
            let g = fft_ptg(k, &CostConfig::default(), &mut rng());
            assert_eq!(g.task_count(), fft_task_count(k), "k = {k}");
        }
    }

    #[test]
    fn single_source_and_k_sinks() {
        for k in [2u32, 4, 8] {
            let g = fft_ptg(k, &CostConfig::default(), &mut rng());
            assert_eq!(g.sources().len(), 1, "k = {k}");
            assert_eq!(g.sinks().len(), k as usize, "k = {k}");
        }
    }

    #[test]
    fn depth_is_two_log_k_plus_one_levels() {
        for k in [2u32, 4, 8, 16] {
            let g = fft_ptg(k, &CostConfig::default(), &mut rng());
            let lv = PrecedenceLevels::compute(&g);
            let log_k = k.trailing_zeros() as usize;
            assert_eq!(lv.level_count(), 2 * log_k + 1, "k = {k}");
            assert_eq!(lv.max_width(), k as usize);
        }
    }

    #[test]
    fn butterfly_nodes_have_two_parents() {
        let g = fft_ptg(8, &CostConfig::default(), &mut rng());
        let lv = PrecedenceLevels::compute(&g);
        let log_k = 3;
        for l in (log_k + 1)..lv.level_count() {
            for &v in lv.tasks_on_level(l) {
                assert_eq!(g.in_degree(v), 2, "butterfly {v} at level {l}");
            }
        }
    }

    #[test]
    fn graph_is_layered() {
        for k in [2u32, 4, 16] {
            let g = fft_ptg(k, &CostConfig::default(), &mut rng());
            assert!(ptg::levels::is_layered(&g), "k = {k}");
        }
    }

    #[test]
    fn generation_is_seed_deterministic_in_structure_and_costs() {
        let a = fft_ptg(8, &CostConfig::default(), &mut rng());
        let b = fft_ptg(8, &CostConfig::default(), &mut rng());
        assert_eq!(shape_stats(&a), shape_stats(&b));
        for (ta, tb) in a.tasks().iter().zip(b.tasks()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ_in_costs_not_shape() {
        let a = fft_ptg(8, &CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(1));
        let b = fft_ptg(8, &CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a
            .tasks()
            .iter()
            .zip(b.tasks())
            .any(|(x, y)| x.flop != y.flop));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = fft_ptg(6, &CostConfig::default(), &mut rng());
    }
}
