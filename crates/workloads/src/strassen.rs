//! Strassen matrix-multiplication task graph.
//!
//! One recursion level of Strassen's algorithm as a PTG (Hall et al.): a
//! source (splitting the input matrices), ten submatrix additions
//! `S1..S10`, seven recursive products `P1..P7`, four output combinations
//! `C11, C12, C21, C22`, and a sink assembling the result — 23 tasks in 5
//! precedence levels.
//!
//! The classic data flow (Strassen 1969):
//!
//! ```text
//! S1 = B12 − B22   S2 = A11 + A12   S3 = A21 + A22   S4 = B21 − B11
//! S5 = A11 + A22   S6 = B11 + B22   S7 = A12 − A22   S8 = B21 + B22
//! S9 = A11 − A21   S10 = B11 + B12
//! P1 = A11·S1  P2 = S2·B22  P3 = S3·B11  P4 = A22·S4
//! P5 = S5·S6   P6 = S7·S8   P7 = S9·S10
//! C11 = P5 + P4 − P2 + P6     C12 = P1 + P2
//! C21 = P3 + P4               C22 = P5 + P1 − P3 − P7
//! ```

use crate::costs::{CostConfig, CostPattern};
use ptg::{Ptg, PtgBuilder, TaskId};
use rand::Rng;

/// Number of tasks in the Strassen PTG.
pub const STRASSEN_TASKS: usize = 23;

/// Which product depends on which sums (indices into `S1..S10`, 0-based).
const PRODUCT_INPUTS: [&[usize]; 7] = [
    &[0],    // P1 ← S1 (and A11 from the source)
    &[1],    // P2 ← S2 (and B22)
    &[2],    // P3 ← S3 (and B11)
    &[3],    // P4 ← S4 (and A22)
    &[4, 5], // P5 ← S5, S6
    &[6, 7], // P6 ← S7, S8
    &[8, 9], // P7 ← S9, S10
];

/// Which combine depends on which products (0-based into `P1..P7`).
const COMBINE_INPUTS: [&[usize]; 4] = [
    &[4, 3, 1, 5], // C11 ← P5, P4, P2, P6
    &[0, 1],       // C12 ← P1, P2
    &[2, 3],       // C21 ← P3, P4
    &[4, 0, 2, 6], // C22 ← P5, P1, P3, P7
];

/// Builds the Strassen PTG with random task costs.
///
/// One `d` is drawn for the whole multiplication (the input size); the
/// additions get `Linear` costs on `d/4`-sized submatrices and the products
/// `MatMul` costs on `d/4`, so the products dominate — as in the real
/// algorithm. `α` is drawn per task.
pub fn strassen_ptg<R: Rng + ?Sized>(costs: &CostConfig, rng: &mut R) -> Ptg {
    let mut b = PtgBuilder::with_capacity(STRASSEN_TASKS);
    let d = rng.gen_range(costs.d_min..=costs.d_max);
    let quarter = (d / 4.0).max(2.0);

    let add_with = |b: &mut PtgBuilder, name: &str, pattern: CostPattern, rng: &mut R| {
        let c = costs.sample_with(rng, pattern, quarter);
        b.add_task(name, c.flop, c.alpha)
    };

    let source = add_with(&mut b, "split", CostPattern::Linear, rng);
    let sums: Vec<TaskId> = (1..=10)
        .map(|i| add_with(&mut b, &format!("S{i}"), CostPattern::Linear, rng))
        .collect();
    let products: Vec<TaskId> = (1..=7)
        .map(|i| add_with(&mut b, &format!("P{i}"), CostPattern::MatMul, rng))
        .collect();
    let combines: Vec<TaskId> = ["C11", "C12", "C21", "C22"]
        .iter()
        .map(|n| add_with(&mut b, n, CostPattern::Linear, rng))
        .collect();
    let sink = add_with(&mut b, "assemble", CostPattern::Linear, rng);

    for &s in &sums {
        b.add_edge(source, s).expect("fresh edge");
    }
    for (p, inputs) in products.iter().zip(PRODUCT_INPUTS) {
        for &i in inputs {
            b.add_edge(sums[i], *p).expect("fresh edge");
        }
        // P1..P4 also read a raw submatrix produced by the source; routing
        // that dependency through the source keeps the DAG layered without
        // adding a jump edge (the sums already depend on the source).
    }
    for (c, inputs) in combines.iter().zip(COMBINE_INPUTS) {
        for &i in inputs {
            b.add_edge(products[i], *c).expect("fresh edge");
        }
    }
    for &c in &combines {
        b.add_edge(c, sink).expect("fresh edge");
    }
    b.build().expect("Strassen construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptg::levels::PrecedenceLevels;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph() -> Ptg {
        strassen_ptg(&CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(3))
    }

    #[test]
    fn has_23_tasks_in_5_levels() {
        let g = graph();
        assert_eq!(g.task_count(), STRASSEN_TASKS);
        let lv = PrecedenceLevels::compute(&g);
        assert_eq!(lv.level_count(), 5);
        assert_eq!(
            (0..5)
                .map(|l| lv.tasks_on_level(l).len())
                .collect::<Vec<_>>(),
            vec![1, 10, 7, 4, 1]
        );
    }

    #[test]
    fn single_source_single_sink() {
        let g = graph();
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn is_layered() {
        assert!(ptg::levels::is_layered(&graph()));
    }

    #[test]
    fn products_dominate_the_work() {
        let g = graph();
        let lv = PrecedenceLevels::compute(&g);
        let product_flop: f64 = lv.tasks_on_level(2).iter().map(|&v| g.task(v).flop).sum();
        assert!(product_flop > 0.5 * g.total_flop());
    }

    #[test]
    fn strassen_dataflow_edge_spot_checks() {
        let g = graph();
        // names → ids
        let id = |name: &str| {
            g.task_ids()
                .find(|&v| g.task(v).name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert!(g.has_edge(id("S5"), id("P5")));
        assert!(g.has_edge(id("S6"), id("P5")));
        assert!(g.has_edge(id("P2"), id("C11")));
        assert!(g.has_edge(id("P2"), id("C12")));
        assert!(!g.has_edge(id("P1"), id("C21")));
        assert_eq!(g.in_degree(id("C11")), 4);
        assert_eq!(g.in_degree(id("C21")), 2);
    }

    #[test]
    fn edge_count_is_fixed() {
        // 10 (source→S) + (4·1 + 3·2) (S→P) + (4+2+2+4) (P→C) + 4 (C→sink)
        assert_eq!(graph().edge_count(), 10 + 10 + 12 + 4);
    }

    #[test]
    fn costs_differ_between_seeds_but_structure_is_fixed() {
        let a = strassen_ptg(&CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(1));
        let b = strassen_ptg(&CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a
            .tasks()
            .iter()
            .zip(b.tasks())
            .any(|(x, y)| x.flop != y.flop));
    }
}
