//! Classic parameterized DAG families from the scheduling literature.
//!
//! Beyond the paper's FFT/Strassen/DAGGEN corpus, these canonical shapes
//! are invaluable for unit tests with known optima and for probing where
//! schedulers break: chains (pure critical path), independent bags (pure
//! area), fork-join (both at once), out-trees (divide phases) and diamond
//! meshes (wavefront/stencil dependence).

use crate::costs::CostConfig;
use ptg::{Ptg, PtgBuilder, TaskId};
use rand::Rng;

/// A chain `t0 → t1 → … → t(n−1)` — makespan is always the sum of times.
pub fn chain<R: Rng + ?Sized>(n: usize, costs: &CostConfig, rng: &mut R) -> Ptg {
    assert!(n >= 1);
    let mut b = PtgBuilder::with_capacity(n);
    let ids: Vec<TaskId> = (0..n)
        .map(|i| {
            let c = costs.sample(rng);
            b.add_task(format!("c{i}"), c.flop, c.alpha)
        })
        .collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1]).expect("fresh edge");
    }
    b.build().expect("chain is acyclic")
}

/// `n` independent tasks — no precedence constraints at all.
pub fn independent<R: Rng + ?Sized>(n: usize, costs: &CostConfig, rng: &mut R) -> Ptg {
    assert!(n >= 1);
    let mut b = PtgBuilder::with_capacity(n);
    for i in 0..n {
        let c = costs.sample(rng);
        b.add_task(format!("i{i}"), c.flop, c.alpha);
    }
    b.build().expect("no edges, trivially acyclic")
}

/// Fork-join: a source fans out to `width` workers which join into a sink.
pub fn fork_join<R: Rng + ?Sized>(width: usize, costs: &CostConfig, rng: &mut R) -> Ptg {
    assert!(width >= 1);
    let mut b = PtgBuilder::with_capacity(width + 2);
    let sample = |b: &mut PtgBuilder, name: String, rng: &mut R| {
        let c = costs.sample(rng);
        b.add_task(name, c.flop, c.alpha)
    };
    let src = sample(&mut b, "fork".into(), rng);
    let workers: Vec<TaskId> = (0..width)
        .map(|i| sample(&mut b, format!("w{i}"), rng))
        .collect();
    let sink = sample(&mut b, "join".into(), rng);
    for &w in &workers {
        b.add_edge(src, w).expect("fresh edge");
        b.add_edge(w, sink).expect("fresh edge");
    }
    b.build().expect("fork-join is acyclic")
}

/// A complete binary out-tree of the given `depth` (`2^depth − 1` tasks):
/// recursive decomposition without a combine phase.
pub fn binary_out_tree<R: Rng + ?Sized>(depth: u32, costs: &CostConfig, rng: &mut R) -> Ptg {
    assert!(depth >= 1, "depth must be at least 1");
    let n = (1usize << depth) - 1;
    let mut b = PtgBuilder::with_capacity(n);
    for i in 0..n {
        let c = costs.sample(rng);
        b.add_task(format!("n{i}"), c.flop, c.alpha);
    }
    for i in 1..n {
        let parent = TaskId::from_index((i - 1) / 2);
        b.add_edge(parent, TaskId::from_index(i))
            .expect("fresh edge");
    }
    b.build().expect("trees are acyclic")
}

/// A `rows × cols` diamond/wavefront mesh: task `(r, c)` depends on
/// `(r−1, c)` and `(r, c−1)` — the dependence pattern of stencil sweeps and
/// dynamic programming (Smith-Waterman, etc.).
pub fn diamond_mesh<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    costs: &CostConfig,
    rng: &mut R,
) -> Ptg {
    assert!(rows >= 1 && cols >= 1);
    let mut b = PtgBuilder::with_capacity(rows * cols);
    let id = |r: usize, c: usize| TaskId::from_index(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            let cost = costs.sample(rng);
            b.add_task(format!("m{r}_{c}"), cost.flop, cost.alpha);
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if r > 0 {
                b.add_edge(id(r - 1, c), id(r, c)).expect("fresh edge");
            }
            if c > 0 {
                b.add_edge(id(r, c - 1), id(r, c)).expect("fresh edge");
            }
        }
    }
    b.build().expect("mesh edges point forward")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptg::levels::PrecedenceLevels;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    fn costs() -> CostConfig {
        CostConfig::default()
    }

    #[test]
    fn chain_has_n_levels_of_width_one() {
        let g = chain(6, &costs(), &mut rng());
        let lv = PrecedenceLevels::compute(&g);
        assert_eq!(lv.level_count(), 6);
        assert_eq!(lv.max_width(), 1);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn independent_bag_is_flat() {
        let g = independent(9, &costs(), &mut rng());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(PrecedenceLevels::compute(&g).level_count(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(5, &costs(), &mut rng());
        assert_eq!(g.task_count(), 7);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        let lv = PrecedenceLevels::compute(&g);
        assert_eq!(lv.level_count(), 3);
        assert_eq!(lv.max_width(), 5);
    }

    #[test]
    fn out_tree_counts_and_degrees() {
        let g = binary_out_tree(4, &costs(), &mut rng());
        assert_eq!(g.task_count(), 15);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 8); // leaves
        for v in g.task_ids().skip(1) {
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn diamond_mesh_dependencies() {
        let g = diamond_mesh(3, 4, &costs(), &mut rng());
        assert_eq!(g.task_count(), 12);
        // interior node (1,1) = index 5 has 2 parents
        assert_eq!(g.in_degree(TaskId(5)), 2);
        // corner (0,0) is the single source, (2,3) the single sink
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(11)]);
        // wavefront: level of (r,c) is r+c
        let lv = PrecedenceLevels::compute(&g);
        assert_eq!(lv.level_of(TaskId(5)), 2);
        assert_eq!(lv.level_count(), 3 + 4 - 1);
    }

    #[test]
    fn families_schedule_cleanly_end_to_end() {
        use exec_model::{SyntheticModel, TimeMatrix};
        use sched::{Allocation, ListScheduler, Mapper};
        let graphs = vec![
            chain(5, &costs(), &mut rng()),
            independent(7, &costs(), &mut rng()),
            fork_join(4, &costs(), &mut rng()),
            binary_out_tree(3, &costs(), &mut rng()),
            diamond_mesh(3, 3, &costs(), &mut rng()),
        ];
        for g in &graphs {
            let m = TimeMatrix::compute(g, &SyntheticModel::default(), 1e9, 8);
            let alloc = Allocation::ones(g.task_count());
            let s = ListScheduler.map(g, &m, &alloc);
            assert!(sched::validate::all_violations(g, &m, &alloc, &s).is_empty());
        }
    }
}
