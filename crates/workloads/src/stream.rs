//! Streaming DAGGEN workloads: generate-and-discard PTG corpora of
//! unbounded size, shardable and resumable.
//!
//! [`Corpus::paper`](crate::Corpus::paper) materializes every instance up
//! front, which caps experiments at what fits in memory and ties every
//! instance to one sequentially-consumed RNG. This module instead derives
//! item `i` of a stream purely from `(seed, i)`:
//!
//! * [`item_seed`] mixes the stream seed and the item index through
//!   SplitMix64 so per-item RNG streams are statistically independent,
//! * [`item_params`] cycles the paper's §IV-C DAGGEN grid (size × width ×
//!   regularity × density × jump, 144 points) as a pure function of the
//!   index,
//! * [`PtgStream`] iterates one **shard** — indices `k, k + M, k + 2M, …` of
//!   an `M`-way split — generating each PTG on the fly and yielding the
//!   positioned per-item RNG so callers can draw further item-local
//!   randomness (e.g. an allocation) deterministically.
//!
//! Because items are index-addressed, any shard layout and any
//! interruption point reproduce the same per-item results: the union of
//! the shards *is* the single-shard stream. [`StreamCheckpoint`] exploits
//! this with an order-independent fingerprint (XOR of per-item hashes), so
//! "resumed sharded run equals uninterrupted run" is checkable bit for
//! bit. This is the corpus-level analogue of the evaluation-level
//! checkpoints in `sched::EvalRecord`: periodic snapshots plus a
//! deterministic replay rule.

use crate::corpus::{DENSITIES, IRREGULAR_JUMPS, REGULARITIES, SIZES, WIDTHS};
use crate::costs::CostConfig;
use crate::daggen::{random_ptg, DaggenParams};
use ptg::Ptg;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer — the standard 64-bit seed scrambler.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG seed of stream item `index`: a pure function of `(seed, index)`, so
/// items can be generated in any order, on any shard, and still come out
/// identical.
pub fn item_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index))
}

/// Shape parameters of stream item `index`: the §IV-C grid traversed as an
/// odometer (jump fastest, then density, regularity, width, size), wrapping
/// every 144 items. Layered (`jump = 0`) and irregular shapes interleave
/// exactly as in [`Corpus::paper`](crate::Corpus::paper)'s grid.
pub fn item_params(index: u64) -> DaggenParams {
    let mut i = index;
    let mut pick = |len: usize| {
        let slot = (i % len as u64) as usize;
        i /= len as u64;
        slot
    };
    let jumps_with_layered = 1 + IRREGULAR_JUMPS.len();
    let jump_slot = pick(jumps_with_layered);
    DaggenParams {
        jump: if jump_slot == 0 {
            0
        } else {
            IRREGULAR_JUMPS[jump_slot - 1]
        },
        density: DENSITIES[pick(DENSITIES.len())],
        regularity: REGULARITIES[pick(REGULARITIES.len())],
        width: WIDTHS[pick(WIDTHS.len())],
        n: SIZES[pick(SIZES.len())],
    }
}

/// One generated stream item.
#[derive(Debug)]
pub struct StreamItem {
    /// Global stream index (shard-independent).
    pub index: u64,
    /// The shape this item was generated with.
    pub params: DaggenParams,
    /// The generated graph.
    pub ptg: Ptg,
    /// The item RNG, positioned *after* graph generation — draw any further
    /// item-local randomness (allocations, perturbations) from here and it
    /// stays deterministic per index.
    pub rng: ChaCha8Rng,
}

/// Generates stream item `index` of the stream with the given `seed`.
pub fn item(seed: u64, index: u64, costs: &CostConfig) -> StreamItem {
    let params = item_params(index);
    let mut rng = ChaCha8Rng::seed_from_u64(item_seed(seed, index));
    let ptg = random_ptg(&params, costs, &mut rng);
    StreamItem {
        index,
        params,
        ptg,
        rng,
    }
}

/// Number of items shard `shard` of `shard_count` holds in a stream of
/// `total` items.
pub fn shard_len(total: u64, shard: u32, shard_count: u32) -> u64 {
    assert!(shard < shard_count, "shard {shard} of {shard_count}");
    let (total, shard, m) = (total, shard as u64, shard_count as u64);
    total.saturating_sub(shard).div_ceil(m)
}

/// A lazily-generated shard of a PTG stream: yields items
/// `shard, shard + M, shard + 2M, …` below `total`, one graph at a time.
#[derive(Debug, Clone)]
pub struct PtgStream {
    seed: u64,
    costs: CostConfig,
    next: u64,
    total: u64,
    stride: u64,
}

impl PtgStream {
    /// The full single-shard stream of `total` items.
    pub fn new(seed: u64, total: u64, costs: CostConfig) -> Self {
        Self::shard(seed, total, 0, 1, costs)
    }

    /// Shard `shard` of an `shard_count`-way split of the stream.
    pub fn shard(seed: u64, total: u64, shard: u32, shard_count: u32, costs: CostConfig) -> Self {
        assert!(shard < shard_count, "shard {shard} of {shard_count}");
        PtgStream {
            seed,
            costs,
            next: shard as u64,
            total,
            stride: shard_count as u64,
        }
    }

    /// Advances past `items` items without generating them — O(1) resume.
    /// (Named to stay clear of `Iterator::skip`, which is O(n) and
    /// by-value.)
    pub fn skip_items(&mut self, items: u64) {
        self.next = self.next.saturating_add(items.saturating_mul(self.stride));
    }

    /// Global index of the next item this shard will yield.
    pub fn next_index(&self) -> u64 {
        self.next
    }

    /// Items left in this shard.
    pub fn remaining(&self) -> u64 {
        if self.next >= self.total {
            0
        } else {
            (self.total - self.next).div_ceil(self.stride)
        }
    }
}

impl Iterator for PtgStream {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        if self.next >= self.total {
            return None;
        }
        let it = item(self.seed, self.next, &self.costs);
        self.next += self.stride;
        Some(it)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining() as usize;
        (n, Some(n))
    }
}

/// Progress snapshot of a (possibly sharded) streaming run.
///
/// The `fingerprint` folds one hash per completed item —
/// `splitmix64(splitmix64(index) ^ result_bits)` — with XOR, so it is
/// independent of completion *order* but sensitive to every `(index,
/// result)` pair. Shard fingerprints XOR together into exactly the
/// single-shard fingerprint, and a resumed run reproduces the
/// uninterrupted one bit for bit. Timing never enters the snapshot;
/// everything here is deterministic given `(seed, total)` and the set of
/// completed items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Snapshot format version.
    pub version: u32,
    /// Stream seed.
    pub seed: u64,
    /// Stream length in items.
    pub total: u64,
    /// Number of shards the stream is split into.
    pub shard_count: u32,
    /// Items completed so far, per shard (each shard consumes its indices
    /// in ascending order, so a count pinpoints the resume position).
    pub done: Vec<u64>,
    /// Total tasks of all completed items.
    pub tasks: u64,
    /// Order-independent XOR fingerprint of all completed items.
    pub fingerprint: u64,
    /// Sum of per-item results (association order follows completion
    /// order, so unlike `fingerprint` the low bits may differ between
    /// shard layouts — report it, don't compare it).
    pub result_sum: f64,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl StreamCheckpoint {
    /// An empty snapshot for a fresh run.
    pub fn new(seed: u64, total: u64, shard_count: u32) -> Self {
        StreamCheckpoint {
            version: CHECKPOINT_VERSION,
            seed,
            total,
            shard_count,
            done: vec![0; shard_count as usize],
            tasks: 0,
            fingerprint: 0,
            result_sum: 0.0,
        }
    }

    /// Folds one completed item into the snapshot. `result` is the item's
    /// scalar outcome (for the scheduling harness: the makespan); its exact
    /// bit pattern enters the fingerprint.
    pub fn fold(&mut self, shard: u32, index: u64, tasks: u64, result: f64) {
        self.done[shard as usize] += 1;
        self.tasks += tasks;
        self.fingerprint ^= splitmix64(splitmix64(index) ^ result.to_bits());
        self.result_sum += result;
    }

    /// Items completed across all shards.
    pub fn items_done(&self) -> u64 {
        self.done.iter().sum()
    }

    /// True when every shard has consumed its whole index set.
    pub fn is_complete(&self) -> bool {
        self.done
            .iter()
            .enumerate()
            .all(|(k, &d)| d >= shard_len(self.total, k as u32, self.shard_count))
    }

    /// True when this snapshot belongs to the run described by the
    /// arguments (same seed, length, shard layout and format version).
    pub fn matches(&self, seed: u64, total: u64, shard_count: u32) -> bool {
        self.version == CHECKPOINT_VERSION
            && self.seed == seed
            && self.total == total
            && self.shard_count == shard_count
            && self.done.len() == shard_count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_seeds_differ_across_indices_and_seeds() {
        let a = item_seed(1, 0);
        let b = item_seed(1, 1);
        let c = item_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, item_seed(1, 0));
    }

    #[test]
    fn params_cycle_the_full_grid() {
        let grid = (SIZES.len() * WIDTHS.len() * REGULARITIES.len() * DENSITIES.len() * 4) as u64;
        assert_eq!(grid, 144);
        let mut layered = 0;
        let mut seen = std::collections::HashSet::new();
        for i in 0..grid {
            let p = item_params(i);
            if p.jump == 0 {
                layered += 1;
            }
            seen.insert((
                p.n,
                p.jump,
                p.width.to_bits(),
                p.regularity.to_bits(),
                p.density.to_bits(),
            ));
        }
        // One layered shape per (density, regularity, width, n) point …
        assert_eq!(layered, grid / 4);
        // … and no grid point repeats within a cycle.
        assert_eq!(seen.len(), grid as usize);
        // The cycle wraps.
        assert_eq!(item_params(0), item_params(grid));
    }

    #[test]
    fn items_are_reproducible_and_index_addressed() {
        let costs = CostConfig::default();
        let a = item(7, 5, &costs);
        let b = item(7, 5, &costs);
        assert_eq!(a.ptg.tasks(), b.ptg.tasks());
        assert!(a.ptg.edges().eq(b.ptg.edges()));
        assert_eq!(a.params, b.params);
        // The yielded RNGs continue identically.
        let (mut ra, mut rb) = (a.rng, b.rng);
        use rand::Rng;
        assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
    }

    #[test]
    fn shards_partition_the_stream() {
        let total = 23u64;
        let m = 4u32;
        let mut indices = Vec::new();
        for k in 0..m {
            let shard: Vec<u64> = PtgStream::shard(11, total, k, m, CostConfig::default())
                .map(|it| it.index)
                .collect();
            assert_eq!(shard.len() as u64, shard_len(total, k, m));
            indices.extend(shard);
        }
        indices.sort_unstable();
        assert_eq!(indices, (0..total).collect::<Vec<u64>>());
    }

    #[test]
    fn sharded_items_match_the_single_shard_stream() {
        let costs = CostConfig::default();
        let full: Vec<StreamItem> = PtgStream::new(3, 9, costs.clone()).collect();
        for it in PtgStream::shard(3, 9, 2, 3, costs) {
            let same = &full[it.index as usize];
            assert_eq!(it.index, same.index);
            assert_eq!(it.ptg.tasks(), same.ptg.tasks());
            assert!(it.ptg.edges().eq(same.ptg.edges()));
        }
    }

    #[test]
    fn skip_resumes_exactly_where_consumption_stopped() {
        let costs = CostConfig::default();
        let mut consumed = PtgStream::shard(5, 40, 1, 3, costs.clone());
        for _ in 0..4 {
            consumed.next();
        }
        let mut skipped = PtgStream::shard(5, 40, 1, 3, costs);
        skipped.skip_items(4);
        assert_eq!(skipped.next_index(), consumed.next_index());
        assert_eq!(skipped.remaining(), consumed.remaining());
        let a: Vec<u64> = consumed.map(|it| it.index).collect();
        let b: Vec<u64> = skipped.map(|it| it.index).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_is_order_and_shard_independent() {
        let results: Vec<(u64, u64, f64)> =
            (0..50).map(|i| (i, 10 + i % 3, 0.5 + i as f64)).collect();
        // Single shard, ascending order.
        let mut single = StreamCheckpoint::new(1, 50, 1);
        for &(i, t, r) in &results {
            single.fold(0, i, t, r);
        }
        // Four shards, each folding its own indices (reverse order inside
        // the shard, to prove order-independence).
        let mut sharded = StreamCheckpoint::new(1, 50, 4);
        for k in 0..4u32 {
            for &(i, t, r) in results.iter().rev() {
                if i % 4 == k as u64 {
                    sharded.fold(k, i, t, r);
                }
            }
        }
        assert_eq!(single.fingerprint, sharded.fingerprint);
        assert_eq!(single.tasks, sharded.tasks);
        assert!(single.is_complete());
        assert!(sharded.is_complete());
        // A different result at one index changes the fingerprint.
        let mut tampered = StreamCheckpoint::new(1, 50, 1);
        for &(i, t, r) in &results {
            tampered.fold(0, i, t, if i == 17 { r + 1.0 } else { r });
        }
        assert_ne!(single.fingerprint, tampered.fingerprint);
    }

    #[test]
    fn completeness_tracks_per_shard_progress() {
        let mut cp = StreamCheckpoint::new(2, 10, 3);
        assert!(!cp.is_complete());
        // Shard lengths for total=10, M=3: 4, 3, 3.
        assert_eq!(shard_len(10, 0, 3), 4);
        assert_eq!(shard_len(10, 1, 3), 3);
        assert_eq!(shard_len(10, 2, 3), 3);
        cp.done = vec![4, 3, 2];
        assert!(!cp.is_complete());
        cp.done = vec![4, 3, 3];
        assert!(cp.is_complete());
        assert_eq!(cp.items_done(), 10);
    }

    #[test]
    fn checkpoint_identity_is_checked_on_resume() {
        let cp = StreamCheckpoint::new(9, 100, 2);
        assert!(cp.matches(9, 100, 2));
        assert!(!cp.matches(8, 100, 2));
        assert!(!cp.matches(9, 101, 2));
        assert!(!cp.matches(9, 100, 3));
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let mut cp = StreamCheckpoint::new(4, 20, 2);
        cp.fold(0, 0, 100, 123.456);
        cp.fold(1, 1, 23, 7.25);
        let json = serde_json::to_string(&cp).unwrap();
        let back: StreamCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cp);
        // The fingerprint survives exactly (u64, not a lossy float).
        assert_eq!(back.fingerprint, cp.fingerprint);
    }

    #[test]
    fn empty_and_tiny_streams_work() {
        assert_eq!(PtgStream::new(1, 0, CostConfig::default()).count(), 0);
        assert_eq!(shard_len(0, 0, 1), 0);
        assert_eq!(shard_len(1, 1, 4), 0);
        let items: Vec<u64> = PtgStream::shard(1, 2, 3, 5, CostConfig::default())
            .map(|it| it.index)
            .collect();
        assert!(items.is_empty());
    }
}
