//! DAGGEN-style random PTG generation (§IV-C, "Synthetic PTGs").
//!
//! Four shape parameters, following Suter's DAGGEN generator as used in the
//! paper and its predecessors (Hunold 2010, Hunold et al. 2008, Desprez &
//! Suter 2010):
//!
//! * **width** — scales the mean number of tasks per precedence level
//!   (`width · √n` tasks per level, so small values give chains and large
//!   values fork-join-like graphs),
//! * **regularity** — uniformity of the per-level task count (1.0 = all
//!   levels equal, 0.0 = counts jitter by up to ±100 %),
//! * **density** — probability of adding each possible edge from a
//!   candidate parent level,
//! * **jump** — edges may span up to `jump + 1` precedence levels
//!   (`jump = 0` produces *layered* PTGs with adjacent-level edges only).
//!
//! Every non-level-0 task keeps at least one parent on the level directly
//! above it, which pins tasks to their intended precedence level and keeps
//! the graph connected level-to-level.

use crate::costs::{CostConfig, CostPattern};
use ptg::{Ptg, PtgBuilder, TaskId};
use rand::Rng;

/// Shape parameters for one random PTG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaggenParams {
    /// Total number of tasks `n ≥ 1`.
    pub n: usize,
    /// Width parameter in `(0, 1]` (paper: 0.2, 0.5, 0.8).
    pub width: f64,
    /// Regularity in `[0, 1]` (paper: 0.2, 0.8).
    pub regularity: f64,
    /// Density in `(0, 1]` (paper: 0.2, 0.8).
    pub density: f64,
    /// Maximum extra levels an edge may span (paper: 0 layered; 1, 2, 4
    /// irregular).
    pub jump: usize,
}

impl DaggenParams {
    fn check(&self) {
        assert!(self.n >= 1, "need at least one task");
        assert!(self.width > 0.0 && self.width <= 1.0, "width in (0,1]");
        assert!(
            (0.0..=1.0).contains(&self.regularity),
            "regularity in [0,1]"
        );
        assert!(
            self.density > 0.0 && self.density <= 1.0,
            "density in (0,1]"
        );
    }

    /// True if this parameter set generates layered PTGs.
    pub fn is_layered(&self) -> bool {
        self.jump == 0
    }
}

/// Generates the per-level task counts for `n` tasks.
fn level_sizes<R: Rng + ?Sized>(params: &DaggenParams, rng: &mut R) -> Vec<usize> {
    let mean_width = (params.width * (params.n as f64).sqrt()).max(1.0);
    let jitter = 1.0 - params.regularity;
    let mut sizes = Vec::new();
    let mut remaining = params.n;
    while remaining > 0 {
        let factor = 1.0 + jitter * rng.gen_range(-1.0..=1.0);
        let size = (mean_width * factor).round().max(1.0) as usize;
        let size = size.min(remaining);
        sizes.push(size);
        remaining -= size;
    }
    sizes
}

/// Generates a random PTG with the given shape and random task costs.
///
/// For **layered** parameter sets (`jump == 0`) the paper specifies that
/// "the number of operations of tasks in one layer is similar": all tasks of
/// a layer share the cost pattern and a dataset size jittered by ±10 %.
/// Irregular sets draw every task cost independently.
pub fn random_ptg<R: Rng + ?Sized>(params: &DaggenParams, costs: &CostConfig, rng: &mut R) -> Ptg {
    params.check();
    let sizes = level_sizes(params, rng);
    let mut b = PtgBuilder::with_capacity(params.n);
    let mut levels: Vec<Vec<TaskId>> = Vec::with_capacity(sizes.len());

    for (l, &size) in sizes.iter().enumerate() {
        // Layered corpora share the cost shape inside a level.
        let layer_pattern = CostPattern::ALL[rng.gen_range(0..CostPattern::ALL.len())];
        let layer_d = rng.gen_range(costs.d_min..=costs.d_max);
        let level: Vec<TaskId> = (0..size)
            .map(|i| {
                let c = if params.is_layered() {
                    let jitter = rng.gen_range(0.9..=1.1);
                    let d = (layer_d * jitter).clamp(costs.d_min, costs.d_max);
                    costs.sample_with(rng, layer_pattern, d)
                } else {
                    costs.sample(rng)
                };
                b.add_task(format!("t{l}_{i}"), c.flop, c.alpha)
            })
            .collect();
        levels.push(level);
    }

    for l in 1..levels.len() {
        let lowest_parent_level = l.saturating_sub(1 + params.jump);
        for i in 0..levels[l].len() {
            let child = levels[l][i];
            // Guaranteed parent on the adjacent level pins the precedence
            // level of `child` to `l`.
            let direct = &levels[l - 1];
            let anchor = direct[rng.gen_range(0..direct.len())];
            b.add_edge(anchor, child).expect("first edge to child");
            // Additional parents: each candidate in the allowed span joins
            // with probability `density`.
            for parent_level in &levels[lowest_parent_level..l] {
                for &cand in parent_level {
                    if cand != anchor && rng.gen_bool(params.density) {
                        let _ = b.add_edge_dedup(cand, child);
                    }
                }
            }
        }
    }
    b.build().expect("level-ordered edges are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptg::levels::{is_layered, PrecedenceLevels};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn params(n: usize, width: f64, jump: usize) -> DaggenParams {
        DaggenParams {
            n,
            width,
            regularity: 0.8,
            density: 0.5,
            jump,
        }
    }

    #[test]
    fn generates_exactly_n_tasks() {
        for n in [1usize, 5, 20, 50, 100] {
            let g = random_ptg(&params(n, 0.5, 0), &CostConfig::default(), &mut rng(1));
            assert_eq!(g.task_count(), n);
        }
    }

    #[test]
    fn jump_zero_yields_layered_graphs() {
        for seed in 0..5 {
            let g = random_ptg(&params(40, 0.5, 0), &CostConfig::default(), &mut rng(seed));
            assert!(is_layered(&g), "seed {seed}");
        }
    }

    #[test]
    fn jump_allows_longer_edges() {
        // With jump = 4 and high density, at least one generated graph has
        // an edge spanning more than one level.
        let mut found = false;
        for seed in 0..10 {
            let p = DaggenParams {
                n: 60,
                width: 0.3,
                regularity: 0.8,
                density: 0.8,
                jump: 4,
            };
            let g = random_ptg(&p, &CostConfig::default(), &mut rng(seed));
            let lv = PrecedenceLevels::compute(&g);
            if g.edges().any(|(a, b)| lv.level_of(b) > lv.level_of(a) + 1) {
                found = true;
                break;
            }
        }
        assert!(found, "no jump edge in 10 seeds");
    }

    #[test]
    fn wider_parameter_gives_wider_graphs() {
        let narrow: f64 = (0..8)
            .map(|s| {
                let g = random_ptg(&params(100, 0.2, 0), &CostConfig::default(), &mut rng(s));
                PrecedenceLevels::compute(&g).max_width() as f64
            })
            .sum::<f64>()
            / 8.0;
        let wide: f64 = (0..8)
            .map(|s| {
                let g = random_ptg(&params(100, 0.8, 0), &CostConfig::default(), &mut rng(s));
                PrecedenceLevels::compute(&g).max_width() as f64
            })
            .sum::<f64>()
            / 8.0;
        assert!(
            wide > narrow,
            "expected width 0.8 ({wide}) wider than 0.2 ({narrow})"
        );
    }

    #[test]
    fn higher_density_gives_more_edges() {
        let sparse_params = DaggenParams {
            density: 0.2,
            ..params(80, 0.5, 0)
        };
        let dense_params = DaggenParams {
            density: 0.8,
            ..params(80, 0.5, 0)
        };
        let sparse: usize = (0..8)
            .map(|s| random_ptg(&sparse_params, &CostConfig::default(), &mut rng(s)).edge_count())
            .sum();
        let dense: usize = (0..8)
            .map(|s| random_ptg(&dense_params, &CostConfig::default(), &mut rng(s)).edge_count())
            .sum();
        assert!(dense > sparse);
    }

    #[test]
    fn every_non_source_level_task_has_a_parent() {
        let g = random_ptg(&params(60, 0.6, 2), &CostConfig::default(), &mut rng(9));
        let lv = PrecedenceLevels::compute(&g);
        for v in g.task_ids() {
            if lv.level_of(v) > 0 {
                assert!(!g.predecessors(v).is_empty());
            }
        }
    }

    #[test]
    fn layered_graphs_have_similar_costs_per_level() {
        let g = random_ptg(&params(60, 0.6, 0), &CostConfig::default(), &mut rng(5));
        let lv = PrecedenceLevels::compute(&g);
        for (l, tasks) in lv.iter() {
            if tasks.len() < 2 {
                continue;
            }
            let flops: Vec<f64> = tasks.iter().map(|&v| g.task(v).flop).collect();
            let max = flops.iter().copied().fold(f64::MIN, f64::max);
            let min = flops.iter().copied().fold(f64::MAX, f64::min);
            // Same pattern, d within ±10 %, a in [64, 512]: ratio bounded by
            // (512/64) · (1.1/0.9)^1.5 < 11 — far tighter than the ~4000×
            // spread unconstrained sampling can produce.
            assert!(
                max / min < 16.0,
                "level {l} cost spread too wide: {min} .. {max}"
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let p = params(50, 0.5, 2);
        let a = random_ptg(&p, &CostConfig::default(), &mut rng(7));
        let b = random_ptg(&p, &CostConfig::default(), &mut rng(7));
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.tasks(), b.tasks());
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn single_task_graph_works() {
        let g = random_ptg(&params(1, 0.5, 0), &CostConfig::default(), &mut rng(1));
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "width in (0,1]")]
    fn invalid_width_panics() {
        let p = DaggenParams {
            width: 0.0,
            ..params(10, 0.5, 0)
        };
        let _ = random_ptg(&p, &CostConfig::default(), &mut rng(1));
    }
}
