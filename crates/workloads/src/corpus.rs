//! The paper's full evaluation corpus (§IV-C).
//!
//! * 400 FFT PTGs (100 each of the 2/4/8/16-level shapes),
//! * 100 Strassen PTGs,
//! * 108 layered random PTGs — the cross product width × regularity ×
//!   density × size with `jump = 0`, 3 instances each
//!   (3·2·2·3·3 = 108),
//! * 324 irregular random PTGs — the same cross product × jump ∈ {1,2,4}, 3
//!   instances each (3·2·2·3·3·3 = 324).
//!
//! `scale` shrinks instance counts proportionally for quick runs; the
//! parameter grid itself is never reduced.

use crate::costs::CostConfig;
use crate::daggen::{random_ptg, DaggenParams};
use crate::fft::fft_ptg;
use crate::strassen::strassen_ptg;
use ptg::Ptg;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four PTG classes of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PtgClass {
    /// FFT task graphs.
    Fft,
    /// Strassen matrix multiplication.
    Strassen,
    /// Random layered PTGs (`jump = 0`).
    Layered,
    /// Random irregular PTGs (`jump ∈ {1, 2, 4}`).
    Irregular,
}

impl PtgClass {
    /// Display label matching the figure captions.
    pub fn label(self) -> &'static str {
        match self {
            PtgClass::Fft => "FFT",
            PtgClass::Strassen => "Strassen",
            PtgClass::Layered => "layered",
            PtgClass::Irregular => "irregular",
        }
    }
}

/// One corpus instance: a generated PTG plus its provenance.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The generated graph.
    pub ptg: Ptg,
    /// Which figure panel this instance belongs to.
    pub class: PtgClass,
    /// Task count (pre-computed for filtering, e.g. the paper plots the
    /// `n = 100` panels for random PTGs).
    pub n: usize,
    /// Instance description, e.g. `fft_k8_i3` or `layered_w0.5_r0.8_d0.2_n100_i0`.
    pub name: String,
}

/// A full generated corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// All instances, FFT first, then Strassen, layered, irregular.
    pub entries: Vec<CorpusEntry>,
}

/// Paper parameter grids.
pub const WIDTHS: [f64; 3] = [0.2, 0.5, 0.8];
/// Regularity values of the paper grid.
pub const REGULARITIES: [f64; 2] = [0.2, 0.8];
/// Density values of the paper grid.
pub const DENSITIES: [f64; 2] = [0.2, 0.8];
/// Task counts of the paper grid.
pub const SIZES: [usize; 3] = [20, 50, 100];
/// Jump values generating irregular PTGs.
pub const IRREGULAR_JUMPS: [usize; 3] = [1, 2, 4];
/// FFT level parameters (k leaves ⇒ 5/15/39/95 tasks).
pub const FFT_KS: [u32; 4] = [2, 4, 8, 16];

impl Corpus {
    /// Generates the paper corpus at a given `scale ∈ (0, 1]`:
    /// `scale = 1.0` reproduces the full 400/100/108/324 instance counts,
    /// smaller values shrink instance counts (but keep ≥ 1 per grid point).
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use workloads::{Corpus, CostConfig, PtgClass};
    ///
    /// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    /// let corpus = Corpus::paper(0.01, &CostConfig::default(), &mut rng);
    /// // Every grid point survives even at 1% scale …
    /// assert_eq!(corpus.by_class(PtgClass::Fft).count(), 4);
    /// // … and the n=100 panels the figures plot are present.
    /// assert!(corpus.by_class_and_size(PtgClass::Irregular, 100).count() > 0);
    /// ```
    pub fn paper<R: Rng + ?Sized>(scale: f64, costs: &CostConfig, rng: &mut R) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must lie in (0, 1]");
        let mut entries = Vec::new();
        let reps = |full: usize| ((full as f64 * scale).round() as usize).max(1);

        // 400 FFT = 100 instances per k.
        for k in FFT_KS {
            for i in 0..reps(100) {
                let ptg = fft_ptg(k, costs, rng);
                let n = ptg.task_count();
                entries.push(CorpusEntry {
                    ptg,
                    class: PtgClass::Fft,
                    n,
                    name: format!("fft_k{k}_i{i}"),
                });
            }
        }
        // 100 Strassen.
        for i in 0..reps(100) {
            let ptg = strassen_ptg(costs, rng);
            let n = ptg.task_count();
            entries.push(CorpusEntry {
                ptg,
                class: PtgClass::Strassen,
                n,
                name: format!("strassen_i{i}"),
            });
        }
        // Layered and irregular grids, 3 instances each at full scale.
        let grid_reps = reps(3);
        for &n in &SIZES {
            for &width in &WIDTHS {
                for &regularity in &REGULARITIES {
                    for &density in &DENSITIES {
                        for &jump in std::iter::once(&0).chain(&IRREGULAR_JUMPS) {
                            let class = if jump == 0 {
                                PtgClass::Layered
                            } else {
                                PtgClass::Irregular
                            };
                            for i in 0..grid_reps {
                                let params = DaggenParams {
                                    n,
                                    width,
                                    regularity,
                                    density,
                                    jump,
                                };
                                let ptg = random_ptg(&params, costs, rng);
                                entries.push(CorpusEntry {
                                    ptg,
                                    class,
                                    n,
                                    name: format!(
                                        "{}_w{width}_r{regularity}_d{density}_j{jump}_n{n}_i{i}",
                                        class.label()
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        Corpus { entries }
    }

    /// Instances of one class.
    pub fn by_class(&self, class: PtgClass) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.iter().filter(move |e| e.class == class)
    }

    /// Instances of one class restricted to a task count (the paper's
    /// random-PTG panels use `n = 100`).
    pub fn by_class_and_size(
        &self,
        class: PtgClass,
        n: usize,
    ) -> impl Iterator<Item = &CorpusEntry> {
        self.entries
            .iter()
            .filter(move |e| e.class == class && e.n == n)
    }

    /// Total instance count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no instances were generated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_corpus() -> Corpus {
        Corpus::paper(
            0.01,
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(99),
        )
    }

    #[test]
    fn full_scale_matches_paper_counts() {
        let c = Corpus::paper(
            1.0,
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        assert_eq!(c.by_class(PtgClass::Fft).count(), 400);
        assert_eq!(c.by_class(PtgClass::Strassen).count(), 100);
        assert_eq!(c.by_class(PtgClass::Layered).count(), 108);
        assert_eq!(c.by_class(PtgClass::Irregular).count(), 324);
        assert_eq!(c.len(), 932);
    }

    #[test]
    fn scaled_corpus_keeps_every_grid_point() {
        let c = small_corpus();
        // 1 instance per grid point: 4 FFT ks, 1 strassen, 36 layered, 108 irregular.
        assert_eq!(c.by_class(PtgClass::Fft).count(), 4);
        assert_eq!(c.by_class(PtgClass::Strassen).count(), 1);
        assert_eq!(c.by_class(PtgClass::Layered).count(), 36);
        assert_eq!(c.by_class(PtgClass::Irregular).count(), 108);
    }

    #[test]
    fn size_filter_selects_n100_panels() {
        let c = small_corpus();
        assert!(c.by_class_and_size(PtgClass::Layered, 100).count() > 0);
        assert!(c
            .by_class_and_size(PtgClass::Layered, 100)
            .all(|e| e.ptg.task_count() == 100));
    }

    #[test]
    fn names_are_unique() {
        let c = small_corpus();
        let mut names: Vec<&str> = c.entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn corpus_is_reproducible_from_seed() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ptg.tasks(), y.ptg.tasks());
        }
    }

    #[test]
    fn class_labels_match_figures() {
        assert_eq!(PtgClass::Fft.label(), "FFT");
        assert_eq!(PtgClass::Irregular.label(), "irregular");
    }
}
