//! Task-cost assignment (§IV-C, "Choosing Task Complexities").
//!
//! Each task operates on a dataset of `d` doubles; with ≥ 1 GB of memory per
//! processor the upper bound is `d = 125·10⁶`. The FLOP count follows one of
//! three computational patterns — `a·d` (stencil), `a·d·log₂ d` (sorting),
//! `d^{3/2}` (√d × √d matrix multiplication) — with `a ∈ [2⁶, 2⁹]` modeling
//! repeated iterations, and the non-parallelizable fraction `α` drawn
//! uniformly from `[0, 0.25]` ("very scalable tasks").

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's upper bound on the dataset size (125 million doubles = 1 GB).
pub const D_MAX_PAPER: f64 = 125e6;

/// The three computational patterns of §IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostPattern {
    /// `a · d` — e.g. a stencil sweep.
    Linear,
    /// `a · d · log₂ d` — e.g. sorting an array.
    LogLinear,
    /// `d^{3/2}` — multiplying two √d × √d matrices.
    MatMul,
}

impl CostPattern {
    /// All patterns, in the paper's order.
    pub const ALL: [CostPattern; 3] = [
        CostPattern::Linear,
        CostPattern::LogLinear,
        CostPattern::MatMul,
    ];

    /// FLOP count for dataset size `d` and iteration factor `a`.
    pub fn flop(self, d: f64, a: f64) -> f64 {
        assert!(d > 1.0, "dataset size must exceed one element");
        match self {
            CostPattern::Linear => a * d,
            CostPattern::LogLinear => a * d * d.log2(),
            CostPattern::MatMul => d.powf(1.5),
        }
    }
}

/// Random cost generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Smallest dataset size (doubles).
    pub d_min: f64,
    /// Largest dataset size (doubles); the paper uses 125·10⁶.
    pub d_max: f64,
    /// Lower bound of the iteration factor `a` (paper: 2⁶ = 64).
    pub a_min: f64,
    /// Upper bound of the iteration factor `a` (paper: 2⁹ = 512).
    pub a_max: f64,
    /// Upper bound of `α` (paper: 0.25).
    pub alpha_max: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            d_min: 1e6,
            d_max: D_MAX_PAPER,
            a_min: 64.0,
            a_max: 512.0,
            alpha_max: 0.25,
        }
    }
}

/// One sampled task cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// The drawn computational pattern.
    pub pattern: CostPattern,
    /// The drawn dataset size.
    pub d: f64,
    /// FLOP count for the task.
    pub flop: f64,
    /// Non-parallelizable fraction.
    pub alpha: f64,
}

impl CostConfig {
    /// Validates bounds.
    fn check(&self) {
        assert!(self.d_min > 1.0 && self.d_min <= self.d_max, "bad d range");
        assert!(self.a_min > 0.0 && self.a_min <= self.a_max, "bad a range");
        assert!((0.0..=1.0).contains(&self.alpha_max), "bad alpha_max");
    }

    /// Draws a full random task cost: pattern, `d`, `a` and `α`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskCost {
        self.check();
        let pattern = CostPattern::ALL[rng.gen_range(0..CostPattern::ALL.len())];
        let d = rng.gen_range(self.d_min..=self.d_max);
        self.sample_with(rng, pattern, d)
    }

    /// Draws `a` and `α` for a fixed pattern and dataset size — used by the
    /// layered generator, where tasks of one layer share pattern and size.
    pub fn sample_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pattern: CostPattern,
        d: f64,
    ) -> TaskCost {
        self.check();
        let a = rng.gen_range(self.a_min..=self.a_max);
        let alpha = rng.gen_range(0.0..=self.alpha_max);
        TaskCost {
            pattern,
            d,
            flop: pattern.flop(d, a),
            alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pattern_formulas() {
        assert_eq!(CostPattern::Linear.flop(1024.0, 2.0), 2048.0);
        assert_eq!(CostPattern::LogLinear.flop(1024.0, 1.0), 1024.0 * 10.0);
        assert_eq!(CostPattern::MatMul.flop(1e6, 99.0), 1e9);
    }

    #[test]
    fn samples_respect_bounds() {
        let cfg = CostConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..500 {
            let c = cfg.sample(&mut rng);
            assert!(c.d >= cfg.d_min && c.d <= cfg.d_max);
            assert!(c.alpha >= 0.0 && c.alpha <= 0.25);
            assert!(c.flop > 0.0 && c.flop.is_finite());
        }
    }

    #[test]
    fn all_patterns_eventually_drawn() {
        let cfg = CostConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match cfg.sample(&mut rng).pattern {
                CostPattern::Linear => seen[0] = true,
                CostPattern::LogLinear => seen[1] = true,
                CostPattern::MatMul => seen[2] = true,
            }
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn sampling_is_reproducible_from_seed() {
        let cfg = CostConfig::default();
        let a = cfg.sample(&mut ChaCha8Rng::seed_from_u64(42));
        let b = cfg.sample(&mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn flops_are_in_plausible_paper_magnitudes() {
        // At d = 125e6 the matmul pattern gives ~1.4e12 FLOP ≈ 450 s
        // sequential on Grelon's 3.1 GFLOPS — heavy but feasible tasks.
        let flop = CostPattern::MatMul.flop(D_MAX_PAPER, 1.0);
        assert!(flop > 1e12 && flop < 2e12);
    }

    #[test]
    #[should_panic(expected = "bad d range")]
    fn invalid_config_panics() {
        let cfg = CostConfig {
            d_min: 10.0,
            d_max: 5.0,
            ..CostConfig::default()
        };
        let _ = cfg.sample(&mut ChaCha8Rng::seed_from_u64(0));
    }
}
