//! PTG workload generators reproducing the paper's evaluation corpus (§IV-C).
//!
//! * [`fft::fft_ptg`] — FFT task graphs with 2/4/8/16 "levels" giving
//!   5/15/39/95 tasks (recursion tree + butterfly stages, per Cormen et al.),
//! * [`strassen::strassen_ptg`] — one level of Strassen's matrix
//!   multiplication (23 tasks: 10 additions, 7 products, 4 combines),
//! * [`daggen`] — DAGGEN-style random PTGs controlled by *width*,
//!   *regularity*, *density* and *jump* (Suter's generator, as used in the
//!   paper and its predecessors),
//! * [`costs`] — the paper's task-cost assignment: data size `d ≤ 125·10⁶`
//!   doubles, FLOP patterns `a·d`, `a·d·log₂ d`, `d^{3/2}`, `a ∈ [2⁶, 2⁹]`,
//!   `α ~ U[0, 0.25]`,
//! * [`corpus`] — the full paper corpus: 400 FFT + 100 Strassen + 108
//!   layered + 324 irregular PTGs (scalable down for quick runs),
//! * [`stream`] — unbounded generate-and-discard DAGGEN streams for
//!   throughput experiments: index-addressed items, deterministic
//!   sharding, order-independent progress fingerprints for
//!   checkpoint/resume.
//!
//! All generators are deterministic given an RNG, so experiments are
//! reproducible from a seed.

pub mod corpus;
pub mod costs;
pub mod daggen;
pub mod families;
pub mod fft;
pub mod strassen;
pub mod stream;

pub use corpus::{Corpus, CorpusEntry, PtgClass};
pub use costs::{CostConfig, CostPattern};
pub use daggen::DaggenParams;
pub use stream::{PtgStream, StreamCheckpoint, StreamItem};
