//! Tabulated (measured) execution times.

use crate::ExecutionTimeModel;
use ptg::Task;

/// A model backed by a table of measured *speedups* per processor count.
///
/// Real systems rarely come with closed-form time functions; what exists are
/// benchmark measurements like the paper's PDGEMM timings (Fig. 1). A
/// `Tabulated` model stores `speedup[p-1]` for `p = 1..=p_max` and converts a
/// task's sequential time through it, so one table can serve tasks of
/// different sizes. Queries beyond `p_max` clamp to the last entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Tabulated {
    speedups: Vec<f64>,
}

impl Tabulated {
    /// Builds the table from raw speedups (`speedups[0]` must be 1.0 for
    /// `p = 1`).
    pub fn from_speedups(speedups: Vec<f64>) -> Self {
        assert!(!speedups.is_empty(), "table must cover at least p = 1");
        assert!(
            (speedups[0] - 1.0).abs() < 1e-9,
            "speedup at p = 1 must be 1.0, got {}",
            speedups[0]
        );
        assert!(
            speedups.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speedups must be positive and finite"
        );
        Tabulated { speedups }
    }

    /// Builds the table from measured times of *one reference task*: the
    /// speedup at `p` is `times[0] / times[p-1]`.
    pub fn from_times(times: &[f64]) -> Self {
        assert!(!times.is_empty(), "need at least the sequential time");
        let t1 = times[0];
        assert!(t1 > 0.0, "sequential time must be positive");
        Tabulated::from_speedups(times.iter().map(|&t| t1 / t).collect())
    }

    /// Builds a table by sampling an arbitrary model at each `p ≤ p_max` for
    /// a reference task. Useful to freeze a model into data.
    pub fn sample<M: ExecutionTimeModel>(
        model: &M,
        task: &Task,
        speed_flops: f64,
        p_max: u32,
    ) -> Self {
        assert!(p_max >= 1);
        let times: Vec<f64> = (1..=p_max)
            .map(|p| model.time(task, p, speed_flops))
            .collect();
        Tabulated::from_times(&times)
    }

    /// Largest processor count covered by the table.
    pub fn p_max(&self) -> u32 {
        self.speedups.len() as u32
    }

    /// The speedup at `p` (clamped to the table range).
    pub fn speedup(&self, p: u32) -> f64 {
        assert!(p >= 1, "allocation must use at least one processor");
        let idx = (p as usize - 1).min(self.speedups.len() - 1);
        self.speedups[idx]
    }
}

impl ExecutionTimeModel for Tabulated {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        let seq = task.flop / speed_flops;
        seq / self.speedup(p)
    }

    fn name(&self) -> &'static str {
        "tabulated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticModel;

    #[test]
    fn from_times_computes_speedups() {
        let t = Tabulated::from_times(&[10.0, 5.0, 4.0, 2.5]);
        assert_eq!(t.speedup(1), 1.0);
        assert_eq!(t.speedup(2), 2.0);
        assert_eq!(t.speedup(4), 4.0);
    }

    #[test]
    fn queries_beyond_table_clamp() {
        let t = Tabulated::from_times(&[10.0, 5.0]);
        assert_eq!(t.speedup(100), 2.0);
        assert_eq!(t.p_max(), 2);
    }

    #[test]
    fn time_scales_with_task_size() {
        let tab = Tabulated::from_times(&[8.0, 4.0, 2.0, 1.0]);
        let small = Task::new("s", 1e9, 0.0);
        let big = Task::new("b", 4e9, 0.0);
        assert!((tab.time(&big, 4, 1e9) - 4.0 * tab.time(&small, 4, 1e9)).abs() < 1e-12);
    }

    #[test]
    fn sampling_a_model_reproduces_it() {
        let m = SyntheticModel::default();
        let task = Task::new("ref", 2e9, 0.1);
        let tab = Tabulated::sample(&m, &task, 1e9, 16);
        for p in 1..=16 {
            let a = tab.time(&task, p, 1e9);
            let b = m.time(&task, p, 1e9);
            assert!((a - b).abs() < 1e-9 * b, "p = {p}: {a} vs {b}");
        }
    }

    #[test]
    fn sampled_table_preserves_non_monotonicity() {
        let m = SyntheticModel::default();
        let task = Task::new("ref", 8e9, 0.05);
        let tab = Tabulated::sample(&m, &task, 1e9, 8);
        assert!(tab.time(&task, 5, 1e9) > tab.time(&task, 4, 1e9));
    }

    #[test]
    #[should_panic(expected = "p = 1 must be 1.0")]
    fn first_speedup_must_be_unity() {
        let _ = Tabulated::from_speedups(vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least p = 1")]
    fn empty_table_panics() {
        let _ = Tabulated::from_speedups(vec![]);
    }
}
