//! Model combinators.

use crate::ExecutionTimeModel;
use ptg::Task;

/// Enforces the "monotonous penalty assumption" on any base model:
/// `T'(v,p) = min_{1 ≤ q ≤ p} T(v,q)`.
///
/// This is what heuristics designed for monotonic models implicitly assume
/// (cf. Günther et al., cited in the paper, who *prohibit* allocations that
/// violate monotonicity). Wrapping Model 2 in `Monotonized` shows how much of
/// EMTS's advantage comes from exploiting non-monotonic structure — used by
/// the ablation benches.
///
/// Note: the wrapper reports the *time* the monotone envelope promises; a
/// scheduler using it should then run the task on the `q ≤ p` processors
/// realizing the minimum (see [`Monotonized::best_p`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Monotonized<M> {
    /// The wrapped model.
    pub base: M,
}

impl<M: ExecutionTimeModel> Monotonized<M> {
    /// Wraps `base`.
    pub fn new(base: M) -> Self {
        Monotonized { base }
    }

    /// The processor count `q ≤ p` minimizing the base model's time (the
    /// smallest such `q` on ties, to free resources).
    pub fn best_p(&self, task: &Task, p: u32, speed_flops: f64) -> u32 {
        assert!(p >= 1);
        let mut best_q = 1;
        let mut best_t = self.base.time(task, 1, speed_flops);
        for q in 2..=p {
            let t = self.base.time(task, q, speed_flops);
            if t < best_t {
                best_t = t;
                best_q = q;
            }
        }
        best_q
    }
}

impl<M: ExecutionTimeModel> ExecutionTimeModel for Monotonized<M> {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        assert!(p >= 1, "allocation must use at least one processor");
        (1..=p)
            .map(|q| self.base.time(task, q, speed_flops))
            .fold(f64::INFINITY, f64::min)
    }

    fn name(&self) -> &'static str {
        "monotonized"
    }
}

/// Scales all times of a base model by a constant factor — models running the
/// same PTG on faster or slower processors of the *same count*, and gives
/// tests a second trivially-distinct model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scaled<M> {
    /// The wrapped model.
    pub base: M,
    /// Multiplicative factor applied to every time (> 0).
    pub factor: f64,
}

impl<M: ExecutionTimeModel> Scaled<M> {
    /// Wraps `base` with a positive scale factor.
    pub fn new(base: M, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "factor must be positive"
        );
        Scaled { base, factor }
    }
}

impl<M: ExecutionTimeModel> ExecutionTimeModel for Scaled<M> {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        self.base.time(task, p, speed_flops) * self.factor
    }

    fn name(&self) -> &'static str {
        "scaled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Amdahl, SyntheticModel};

    #[test]
    fn monotonized_model_is_monotone() {
        let m = Monotonized::new(SyntheticModel::default());
        let t = Task::new("mm", 8e9, 0.05);
        let mut prev = f64::INFINITY;
        for p in 1..=64 {
            let cur = m.time(&t, p, 1e9);
            assert!(cur <= prev + 1e-15, "p = {p}");
            prev = cur;
        }
    }

    #[test]
    fn monotonized_never_exceeds_base() {
        let base = SyntheticModel::default();
        let m = Monotonized::new(base);
        let t = Task::new("mm", 8e9, 0.05);
        for p in 1..=32 {
            assert!(m.time(&t, p, 1e9) <= base.time(&t, p, 1e9) + 1e-15);
        }
    }

    #[test]
    fn monotonizing_a_monotone_model_is_identity() {
        let m = Monotonized::new(Amdahl);
        let t = Task::new("mm", 8e9, 0.2);
        for p in 1..=32 {
            assert!((m.time(&t, p, 1e9) - Amdahl.time(&t, p, 1e9)).abs() < 1e-15);
        }
    }

    #[test]
    fn best_p_skips_penalized_counts() {
        let m = Monotonized::new(SyntheticModel::default());
        let t = Task::new("mm", 8e9, 0.0);
        // With a fully parallel task, p = 5 (odd, ×1.3) is worse than p = 4:
        // best_p(5) should stay at 4.
        assert_eq!(m.best_p(&t, 5, 1e9), 4);
        // p = 6 (even non-square, ×1.1): 1.1/6 < 1/4, so 6 wins.
        assert_eq!(m.best_p(&t, 6, 1e9), 6);
    }

    #[test]
    fn scaled_multiplies_times() {
        let s = Scaled::new(Amdahl, 2.5);
        let t = Task::new("x", 1e9, 0.0);
        assert!((s.time(&t, 2, 1e9) - 2.5 * Amdahl.time(&t, 2, 1e9)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn scaled_rejects_zero_factor() {
        let _ = Scaled::new(Amdahl, 0.0);
    }
}
