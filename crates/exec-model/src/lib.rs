//! Execution-time models for moldable parallel tasks.
//!
//! A model answers one question: *how long does task `v` run on `p`
//! processors of a given speed?* The paper's central point is that EMTS works
//! with **any** such model — including non-monotonic ones where adding a
//! processor can slow a task down — so the trait below is the seam every
//! scheduler in this workspace is written against.
//!
//! Provided models:
//!
//! * [`Amdahl`] — the paper's Model 1: `T(v,p) = (α + (1−α)/p) · T(v,1)`,
//! * [`SyntheticModel`] — the paper's Model 2: Amdahl plus a ×1.3 penalty on
//!   odd processor counts and ×1.1 on even counts without an integer square
//!   root (imitating PDGEMM's blocking behaviour from the paper's Fig. 1),
//! * [`Downey`] — Downey's speedup model (the other classic from related
//!   work), parameterized by average parallelism `A` and variance `σ`,
//! * [`Tabulated`] — measured timings per processor count,
//! * [`Monotonized`] — wrapper enforcing the "monotonous penalty assumption"
//!   by taking the running minimum over smaller allocations,
//! * [`SparseTabulated`] — linear interpolation between sparse measured
//!   widths (real measurement campaigns sample a few processor counts),
//! * [`RedistributionCost`] — folds scatter/gather overhead into any base
//!   model (the paper's §III prescription for communication costs),
//! * [`PerTaskModel`] — dispatches different models per task kernel,
//! * [`fit`] — least-squares recovery of Amdahl parameters from
//!   measurements (closing the loop the paper's §II-B points at).
//!
//! [`TimeMatrix`] pre-evaluates a model for every `(task, p)` pair of a PTG,
//! which is the hot lookup inside allocation heuristics and the EA's fitness
//! function.

pub mod amdahl;
pub mod comm;
pub mod downey;
pub mod fit;
pub mod interp;
pub mod matrix;
pub mod per_task;
pub mod synthetic;
pub mod table;
pub mod wrappers;

pub use amdahl::Amdahl;
pub use comm::RedistributionCost;
pub use downey::Downey;
pub use fit::{fit_amdahl, AmdahlFit};
pub use interp::SparseTabulated;
pub use matrix::TimeMatrix;
pub use per_task::PerTaskModel;
pub use synthetic::{NonMonotonicPenalty, SyntheticModel};
pub use table::Tabulated;
pub use wrappers::Monotonized;

use ptg::Task;

/// Predicts the execution time of a moldable task.
///
/// `speed_flops` is the per-processor speed in FLOP/s (the platform is
/// homogeneous, so one number suffices); implementations derive the
/// sequential time as `task.flop / speed_flops` unless they carry their own
/// timing data (e.g. [`Tabulated`]).
pub trait ExecutionTimeModel: Send + Sync {
    /// Execution time in seconds of `task` on `p ≥ 1` processors.
    ///
    /// Implementations must return a strictly positive, finite value for all
    /// valid inputs and may panic on `p == 0`.
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64;

    /// Short human-readable model name for logs and experiment reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

impl<M: ExecutionTimeModel + ?Sized> ExecutionTimeModel for &M {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        (**self).time(task, p, speed_flops)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<M: ExecutionTimeModel + ?Sized> ExecutionTimeModel for Box<M> {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        (**self).time(task, p, speed_flops)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The two models evaluated in the paper, selectable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperModel {
    /// Model 1 — Amdahl's law (monotonically decreasing).
    Model1,
    /// Model 2 — synthetic non-monotonic PDGEMM-like model.
    Model2,
}

impl PaperModel {
    /// Instantiates the corresponding model object.
    pub fn instantiate(self) -> Box<dyn ExecutionTimeModel> {
        match self {
            PaperModel::Model1 => Box::new(Amdahl),
            PaperModel::Model2 => Box::new(SyntheticModel::default()),
        }
    }

    /// Parses `"model1"` / `"model2"` (case-insensitive, also accepts
    /// `"amdahl"` / `"synthetic"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "model1" | "amdahl" | "1" => Some(PaperModel::Model1),
            "model2" | "synthetic" | "2" => Some(PaperModel::Model2),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_parses_aliases() {
        assert_eq!(PaperModel::parse("Model1"), Some(PaperModel::Model1));
        assert_eq!(PaperModel::parse("amdahl"), Some(PaperModel::Model1));
        assert_eq!(PaperModel::parse("2"), Some(PaperModel::Model2));
        assert_eq!(PaperModel::parse("SYNTHETIC"), Some(PaperModel::Model2));
        assert_eq!(PaperModel::parse("bogus"), None);
    }

    #[test]
    fn instantiated_models_report_names() {
        assert_eq!(PaperModel::Model1.instantiate().name(), "amdahl");
        assert_eq!(PaperModel::Model2.instantiate().name(), "synthetic");
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let t = Task::new("x", 1e9, 0.0);
        let boxed: Box<dyn ExecutionTimeModel> = Box::new(Amdahl);
        let by_ref = &Amdahl;
        assert_eq!(boxed.time(&t, 4, 1e9), by_ref.time(&t, 4, 1e9));
        assert_eq!(boxed.name(), "amdahl");
    }
}
