//! Heterogeneous *models* on a homogeneous *platform*.
//!
//! Real workflows mix kernels: a PDGEMM task scales like Model 2, an I/O
//! stage barely scales at all, a stencil follows Amdahl closely. The paper
//! encodes such differences only through per-task `α`; this module lets
//! each task carry a completely different time model, selected by a
//! user-supplied classifier over the task payload — which is exactly the
//! "EMTS works with an arbitrary execution time model" claim stretched to
//! its practical limit.

use crate::ExecutionTimeModel;
use ptg::Task;

/// Dispatches to one of several models based on the task.
///
/// The selector returns an index into `models`; typical selectors key on
/// the task name (kernel type) or cost magnitude.
pub struct PerTaskModel {
    models: Vec<Box<dyn ExecutionTimeModel>>,
    selector: Box<dyn Fn(&Task) -> usize + Send + Sync>,
}

impl PerTaskModel {
    /// Creates the dispatcher.
    ///
    /// # Panics
    /// Panics if `models` is empty.
    pub fn new(
        models: Vec<Box<dyn ExecutionTimeModel>>,
        selector: impl Fn(&Task) -> usize + Send + Sync + 'static,
    ) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        PerTaskModel {
            models,
            selector: Box::new(selector),
        }
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The model index task `t` dispatches to (clamped into range).
    pub fn index_for(&self, t: &Task) -> usize {
        (self.selector)(t).min(self.models.len() - 1)
    }
}

impl ExecutionTimeModel for PerTaskModel {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        self.models[self.index_for(task)].time(task, p, speed_flops)
    }

    fn name(&self) -> &'static str {
        "per-task"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Amdahl, SyntheticModel};

    fn dispatcher() -> PerTaskModel {
        PerTaskModel::new(
            vec![Box::new(Amdahl), Box::new(SyntheticModel::default())],
            |t: &Task| usize::from(t.name.starts_with("mm")),
        )
    }

    #[test]
    fn tasks_route_to_their_model() {
        let d = dispatcher();
        let plain = Task::new("copy", 8e9, 0.0);
        let mm = Task::new("mm_big", 8e9, 0.0);
        assert_eq!(d.index_for(&plain), 0);
        assert_eq!(d.index_for(&mm), 1);
        // Model 2 penalizes p = 3 by 1.3; Amdahl does not.
        assert_eq!(d.time(&plain, 3, 1e9), Amdahl.time(&plain, 3, 1e9));
        assert!(d.time(&mm, 3, 1e9) > Amdahl.time(&mm, 3, 1e9));
    }

    #[test]
    fn out_of_range_selector_clamps() {
        let d = PerTaskModel::new(vec![Box::new(Amdahl)], |_| 99);
        let t = Task::new("x", 1e9, 0.0);
        assert_eq!(d.index_for(&t), 0);
        assert_eq!(d.time(&t, 2, 1e9), Amdahl.time(&t, 2, 1e9));
    }

    #[test]
    fn works_through_the_time_matrix() {
        use crate::TimeMatrix;
        use ptg::PtgBuilder;
        let mut b = PtgBuilder::new();
        let plain = b.add_task("copy", 8e9, 0.0);
        let mm = b.add_task("mm", 8e9, 0.0);
        b.add_edge(plain, mm).unwrap();
        let g = b.build().unwrap();
        let matrix = TimeMatrix::compute(&g, &dispatcher(), 1e9, 8);
        assert_eq!(matrix.time(plain, 5), Amdahl.time(g.task(plain), 5, 1e9));
        assert!(matrix.time(mm, 5) > matrix.time(mm, 4)); // Model 2 bump
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_model_list_panics() {
        let _ = PerTaskModel::new(vec![], |_| 0);
    }
}
