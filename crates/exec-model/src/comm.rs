//! Folding communication/redistribution costs into the time model.
//!
//! The paper deliberately excludes explicit communication: "communication
//! costs between tasks are not considered. If communication or data
//! redistributions are necessary, they need to be included in the execution
//! time model of the parallel tasks" (§III). This wrapper is that inclusion
//! seam: it charges each task a redistribution overhead that grows with its
//! processor count, modeling the scatter/gather of a data-parallel task's
//! inputs across its allocation.
//!
//! The overhead model is the classic linear one: moving the task's dataset
//! onto `p` processors costs `latency·(p − 1) + bytes/bandwidth · f(p)`
//! with `f(p) = (p − 1)/p` (each extra processor receives its share over
//! the interconnect; one share is already local). The dataset size is
//! approximated from the task's FLOP count via a bytes-per-FLOP factor.

use crate::ExecutionTimeModel;
use ptg::Task;

/// Adds per-allocation redistribution overhead to a base model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedistributionCost<M> {
    /// The wrapped computation-time model.
    pub base: M,
    /// Per-extra-processor startup latency in seconds (e.g. 50 µs).
    pub latency: f64,
    /// Interconnect bandwidth in bytes/s (e.g. 1 GB/s for Grid'5000-era
    /// gigabit Ethernet).
    pub bandwidth: f64,
    /// Approximate communicated bytes per task FLOP (how data-heavy tasks
    /// are); 0 disables the bandwidth term.
    pub bytes_per_flop: f64,
}

impl<M: ExecutionTimeModel> RedistributionCost<M> {
    /// A Grid'5000-era default: 50 µs latency, 1 GB/s, 0.01 B/FLOP.
    pub fn typical(base: M) -> Self {
        RedistributionCost {
            base,
            latency: 50e-6,
            bandwidth: 1e9,
            bytes_per_flop: 0.01,
        }
    }

    /// The overhead charged at processor count `p`.
    pub fn overhead(&self, task: &Task, p: u32) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let p = p as f64;
        let bytes = task.flop * self.bytes_per_flop;
        self.latency * (p - 1.0) + bytes / self.bandwidth * ((p - 1.0) / p)
    }
}

impl<M: ExecutionTimeModel> ExecutionTimeModel for RedistributionCost<M> {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        self.base.time(task, p, speed_flops) + self.overhead(task, p)
    }

    fn name(&self) -> &'static str {
        "redistribution"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Amdahl;

    fn task() -> Task {
        Task::new("t", 10e9, 0.0)
    }

    #[test]
    fn sequential_tasks_pay_nothing() {
        let m = RedistributionCost::typical(Amdahl);
        assert_eq!(m.overhead(&task(), 1), 0.0);
        assert_eq!(m.time(&task(), 1, 1e9), Amdahl.time(&task(), 1, 1e9));
    }

    #[test]
    fn overhead_grows_with_width() {
        let m = RedistributionCost::typical(Amdahl);
        let t = task();
        let mut prev = 0.0;
        for p in 2..=32 {
            let o = m.overhead(&t, p);
            assert!(o > prev, "p = {p}");
            prev = o;
        }
    }

    #[test]
    fn wrapped_model_becomes_non_monotonic_past_the_sweet_spot() {
        // With enough latency, very wide allocations get slower — the
        // monotonicity violation this workspace exists to handle.
        let m = RedistributionCost {
            base: Amdahl,
            latency: 0.05,
            bandwidth: 1e9,
            bytes_per_flop: 0.0,
        };
        let t = task();
        // t(p) = 10/p + 0.05 (p − 1): minimum near p = √(10/0.05) ≈ 14.
        let t14 = m.time(&t, 14, 1e9);
        let t32 = m.time(&t, 32, 1e9);
        assert!(t32 > t14, "{t32} vs {t14}");
        // but the small end still speeds up
        assert!(m.time(&t, 4, 1e9) < m.time(&t, 1, 1e9));
    }

    #[test]
    fn bandwidth_term_scales_with_task_size() {
        let m = RedistributionCost {
            base: Amdahl,
            latency: 0.0,
            bandwidth: 1e9,
            bytes_per_flop: 0.1,
        };
        let small = Task::new("s", 1e9, 0.0);
        let big = Task::new("b", 10e9, 0.0);
        assert!((m.overhead(&big, 4) - 10.0 * m.overhead(&small, 4)).abs() < 1e-12);
    }

    #[test]
    fn zero_config_reduces_to_base_model() {
        let m = RedistributionCost {
            base: Amdahl,
            latency: 0.0,
            bandwidth: 1e9,
            bytes_per_flop: 0.0,
        };
        let t = task();
        for p in 1..=16 {
            assert_eq!(m.time(&t, p, 1e9), Amdahl.time(&t, p, 1e9));
        }
    }
}
