//! Model 1 — Amdahl's law.

use crate::ExecutionTimeModel;
use ptg::Task;

/// Amdahl's-law execution time: `T(v,p) = (α + (1−α)/p) · T(v,1)` with
/// `T(v,1) = flop / speed`.
///
/// The execution time is monotonically non-increasing in `p`, with the
/// sequential fraction `α` bounding the achievable speedup by `1/α`.
///
/// ```
/// use exec_model::{Amdahl, ExecutionTimeModel};
/// use ptg::Task;
///
/// let t = Task::new("mm", 2e9, 0.25);
/// let m = Amdahl;
/// let seq = m.time(&t, 1, 1e9);
/// assert_eq!(seq, 2.0);
/// // Infinite processors would approach alpha * seq = 0.5 s.
/// assert!(m.time(&t, 1024, 1e9) < 0.51);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Amdahl;

impl ExecutionTimeModel for Amdahl {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        assert!(p >= 1, "allocation must use at least one processor");
        assert!(
            speed_flops > 0.0 && speed_flops.is_finite(),
            "processor speed must be positive"
        );
        let seq = task.flop / speed_flops;
        (task.alpha + (1.0 - task.alpha) / p as f64) * seq
    }

    fn name(&self) -> &'static str {
        "amdahl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(alpha: f64) -> Task {
        Task::new("t", 4e9, alpha)
    }

    #[test]
    fn sequential_time_is_flop_over_speed() {
        let m = Amdahl;
        assert!((m.time(&task(0.3), 1, 2e9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fully_parallel_task_scales_perfectly() {
        let m = Amdahl;
        let t = task(0.0);
        let seq = m.time(&t, 1, 1e9);
        for p in [2u32, 4, 8, 16] {
            assert!((m.time(&t, p, 1e9) - seq / p as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_sequential_task_never_speeds_up() {
        let m = Amdahl;
        let t = task(1.0);
        let seq = m.time(&t, 1, 1e9);
        assert_eq!(m.time(&t, 64, 1e9), seq);
    }

    #[test]
    fn time_is_monotonically_non_increasing_in_p() {
        let m = Amdahl;
        let t = task(0.2);
        let mut prev = f64::INFINITY;
        for p in 1..=128 {
            let cur = m.time(&t, p, 3.1e9);
            assert!(cur <= prev + 1e-15, "p={p}: {cur} > {prev}");
            prev = cur;
        }
    }

    #[test]
    fn speedup_is_bounded_by_inverse_alpha() {
        let m = Amdahl;
        let t = task(0.25);
        let seq = m.time(&t, 1, 1e9);
        let fast = m.time(&t, 10_000, 1e9);
        assert!(seq / fast < 1.0 / 0.25 + 1e-9);
    }

    #[test]
    fn paper_formula_spot_check() {
        // alpha = 0.25, p = 4: T = (0.25 + 0.75/4) * seq = 0.4375 * seq
        let m = Amdahl;
        let t = task(0.25);
        let seq = m.time(&t, 1, 1e9);
        assert!((m.time(&t, 4, 1e9) - 0.4375 * seq).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = Amdahl.time(&task(0.1), 0, 1e9);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn non_positive_speed_panics() {
        let _ = Amdahl.time(&task(0.1), 1, 0.0);
    }
}
