//! Interpolated models from sparse measurements.
//!
//! Benchmarking a code at *every* processor count (as [`crate::Tabulated`]
//! assumes) is rarely affordable; real measurement campaigns sample a few
//! widths — powers of two, say — and predict the rest. The paper's related
//! work points at exactly this gap (Pfeiffer & Wright's regression case
//! study: "many experiments are required to obtain robust fits").
//! `SparseTabulated` stores `(p, time)` samples for one reference task and
//! predicts intermediate widths by linear interpolation of the *speedup*
//! curve, clamping outside the sampled range.

use crate::ExecutionTimeModel;
use ptg::Task;

/// Speedup model interpolated from sparse `(p, speedup)` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTabulated {
    /// Sorted, deduplicated samples; always starts at `(1, 1.0)`.
    samples: Vec<(u32, f64)>,
}

impl SparseTabulated {
    /// Builds the model from measured `(p, time)` pairs of one reference
    /// task. A sample at `p = 1` is required (it anchors the speedups).
    ///
    /// # Panics
    /// Panics on duplicate processor counts, missing `p = 1`, or
    /// non-positive times.
    pub fn from_measurements(measurements: &[(u32, f64)]) -> Self {
        assert!(!measurements.is_empty(), "need at least one measurement");
        let mut sorted = measurements.to_vec();
        sorted.sort_by_key(|&(p, _)| p);
        assert!(
            sorted.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate processor counts in measurements"
        );
        assert_eq!(sorted[0].0, 1, "a measurement at p = 1 is required");
        assert!(
            sorted.iter().all(|&(_, t)| t > 0.0 && t.is_finite()),
            "times must be positive and finite"
        );
        let t1 = sorted[0].1;
        let samples = sorted.into_iter().map(|(p, t)| (p, t1 / t)).collect();
        SparseTabulated { samples }
    }

    /// The interpolated speedup at `p`.
    pub fn speedup(&self, p: u32) -> f64 {
        assert!(p >= 1, "allocation must use at least one processor");
        match self.samples.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(i) => self.samples[i].1,
            Err(i) => {
                if i == 0 {
                    self.samples[0].1
                } else if i == self.samples.len() {
                    self.samples[self.samples.len() - 1].1
                } else {
                    let (p0, s0) = self.samples[i - 1];
                    let (p1, s1) = self.samples[i];
                    let frac = (p - p0) as f64 / (p1 - p0) as f64;
                    s0 + frac * (s1 - s0)
                }
            }
        }
    }

    /// Largest sampled processor count.
    pub fn p_max_sampled(&self) -> u32 {
        self.samples.last().expect("non-empty samples").0
    }
}

impl ExecutionTimeModel for SparseTabulated {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        let seq = task.flop / speed_flops;
        seq / self.speedup(p)
    }

    fn name(&self) -> &'static str {
        "sparse-tabulated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Power-of-two measurements of a nearly linear code.
    fn model() -> SparseTabulated {
        SparseTabulated::from_measurements(&[(1, 8.0), (2, 4.2), (4, 2.2), (8, 1.3), (16, 0.9)])
    }

    #[test]
    fn exact_samples_are_reproduced() {
        let m = model();
        assert_eq!(m.speedup(1), 1.0);
        assert!((m.speedup(4) - 8.0 / 2.2).abs() < 1e-12);
        assert!((m.speedup(16) - 8.0 / 0.9).abs() < 1e-12);
        assert_eq!(m.p_max_sampled(), 16);
    }

    #[test]
    fn intermediate_widths_interpolate_linearly() {
        let m = model();
        let s2 = m.speedup(2);
        let s4 = m.speedup(4);
        let s3 = m.speedup(3);
        assert!((s3 - (s2 + s4) / 2.0).abs() < 1e-12, "midpoint of 2 and 4");
        assert!(s2 < s3 && s3 < s4);
    }

    #[test]
    fn beyond_the_last_sample_clamps() {
        let m = model();
        assert_eq!(m.speedup(64), m.speedup(16));
    }

    #[test]
    fn time_uses_task_size_and_speed() {
        let m = model();
        let t = Task::new("x", 16e9, 0.0);
        // seq = 16 s at 1 GFLOPS; at p = 8 speedup is 8/1.3
        let expected = 16.0 / (8.0 / 1.3);
        assert!((m.time(&t, 8, 1e9) - expected).abs() < 1e-9);
    }

    #[test]
    fn interpolation_can_encode_non_monotonic_measurements() {
        // A measured slowdown at p = 3 (odd-count penalty) survives.
        let m = SparseTabulated::from_measurements(&[(1, 8.0), (2, 4.0), (3, 4.8), (4, 2.0)]);
        assert!(m.speedup(3) < m.speedup(2));
        assert!(m.speedup(4) > m.speedup(2));
    }

    #[test]
    fn works_with_the_time_matrix_and_emts_pipeline() {
        use crate::TimeMatrix;
        use ptg::PtgBuilder;
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 8e9, 0.0);
        let c = b.add_task("c", 8e9, 0.0);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let matrix = TimeMatrix::compute(&g, &model(), 1e9, 16);
        assert!(matrix.time(a, 16) < matrix.time(a, 1));
    }

    #[test]
    #[should_panic(expected = "p = 1 is required")]
    fn missing_sequential_sample_panics() {
        let _ = SparseTabulated::from_measurements(&[(2, 4.0), (4, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate processor counts")]
    fn duplicate_sample_panics() {
        let _ = SparseTabulated::from_measurements(&[(1, 8.0), (2, 4.0), (2, 3.9)]);
    }
}
