//! Model 2 — the paper's synthetic non-monotonic model.

use crate::{Amdahl, ExecutionTimeModel};
use ptg::Task;

/// Wrapper that makes any base model non-monotonic the way the paper's
/// Algorithm 1 does, imitating PDGEMM's sensitivity to block sizes:
///
/// * `p` odd and `p > 1` → time × `odd_penalty` (paper: 1.3),
/// * `p` even and `√p` **not** an integer → time × `sqrt_penalty`
///   (paper: 1.1),
/// * `p = 1`, and even perfect squares (4, 16, 36, 64, …) are unpenalized.
///
/// The paper's printed pseudo-code applies the 1.1 factor when `√p` *is* an
/// integer, contradicting its own prose ("increases the execution time … if
/// this number has no integer square root") and Figure 1's shape; we follow
/// the prose (see DESIGN.md, "Faithfulness notes").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonMonotonicPenalty<M> {
    /// The underlying (typically monotonic) model.
    pub base: M,
    /// Multiplier for odd processor counts (> 1).
    pub odd_penalty: f64,
    /// Multiplier for even counts that are not perfect squares.
    pub sqrt_penalty: f64,
}

impl<M> NonMonotonicPenalty<M> {
    /// Wraps `base` with the paper's penalties (1.3 / 1.1).
    pub fn paper(base: M) -> Self {
        NonMonotonicPenalty {
            base,
            odd_penalty: 1.3,
            sqrt_penalty: 1.1,
        }
    }

    /// The multiplicative penalty applied at processor count `p`.
    pub fn penalty(&self, p: u32) -> f64 {
        if p <= 1 {
            1.0
        } else if p % 2 == 1 {
            self.odd_penalty
        } else if !is_perfect_square(p) {
            self.sqrt_penalty
        } else {
            1.0
        }
    }
}

/// Integer perfect-square test (no floating-point round-off).
pub(crate) fn is_perfect_square(p: u32) -> bool {
    let r = (p as f64).sqrt().round() as u32;
    // Check the two candidates around the rounded root to be safe.
    r.checked_mul(r) == Some(p)
        || r.checked_sub(1).and_then(|q| q.checked_mul(q)) == Some(p)
        || r.checked_add(1).and_then(|q| q.checked_mul(q)) == Some(p)
}

impl<M: ExecutionTimeModel> ExecutionTimeModel for NonMonotonicPenalty<M> {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        self.base.time(task, p, speed_flops) * self.penalty(p)
    }

    fn name(&self) -> &'static str {
        "synthetic"
    }
}

/// The paper's Model 2: Amdahl's law with the PDGEMM-style penalties.
pub type SyntheticModel = NonMonotonicPenalty<Amdahl>;

impl Default for SyntheticModel {
    fn default() -> Self {
        NonMonotonicPenalty::paper(Amdahl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_square_detection() {
        let squares: Vec<u32> = (1..=12).map(|i| i * i).collect();
        for p in 1..=150 {
            assert_eq!(
                is_perfect_square(p),
                squares.contains(&p),
                "p = {p} misclassified"
            );
        }
    }

    #[test]
    fn p1_is_never_penalized() {
        let m = SyntheticModel::default();
        assert_eq!(m.penalty(1), 1.0);
    }

    #[test]
    fn odd_counts_get_30_percent_penalty() {
        let m = SyntheticModel::default();
        for p in [3u32, 5, 7, 9, 25, 121] {
            assert_eq!(m.penalty(p), 1.3, "p = {p}");
        }
    }

    #[test]
    fn even_non_squares_get_10_percent_penalty() {
        let m = SyntheticModel::default();
        for p in [2u32, 6, 8, 10, 12, 32, 50] {
            assert_eq!(m.penalty(p), 1.1, "p = {p}");
        }
    }

    #[test]
    fn even_perfect_squares_are_free() {
        let m = SyntheticModel::default();
        for p in [4u32, 16, 36, 64, 100, 144] {
            assert_eq!(m.penalty(p), 1.0, "p = {p}");
        }
    }

    #[test]
    fn model2_is_genuinely_non_monotonic() {
        // Going from p=4 (no penalty) to p=5 (odd) must increase the time for
        // a scalable task: Amdahl gain 4→5 is at most 25%, penalty is 30%.
        let m = SyntheticModel::default();
        let t = Task::new("mm", 8e9, 0.05);
        let t4 = m.time(&t, 4, 1e9);
        let t5 = m.time(&t, 5, 1e9);
        assert!(t5 > t4, "expected t(5) > t(4): {t5} vs {t4}");
    }

    #[test]
    fn model2_equals_model1_at_unpenalized_points() {
        let m2 = SyntheticModel::default();
        let t = Task::new("mm", 8e9, 0.1);
        for p in [1u32, 4, 16, 64] {
            assert_eq!(m2.time(&t, p, 1e9), Amdahl.time(&t, p, 1e9));
        }
    }

    #[test]
    fn model2_matches_hand_computation() {
        let m2 = SyntheticModel::default();
        let t = Task::new("mm", 1e9, 0.0);
        // p = 6: Amdahl gives 1/6 s; even non-square → × 1.1
        assert!((m2.time(&t, 6, 1e9) - 1.1 / 6.0).abs() < 1e-12);
        // p = 3: 1/3 s × 1.3
        assert!((m2.time(&t, 3, 1e9) - 1.3 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn custom_penalties_are_respected() {
        let m = NonMonotonicPenalty {
            base: Amdahl,
            odd_penalty: 2.0,
            sqrt_penalty: 1.5,
        };
        assert_eq!(m.penalty(3), 2.0);
        assert_eq!(m.penalty(8), 1.5);
        assert_eq!(m.penalty(4), 1.0);
    }
}
