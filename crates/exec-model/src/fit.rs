//! Fitting analytic models to measurements.
//!
//! "Finding a good empirical model for predicting the execution time of a
//! parallel application is challenging. Linear regression can help to
//! provide such a function" (§II-B, citing Pfeiffer & Wright). This module
//! closes the loop from measurements to the models the schedulers consume:
//! least-squares estimation of Amdahl's `(T₁, α)` from `(p, time)` samples.
//!
//! Amdahl's law is linear in the regressor `x = 1/p`:
//! `T(p) = T₁·α + T₁·(1−α) · x = a + b·x`, so ordinary least squares on
//! `(1/p, T)` recovers `T₁ = a + b` and `α = a / (a + b)`.

use crate::ExecutionTimeModel;
use ptg::Task;

/// An Amdahl fit: estimated sequential time and serial fraction, plus the
/// fit quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmdahlFit {
    /// Estimated sequential execution time `T₁` in seconds.
    pub seq_time: f64,
    /// Estimated serial fraction `α`, clamped into `[0, 1]`.
    pub alpha: f64,
    /// Coefficient of determination R² of the regression in `(1/p, T)`
    /// space (1.0 = perfect fit).
    pub r_squared: f64,
}

impl AmdahlFit {
    /// Predicted time at `p` processors.
    pub fn predict(&self, p: u32) -> f64 {
        assert!(p >= 1);
        self.seq_time * (self.alpha + (1.0 - self.alpha) / p as f64)
    }

    /// Converts the fit into a [`Task`] whose Amdahl evaluation at speed
    /// `speed_flops` reproduces the fitted curve.
    pub fn to_task(&self, name: impl Into<String>, speed_flops: f64) -> Task {
        Task::new(name, self.seq_time * speed_flops, self.alpha)
    }
}

/// Least-squares Amdahl fit over `(p, time)` measurements.
///
/// # Panics
/// Panics with fewer than two distinct processor counts or non-positive
/// times.
pub fn fit_amdahl(measurements: &[(u32, f64)]) -> AmdahlFit {
    assert!(
        measurements.len() >= 2,
        "need at least two measurements to fit two parameters"
    );
    assert!(
        measurements
            .iter()
            .all(|&(p, t)| p >= 1 && t > 0.0 && t.is_finite()),
        "measurements must have p ≥ 1 and positive finite times"
    );
    let n = measurements.len() as f64;
    let xs: Vec<f64> = measurements.iter().map(|&(p, _)| 1.0 / p as f64).collect();
    let ys: Vec<f64> = measurements.iter().map(|&(_, t)| t).collect();
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    assert!(
        sxx > 0.0,
        "need at least two distinct processor counts to fit"
    );
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let b = sxy / sxx; // slope = T₁(1−α)
    let a = mean_y - b * mean_x; // intercept = T₁·α
    let seq_time = (a + b).max(f64::MIN_POSITIVE);
    let alpha = (a / seq_time).clamp(0.0, 1.0);

    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (a + b * x)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    AmdahlFit {
        seq_time,
        alpha,
        r_squared,
    }
}

/// Samples a model at the given processor counts and fits Amdahl to the
/// result — measures how "Amdahl-like" an arbitrary model is.
pub fn fit_amdahl_to_model<M: ExecutionTimeModel + ?Sized>(
    model: &M,
    task: &Task,
    speed_flops: f64,
    ps: &[u32],
) -> AmdahlFit {
    let samples: Vec<(u32, f64)> = ps
        .iter()
        .map(|&p| (p, model.time(task, p, speed_flops)))
        .collect();
    fit_amdahl(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Amdahl, SyntheticModel};

    #[test]
    fn recovers_exact_amdahl_parameters() {
        let task = Task::new("t", 10e9, 0.2);
        let ps = [1u32, 2, 4, 8, 16, 32];
        let fit = fit_amdahl_to_model(&Amdahl, &task, 1e9, &ps);
        assert!((fit.seq_time - 10.0).abs() < 1e-9, "{fit:?}");
        assert!((fit.alpha - 0.2).abs() < 1e-9, "{fit:?}");
        assert!(fit.r_squared > 1.0 - 1e-12);
    }

    #[test]
    fn prediction_matches_amdahl_evaluation() {
        let fit = AmdahlFit {
            seq_time: 8.0,
            alpha: 0.25,
            r_squared: 1.0,
        };
        for p in [1u32, 3, 10] {
            let expected = 8.0 * (0.25 + 0.75 / p as f64);
            assert!((fit.predict(p) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn to_task_round_trips_through_the_amdahl_model() {
        let fit = AmdahlFit {
            seq_time: 4.0,
            alpha: 0.1,
            r_squared: 1.0,
        };
        let task = fit.to_task("fitted", 2e9);
        for p in 1..=16 {
            assert!((Amdahl.time(&task, p, 2e9) - fit.predict(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn model2_fits_worse_than_model1() {
        let task = Task::new("t", 10e9, 0.1);
        let ps: Vec<u32> = (1..=16).collect();
        let clean = fit_amdahl_to_model(&Amdahl, &task, 1e9, &ps);
        let noisy = fit_amdahl_to_model(&SyntheticModel::default(), &task, 1e9, &ps);
        assert!(noisy.r_squared < clean.r_squared);
        assert!(noisy.r_squared > 0.5, "still roughly Amdahl-shaped");
    }

    #[test]
    fn noisy_measurements_give_reasonable_estimates() {
        // Hand-made measurements of T(p) = 6·(0.3 + 0.7/p) with ±2 % noise.
        let data: Vec<(u32, f64)> = [(1u32, 1.00), (2, 0.98), (4, 1.02), (8, 0.99), (16, 1.01)]
            .iter()
            .map(|&(p, noise)| (p, 6.0 * (0.3 + 0.7 / p as f64) * noise))
            .collect();
        let fit = fit_amdahl(&data);
        assert!((fit.seq_time - 6.0).abs() < 0.3, "{fit:?}");
        assert!((fit.alpha - 0.3).abs() < 0.05, "{fit:?}");
    }

    #[test]
    fn alpha_is_clamped_for_super_linear_data() {
        // Super-linear speedup (cache effects) would imply α < 0; clamp.
        let fit = fit_amdahl(&[(1, 8.0), (2, 3.5), (4, 1.6)]);
        assert!(fit.alpha >= 0.0);
    }

    #[test]
    #[should_panic(expected = "two distinct processor counts")]
    fn single_width_panics() {
        let _ = fit_amdahl(&[(4, 1.0), (4, 1.1)]);
    }

    #[test]
    #[should_panic(expected = "at least two measurements")]
    fn single_sample_panics() {
        let _ = fit_amdahl(&[(1, 1.0)]);
    }
}
