//! Downey's speedup model (related-work extension).
//!
//! A. B. Downey, "A Model for Speedup of Parallel Programs", UC Berkeley
//! TR CSD-97-933, 1997. Each task is characterized by its *average
//! parallelism* `A` and the *variance of parallelism* `σ`; the speedup
//! `S(p)` is piecewise defined and saturates at `A`. The paper under
//! reproduction cites this as one of the two standard models ("most
//! scheduling algorithms use one of two different models … the first is
//! based on the speed-up model of Downey"), so we provide it for
//! experimentation beyond the paper's own Models 1 and 2.

use crate::ExecutionTimeModel;
use ptg::Task;

/// Downey's speedup model. `T(v,p) = T(v,1) / S(p; A, σ)`.
///
/// The task's `alpha` field is ignored; `A` and `σ` are model-level
/// parameters here (per-task variants can be built with one `Downey` value
/// per task through [`Tabulated`](crate::Tabulated) if needed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Downey {
    /// Average parallelism `A ≥ 1`.
    pub avg_parallelism: f64,
    /// Variance of parallelism `σ ≥ 0`.
    pub sigma: f64,
}

impl Downey {
    /// Creates the model, validating `A ≥ 1` and `σ ≥ 0`.
    pub fn new(avg_parallelism: f64, sigma: f64) -> Self {
        assert!(
            avg_parallelism >= 1.0 && avg_parallelism.is_finite(),
            "average parallelism must be ≥ 1"
        );
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be ≥ 0");
        Downey {
            avg_parallelism,
            sigma,
        }
    }

    /// Downey's speedup function `S(n)`.
    pub fn speedup(&self, n: u32) -> f64 {
        let a = self.avg_parallelism;
        let s = self.sigma;
        let n = n as f64;
        if n <= 1.0 {
            return 1.0;
        }
        let sp = if s <= 1.0 {
            // Low-variance branch.
            if n <= a {
                a * n / (a + s / 2.0 * (n - 1.0))
            } else if n <= 2.0 * a - 1.0 {
                a * n / (s * (a - 0.5) + n * (1.0 - s / 2.0))
            } else {
                a
            }
        } else {
            // High-variance branch.
            let knee = a + a * s - s;
            if n < knee {
                n * a * (s + 1.0) / (s * (n + a - 1.0) + a)
            } else {
                a
            }
        };
        sp.clamp(1.0, a.max(1.0))
    }
}

impl ExecutionTimeModel for Downey {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        assert!(p >= 1, "allocation must use at least one processor");
        let seq = task.flop / speed_flops;
        seq / self.speedup(p)
    }

    fn name(&self) -> &'static str {
        "downey"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_at_one_processor_is_one() {
        for (a, s) in [(4.0, 0.5), (16.0, 2.0), (1.0, 0.0)] {
            assert_eq!(Downey::new(a, s).speedup(1), 1.0);
        }
    }

    #[test]
    fn speedup_saturates_at_average_parallelism() {
        let m = Downey::new(8.0, 0.5);
        assert!((m.speedup(1000) - 8.0).abs() < 1e-12);
        let m = Downey::new(8.0, 3.0);
        assert!((m.speedup(1000) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_monotone_non_decreasing() {
        for (a, s) in [(10.0, 0.3), (10.0, 1.0), (10.0, 4.0), (3.0, 0.0)] {
            let m = Downey::new(a, s);
            let mut prev = 0.0;
            for n in 1..=64 {
                let cur = m.speedup(n);
                assert!(cur + 1e-12 >= prev, "A={a} s={s} n={n}: {cur} < {prev}");
                prev = cur;
            }
        }
    }

    #[test]
    fn zero_variance_means_linear_then_flat() {
        let m = Downey::new(6.0, 0.0);
        for n in 1..=6u32 {
            assert!((m.speedup(n) - n as f64).abs() < 1e-9, "n = {n}");
        }
        assert!((m.speedup(32) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn time_is_seq_over_speedup() {
        let m = Downey::new(4.0, 0.5);
        let t = Task::new("x", 8e9, 0.0);
        let seq = m.time(&t, 1, 1e9);
        assert!((seq - 8.0).abs() < 1e-12);
        let t4 = m.time(&t, 4, 1e9);
        assert!((t4 - seq / m.speedup(4)).abs() < 1e-12);
    }

    #[test]
    fn higher_variance_gives_lower_speedup_midrange() {
        let low = Downey::new(16.0, 0.2);
        let high = Downey::new(16.0, 4.0);
        assert!(low.speedup(8) > high.speedup(8));
    }

    #[test]
    #[should_panic(expected = "average parallelism")]
    fn invalid_parallelism_panics() {
        let _ = Downey::new(0.5, 0.1);
    }
}
