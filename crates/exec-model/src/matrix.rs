//! Pre-evaluated `(task, p)` time matrix.

use crate::ExecutionTimeModel;
use ptg::{Ptg, TaskId};

/// Dense matrix of execution times `t(v, p)` for every task of a PTG and
/// every processor count `1 ..= p_max`.
///
/// Allocation heuristics query `t(v, p)` and `t(v, p+1)` in tight loops and
/// the EA's fitness function evaluates whole allocation vectors thousands of
/// times per run; for the problem sizes of the paper (V ≤ 100, P ≤ 120) the
/// full matrix is ≤ 96 kB and pre-computing it removes the model from the
/// hot path entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeMatrix {
    p_max: u32,
    /// Row-major: `times[v * p_max + (p - 1)]`.
    times: Vec<f64>,
}

impl TimeMatrix {
    /// Evaluates `model` for every task of `g` at every `p ∈ 1..=p_max`.
    pub fn compute<M: ExecutionTimeModel + ?Sized>(
        g: &Ptg,
        model: &M,
        speed_flops: f64,
        p_max: u32,
    ) -> Self {
        assert!(p_max >= 1, "platform must have at least one processor");
        let mut times = Vec::with_capacity(g.task_count() * p_max as usize);
        for v in g.task_ids() {
            let task = g.task(v);
            for p in 1..=p_max {
                let t = model.time(task, p, speed_flops);
                assert!(
                    t.is_finite() && t > 0.0,
                    "model produced invalid time {t} for task {v} at p = {p}"
                );
                times.push(t);
            }
        }
        TimeMatrix { p_max, times }
    }

    /// Largest processor count covered.
    #[inline]
    pub fn p_max(&self) -> u32 {
        self.p_max
    }

    /// Number of tasks covered.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.times.len() / self.p_max as usize
    }

    /// The execution time of task `v` on `p` processors.
    ///
    /// # Panics
    /// Panics (via debug assertion / slice indexing) if `p` is 0 or exceeds
    /// `p_max`, or if `v` is out of range.
    // lint:hot-path
    #[inline]
    pub fn time(&self, v: TaskId, p: u32) -> f64 {
        debug_assert!(p >= 1 && p <= self.p_max, "p = {p} out of range");
        self.times[v.index() * self.p_max as usize + (p as usize - 1)]
    }

    /// Gathers the per-task times for an allocation vector `alloc[v]`.
    pub fn times_for(&self, alloc: &[u32]) -> Vec<f64> {
        assert_eq!(alloc.len(), self.task_count());
        alloc
            .iter()
            .enumerate()
            .map(|(i, &p)| self.time(TaskId::from_index(i), p))
            .collect()
    }

    /// Writes the per-task times for `alloc` into `out` without allocating.
    // lint:hot-path
    pub fn fill_times(&self, alloc: &[u32], out: &mut Vec<f64>) {
        assert_eq!(alloc.len(), self.task_count());
        out.clear();
        out.extend(
            alloc
                .iter()
                .enumerate()
                .map(|(i, &p)| self.time(TaskId::from_index(i), p)),
        );
    }

    /// The processor count minimizing `t(v, ·)` (smallest on ties).
    pub fn best_p(&self, v: TaskId) -> u32 {
        let mut best = 1;
        let mut best_t = self.time(v, 1);
        for p in 2..=self.p_max {
            let t = self.time(v, p);
            if t < best_t {
                best_t = t;
                best = p;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Amdahl, SyntheticModel};
    use ptg::PtgBuilder;

    fn two_task_graph() -> Ptg {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1e9, 0.0);
        let c = b.add_task("c", 2e9, 0.5);
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matrix_matches_direct_model_evaluation() {
        let g = two_task_graph();
        let m = SyntheticModel::default();
        let mat = TimeMatrix::compute(&g, &m, 2e9, 16);
        for v in g.task_ids() {
            for p in 1..=16 {
                assert_eq!(mat.time(v, p), m.time(g.task(v), p, 2e9));
            }
        }
    }

    #[test]
    fn dimensions_are_reported() {
        let g = two_task_graph();
        let mat = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        assert_eq!(mat.p_max(), 8);
        assert_eq!(mat.task_count(), 2);
    }

    #[test]
    fn times_for_gathers_per_allocation() {
        let g = two_task_graph();
        let mat = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let times = mat.times_for(&[2, 4]);
        assert_eq!(times[0], mat.time(TaskId(0), 2));
        assert_eq!(times[1], mat.time(TaskId(1), 4));
    }

    #[test]
    fn fill_times_reuses_buffer() {
        let g = two_task_graph();
        let mat = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let mut buf = Vec::with_capacity(2);
        mat.fill_times(&[1, 1], &mut buf);
        assert_eq!(buf, mat.times_for(&[1, 1]));
        mat.fill_times(&[8, 8], &mut buf);
        assert_eq!(buf, mat.times_for(&[8, 8]));
    }

    #[test]
    fn best_p_finds_global_minimum_under_model2() {
        let g = two_task_graph();
        let mat = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 8);
        // Fully parallel task 0: minimum at p = 8? t(8) = 1.1/8 = 0.1375,
        // t(4) = 0.25 — so 8 wins despite the penalty.
        assert_eq!(mat.best_p(TaskId(0)), 8);
        // Task 1 has alpha = 0.5: t(4) = 0.625·2 = 1.25, t(8) = 1.1·(0.5+0.0625)·2 = 1.2375,
        // still 8... verify against brute force instead of hand numbers.
        let brute = (1..=8)
            .min_by(|&a, &b| {
                mat.time(TaskId(1), a)
                    .partial_cmp(&mat.time(TaskId(1), b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(mat.best_p(TaskId(1)), brute);
    }

    #[test]
    #[should_panic]
    fn mismatched_allocation_length_panics() {
        let g = two_task_graph();
        let mat = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let _ = mat.times_for(&[1]);
    }
}
