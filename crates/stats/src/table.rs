//! Fixed-width text tables for terminal experiment reports.

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to their widest cell.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as GitHub-flavored markdown (used by EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(["name", "value"]);
        t.push(["alpha", "1.00"]);
        t.push(["longer-name", "2"]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let txt = sample().render();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer-name"));
        // value column starts at the same offset in all data rows
        let off2 = lines[2].find("1.00").unwrap();
        let off3 = lines[3].find('2').unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().render_markdown();
        assert!(md.starts_with("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| alpha | 1.00 |"));
    }

    #[test]
    fn len_tracks_rows() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(TextTable::new(["a"]).is_empty());
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.push(["only-one"]);
    }
}
