//! Summary statistics for the experiment harness.
//!
//! The paper reports *average relative makespans with 95 % confidence
//! intervals* (Figs. 4 and 5) and run times as *mean (SD)* (§V-B). This
//! crate provides exactly those aggregations plus simple histograms (for
//! the mutation-operator density of Fig. 3) and fixed-width text tables for
//! terminal reports.

pub mod compare;
pub mod histogram;
pub mod summary;
pub mod table;

pub use compare::{median, quantile, welch_t_test, WelchTest};
pub use histogram::Histogram;
pub use summary::Summary;
pub use table::TextTable;
