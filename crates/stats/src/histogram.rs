//! Fixed-bin histograms (used to regenerate the mutation density of Fig. 3).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A histogram over `[lo, hi)` with equally wide bins; values outside the
/// range land in saturating edge bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram values must be finite");
        let bins = self.counts.len();
        let idx = if value < self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `(center, density)` pairs of all bins — directly plottable as an
    /// empirical PDF (densities integrate to 1 over the range).
    pub fn density(&self) -> Vec<(f64, f64)> {
        let bins = self.counts.len();
        let bin_width = (self.hi - self.lo) / bins as f64;
        let norm = if self.total == 0 {
            0.0
        } else {
            1.0 / (self.total as f64 * bin_width)
        };
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * bin_width;
                (center, c as f64 * norm)
            })
            .collect()
    }

    /// Renders a horizontal bar chart, `width` characters for the largest
    /// bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let bins = self.counts.len();
        let bin_width = (self.hi - self.lo) / bins as f64;
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.lo + i as f64 * bin_width;
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{:>9.2} | {:<w$} {}",
                lo,
                "#".repeat(bar_len),
                c,
                w = width
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 1.7, 9.9]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_values_saturate() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(-5.0, 5.0, 20);
        h.extend((0..1000).map(|i| -4.9 + 9.8 * (i as f64 / 999.0)));
        let bin_width = 10.0 / 20.0;
        let integral: f64 = h.density().iter().map(|&(_, d)| d * bin_width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_centers_are_correct() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.density().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend([0.5, 1.5, 1.6]);
        let txt = h.render(10);
        assert_eq!(txt.lines().count(), 3);
        assert!(txt.contains('#'));
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn inverted_range_panics() {
        let _ = Histogram::new(5.0, 1.0, 3);
    }
}
