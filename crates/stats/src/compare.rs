//! Percentiles and two-sample comparison (Welch's t-test).
//!
//! The ablation binaries don't just want means — "configuration A beats B"
//! needs a significance check. Welch's unequal-variance t-test is the
//! standard tool for comparing two makespan samples without assuming equal
//! spread.

use crate::summary::t_quantile_975;
use serde::{Deserialize, Serialize};

/// The `q`-quantile of a sample (linear interpolation between order
/// statistics, the common "type 7" estimator).
///
/// # Panics
/// Panics on an empty sample, non-finite values, or `q ∉ [0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q must lie in [0, 1], got {q}");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "sample contains non-finite values"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelchTest {
    /// The t statistic (positive when sample A's mean is larger).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Difference of means `mean(a) − mean(b)`.
    pub mean_diff: f64,
    /// True if |t| exceeds the two-sided 5 % critical value for `df`.
    pub significant_at_5pct: bool,
}

/// Welch's t-test for the difference of the means of `a` and `b`.
///
/// # Panics
/// Panics if either sample has fewer than two values.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> WelchTest {
    assert!(a.len() >= 2 && b.len() >= 2, "need ≥ 2 values per sample");
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var =
        |s: &[f64], m: f64| s.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (s.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma), var(b, mb));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    let mean_diff = ma - mb;
    if se2 == 0.0 {
        // Identical constant samples: no evidence of difference (t = 0) or
        // infinite evidence (means differ with zero variance).
        let t = if mean_diff == 0.0 {
            0.0
        } else {
            f64::INFINITY * mean_diff.signum()
        };
        return WelchTest {
            t,
            df: na + nb - 2.0,
            mean_diff,
            significant_at_5pct: mean_diff != 0.0,
        };
    }
    let t = mean_diff / se2.sqrt();
    // Welch–Satterthwaite approximation.
    let df = se2.powi(2) / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let critical = t_quantile_975(df.floor().max(1.0) as usize);
    WelchTest {
        t,
        df,
        mean_diff,
        significant_at_5pct: t.abs() > critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sample() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(median(&v), 3.0);
        assert_eq!(quantile(&v, 0.25), 2.0);
        // interpolation between order statistics
        assert!((quantile(&v, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn unsorted_input_is_handled() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn clearly_different_samples_are_significant() {
        let a = [10.0, 10.1, 9.9, 10.2, 9.8, 10.0];
        let b = [5.0, 5.1, 4.9, 5.2, 4.8, 5.0];
        let test = welch_t_test(&a, &b);
        assert!(test.significant_at_5pct, "{test:?}");
        assert!(test.t > 0.0);
        assert!((test.mean_diff - 5.0).abs() < 1e-9);
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [3.0, 3.5, 2.5, 3.2];
        let test = welch_t_test(&a, &a);
        assert!(!test.significant_at_5pct);
        assert!(test.t.abs() < 1e-12);
    }

    #[test]
    fn overlapping_noisy_samples_are_not_significant() {
        let a = [10.0, 12.0, 8.0, 11.0];
        let b = [9.5, 11.5, 8.5, 12.5];
        let test = welch_t_test(&a, &b);
        assert!(!test.significant_at_5pct, "{test:?}");
    }

    #[test]
    fn constant_but_different_samples_are_significant() {
        let test = welch_t_test(&[2.0, 2.0], &[3.0, 3.0]);
        assert!(test.significant_at_5pct);
        assert!(test.t.is_infinite() && test.t < 0.0);
    }

    #[test]
    fn df_is_between_min_and_sum_of_sample_dfs() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let test = welch_t_test(&a, &b);
        assert!(test.df >= 3.0 && test.df <= 7.0, "df = {}", test.df);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_of_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "≥ 2 values")]
    fn welch_needs_two_values() {
        let _ = welch_t_test(&[1.0], &[1.0, 2.0]);
    }
}
