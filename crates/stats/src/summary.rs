//! Mean, standard deviation and Student-t confidence intervals.

use serde::{Deserialize, Serialize};

/// Summary of one sample: count, mean, sample SD and a 95 % confidence
/// interval for the mean (Student's t).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator); 0 for n < 2.
    pub sd: f64,
    /// Half-width of the 95 % confidence interval; 0 for n < 2.
    pub ci95: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    /// Panics on an empty slice or non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary {
                n,
                mean,
                sd: 0.0,
                ci95: 0.0,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let sd = var.sqrt();
        let ci95 = t_quantile_975(n - 1) * sd / (n as f64).sqrt();
        Summary { n, mean, sd, ci95 }
    }

    /// Lower bound of the 95 % CI.
    pub fn ci_low(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper bound of the 95 % CI.
    pub fn ci_high(&self) -> f64 {
        self.mean + self.ci95
    }

    /// `"mean ± ci95"` with the given precision — the paper's bar-plot
    /// annotation style.
    pub fn format(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.ci95, p = precision)
    }
}

/// Two-sided 97.5 % Student-t quantile for `df` degrees of freedom (the
/// multiplier for a 95 % CI). Table values for small df, asymptotic beyond.
pub fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Mean of pairwise ratios `num[i] / den[i]` — the paper's *relative
/// makespan* aggregation (`T_MCPA / T_EMTS5` averaged over instances).
pub fn ratio_summary(numerators: &[f64], denominators: &[f64]) -> Summary {
    assert_eq!(
        numerators.len(),
        denominators.len(),
        "ratio inputs must pair up"
    );
    assert!(
        denominators.iter().all(|&d| d > 0.0),
        "denominators must be positive"
    );
    let ratios: Vec<f64> = numerators
        .iter()
        .zip(denominators)
        .map(|(&n, &d)| n / d)
        .collect();
    Summary::of(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sd_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_value_has_zero_spread() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.ci_low(), s.ci_high());
    }

    #[test]
    fn ci_uses_t_distribution() {
        // n = 4, df = 3 → t = 3.182
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let expected = 3.182 * s.sd / 2.0;
        assert!((s.ci95 - expected).abs() < 1e-9);
        assert!(s.ci_low() < s.mean && s.mean < s.ci_high());
    }

    #[test]
    fn t_table_is_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_quantile_975(df);
            assert!(t <= prev, "df = {df}");
            prev = t;
        }
        assert_eq!(t_quantile_975(10_000), 1.96);
    }

    #[test]
    fn ratio_summary_matches_manual_ratios() {
        let s = ratio_summary(&[2.0, 3.0, 4.0], &[1.0, 1.5, 2.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn formatting_shows_mean_and_halfwidth() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.format(2), format!("{:.2} ± {:.2}", s.mean, s.ci95));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_sample_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn mismatched_ratio_inputs_panic() {
        let _ = ratio_summary(&[1.0], &[1.0, 2.0]);
    }
}
