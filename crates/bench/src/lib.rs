//! Experiment harness regenerating every figure and table of the paper.
//!
//! Each `fig*`/`table*` binary in `src/bin/` reproduces one artifact of the
//! paper's evaluation (see DESIGN.md §5 for the full index); the Criterion
//! benches in `benches/` time the building blocks behind the §V runtime
//! discussion. This library holds the shared machinery: CLI parsing, the
//! relative-makespan experiment of Figures 4 and 5, and result output.

pub mod ablation;
pub mod args;
pub mod experiment;
pub mod output;
pub mod report;

pub use args::HarnessArgs;
pub use experiment::{relative_makespan_grid, EmtsVariant, PanelResult};
pub use report::Harness;
