//! Recorder-backed terminal output and telemetry reports for the harness
//! binaries.
//!
//! Every `fig*`/`ablation_*`/`ext_*` binary drives its run through a
//! [`Harness`]: terminal chatter goes through [`Harness::say`] /
//! [`Harness::note`] (silenced by `--quiet`), EMTS internals are recorded
//! through [`Harness::recorder`], and `--report <file>` persists the whole
//! run as a schema-versioned [`obs::RunReport`] for `emts-report`.

use crate::args::HarnessArgs;
use obs::{RunReport, StatsRecorder};
use std::fmt::Display;

/// One harness run: parsed arguments plus the live telemetry recorder.
pub struct Harness {
    /// The binary's parsed command-line arguments.
    pub args: HarnessArgs,
    name: &'static str,
    rec: StatsRecorder,
}

impl Harness {
    /// Builds a harness for `name` (the report's `source` field) from the
    /// process arguments, printing usage and exiting on bad input.
    pub fn from_env(name: &'static str) -> Self {
        Self::new(name, HarnessArgs::from_env())
    }

    /// Builds a harness from already-parsed arguments.
    pub fn new(name: &'static str, args: HarnessArgs) -> Self {
        Harness {
            args,
            name,
            rec: StatsRecorder::new(),
        }
    }

    /// The recorder to thread into instrumented entry points
    /// (`run_recorded`, `run_obs`, …).
    pub fn recorder(&self) -> &StatsRecorder {
        &self.rec
    }

    /// Prints a result line to stdout unless `--quiet` was given.
    pub fn say(&self, msg: impl Display) {
        if !self.args.quiet {
            println!("{msg}");
        }
    }

    /// Prints a progress line to stderr unless `--quiet` was given.
    pub fn note(&self, msg: impl Display) {
        if !self.args.quiet {
            eprintln!("{msg}");
        }
    }

    /// Snapshot of the telemetry collected so far, stamped with the
    /// harness's scale/seed metadata.
    pub fn report(&self) -> RunReport {
        let mut report = self.rec.report(self.name);
        report
            .meta
            .insert("scale".into(), format!("{}", self.args.scale));
        report
            .meta
            .insert("seed".into(), self.args.seed.to_string());
        report
    }

    /// Writes the telemetry report if `--report` was given. Call once, at
    /// the end of `main`. Exits non-zero if the file cannot be written.
    pub fn finish(self) {
        if let Some(path) = &self.args.report {
            let report = self.report();
            if let Err(e) = report.save(path) {
                eprintln!("cannot write report {}: {e}", path.display());
                std::process::exit(1);
            }
            self.say(format_args!("wrote report {}", path.display()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Recorder;

    #[test]
    fn harness_report_carries_meta_and_telemetry() {
        let args = HarnessArgs {
            seed: 9,
            ..HarnessArgs::default()
        };
        let h = Harness::new("unit", args);
        h.recorder().add("x", 3);
        let report = h.report();
        assert_eq!(report.source, "unit");
        assert_eq!(report.meta["seed"], "9");
        assert_eq!(report.counters["x"], 3);
    }

    #[test]
    fn quiet_harness_still_records() {
        let args = HarnessArgs {
            quiet: true,
            ..HarnessArgs::default()
        };
        let h = Harness::new("unit", args);
        h.say("suppressed");
        h.recorder().gauge("g", 1.5);
        assert_eq!(h.report().gauges["g"], 1.5);
    }
}
