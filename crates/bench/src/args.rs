//! Minimal CLI argument handling shared by all harness binaries.
//!
//! Flags (all optional):
//!
//! * `--scale <f>` — corpus scale in `(0, 1]`; default 0.1 for quick runs,
//! * `--full` — shorthand for `--scale 1.0` (the paper's instance counts),
//! * `--seed <u64>` — RNG seed (default 2011, the paper's year),
//! * `--out <dir>` — directory for JSON results (default `results/`),
//! * `--quiet` — suppress terminal output (JSON artifacts still written),
//! * `--report <file>` — write an [`obs::RunReport`] with the run's phase
//!   timings, counters and histograms (viewable with `emts-report`).

use std::path::PathBuf;

/// Parsed harness arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Corpus scale in `(0, 1]`.
    pub scale: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Output directory for JSON artifacts.
    pub out: PathBuf,
    /// Suppress terminal output.
    pub quiet: bool,
    /// Where to write the telemetry report, if anywhere.
    pub report: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.1,
            seed: 2011,
            out: PathBuf::from("results"),
            quiet: false,
            report: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`-style input (first element = program name).
    ///
    /// Returns an error string mentioning the offending flag on bad input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut iter = args.into_iter().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().ok_or("--scale needs a value")?;
                    out.scale = v
                        .parse::<f64>()
                        .map_err(|_| format!("bad --scale value {v:?}"))?;
                    if !(out.scale > 0.0 && out.scale <= 1.0) {
                        return Err(format!("--scale must lie in (0, 1], got {}", out.scale));
                    }
                }
                "--full" => out.scale = 1.0,
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    out.seed = v
                        .parse::<u64>()
                        .map_err(|_| format!("bad --seed value {v:?}"))?;
                }
                "--out" => {
                    out.out = PathBuf::from(iter.next().ok_or("--out needs a value")?);
                }
                "--quiet" | "-q" => out.quiet = true,
                "--report" => {
                    out.report = Some(PathBuf::from(iter.next().ok_or("--report needs a file")?));
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale <0..1> | --full] [--seed <u64>] [--out <dir>] \
                         [--quiet] [--report <file>]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// Parses the real process arguments, printing usage and exiting on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args()) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(
            std::iter::once("prog".to_string()).chain(args.iter().map(|s| s.to_string())),
        )
    }

    #[test]
    fn defaults_apply_with_no_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, HarnessArgs::default());
        assert_eq!(a.seed, 2011);
    }

    #[test]
    fn flags_override_defaults() {
        let a = parse(&["--scale", "0.5", "--seed", "7", "--out", "/tmp/x"]).unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn full_sets_scale_to_one() {
        assert_eq!(parse(&["--full"]).unwrap().scale, 1.0);
    }

    #[test]
    fn quiet_and_report_flags_parse() {
        let a = parse(&["--quiet", "--report", "run.json"]).unwrap();
        assert!(a.quiet);
        assert_eq!(a.report, Some(PathBuf::from("run.json")));
        assert!(parse(&["-q"]).unwrap().quiet);
        assert!(parse(&["--report"]).is_err());
    }

    #[test]
    fn out_of_range_scale_is_rejected() {
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn missing_values_are_rejected() {
        assert!(parse(&["--seed"]).is_err());
    }
}
