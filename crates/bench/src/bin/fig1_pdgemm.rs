//! Figure 1 — PDGEMM-style execution times vs. processor count.
//!
//! The paper motivates EMTS with PDGEMM timings measured on LBNL's Cray
//! XT4 for 1024×1024 and 2048×2048 matrices: execution time is *not*
//! monotonically decreasing in the processor count. We have no Cray, so per
//! DESIGN.md the substitution is the paper's own Model 2 (built to imitate
//! exactly these timings) evaluated on two matrix-multiplication tasks of
//! the same sizes — the staircase shape (odd counts and non-square even
//! counts slower) is what the figure exists to show.

use bench::Harness;
use exec_model::{ExecutionTimeModel, SyntheticModel};
use ptg::Task;
use serde::Serialize;
use stats::TextTable;

#[derive(Serialize)]
struct Series {
    matrix_size: u32,
    points: Vec<(u32, f64)>,
}

fn main() {
    let h = Harness::from_env("fig1_pdgemm");
    let args = &h.args;
    let model = SyntheticModel::default();
    // 2 n³ FLOP per n×n matrix multiply; α small like a tuned PDGEMM.
    let tasks = [
        (
            1024u32,
            Task::new("pdgemm_1024", 2.0 * 1024f64.powi(3), 0.02),
        ),
        (
            2048u32,
            Task::new("pdgemm_2048", 2.0 * 2048f64.powi(3), 0.02),
        ),
    ];
    let speed = 4.3e9; // one Chti-class processor
    let ps: Vec<u32> = (2..=32).collect();

    let mut table = TextTable::new(["p", "t(1024) [s]", "t(2048) [s]", "penalty"]);
    let mut series = Vec::new();
    for (size, task) in &tasks {
        let points: Vec<(u32, f64)> = ps
            .iter()
            .map(|&p| (p, model.time(task, p, speed)))
            .collect();
        series.push(Series {
            matrix_size: *size,
            points,
        });
    }
    for (i, &p) in ps.iter().enumerate() {
        table.push([
            p.to_string(),
            format!("{:.4}", series[0].points[i].1),
            format!("{:.4}", series[1].points[i].1),
            format!("{:.1}", model.penalty(p)),
        ]);
    }
    h.say(format_args!(
        "Figure 1 — non-monotonic task execution time (Model 2 stand-in for PDGEMM)\n"
    ));
    h.say(table.render());

    // Point out the non-monotonic steps the figure is about.
    let rises: Vec<String> = series[1]
        .points
        .windows(2)
        .filter(|w| w[1].1 > w[0].1)
        .map(|w| format!("p={}→{}", w[0].0, w[1].0))
        .collect();
    h.say(format_args!(
        "execution time *rises* at: {}",
        rises.join(", ")
    ));
    match bench::output::write_json(&args.out, "fig1_pdgemm.json", &series) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
