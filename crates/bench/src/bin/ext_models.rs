//! Extension — EMTS's model independence, measured.
//!
//! The paper's claim is that EMTS works with *any* execution-time model.
//! This experiment runs the same corpus under five qualitatively different
//! models — Amdahl (Model 1), synthetic non-monotonic (Model 2), Downey's
//! speedup model, Model 2 with redistribution costs folded in, and a
//! per-task model mix — and reports EMTS5's improvement over MCPA for each.

use bench::ablation::ablation_workload;
use bench::{output, Harness};
use emts::{Emts, EmtsConfig};
use exec_model::{
    Amdahl, Downey, ExecutionTimeModel, PerTaskModel, RedistributionCost, SyntheticModel,
    TimeMatrix,
};
use heuristics::{allocate_and_map, Mcpa};
use platform::grelon;
use serde::Serialize;
use stats::summary::ratio_summary;
use stats::{Summary, TextTable};

#[derive(Serialize)]
struct ModelRow {
    model: String,
    rel_makespan: Summary,
}

fn main() {
    let h = Harness::from_env("ext_models");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let graphs = ablation_workload(n, args.seed);
    let cluster = grelon();
    let emts = Emts::new(EmtsConfig::emts5());

    let models: Vec<(String, Box<dyn ExecutionTimeModel>)> = vec![
        ("Amdahl (Model 1)".into(), Box::new(Amdahl)),
        (
            "synthetic (Model 2)".into(),
            Box::new(SyntheticModel::default()),
        ),
        (
            "Downey A=32 sigma=1".into(),
            Box::new(Downey::new(32.0, 1.0)),
        ),
        (
            "Model 2 + redistribution".into(),
            Box::new(RedistributionCost::typical(SyntheticModel::default())),
        ),
        (
            "per-task mix (Amdahl / Model 2)".into(),
            Box::new(PerTaskModel::new(
                vec![Box::new(Amdahl), Box::new(SyntheticModel::default())],
                |t: &ptg::Task| usize::from(t.flop > 1e11),
            )),
        ),
    ];

    let mut rows = Vec::new();
    let mut table = TextTable::new(["model", "MCPA/EMTS5 (mean ± CI)"]);
    for (name, model) in &models {
        let mut mcpa = Vec::new();
        let mut best = Vec::new();
        for (i, g) in graphs.iter().enumerate() {
            let matrix =
                TimeMatrix::compute(g, model.as_ref(), cluster.speed_flops(), cluster.processors);
            mcpa.push(allocate_and_map(&Mcpa, g, &matrix).1);
            best.push(
                emts.run_recorded(g, &matrix, args.seed + i as u64, h.recorder())
                    .best_makespan,
            );
        }
        let rel = ratio_summary(&mcpa, &best);
        table.push([name.clone(), rel.format(3)]);
        rows.push(ModelRow {
            model: name.clone(),
            rel_makespan: rel,
        });
    }
    h.say(format_args!("Extension: EMTS5 vs MCPA across execution-time models ({n} irregular n=100 PTGs, Grelon)\n"));
    h.say(table.render());
    h.say(format_args!(
        "every ratio is ≥ 1 (plus-selection); larger ratios mean the model"
    ));
    h.say(format_args!(
        "breaks MCPA's assumptions harder and the EA exploits it more."
    ));
    match output::write_json(&args.out, "ext_models.json", &rows) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
