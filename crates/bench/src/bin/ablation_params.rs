//! Ablation — sweeps of the two tunables the paper fixes by judgement:
//! the initial mutation fraction f_m = 0.33 and the criticality threshold
//! Δ = 0.9 of the seeding heuristic.

use bench::ablation::{compare_obs, render};
use bench::{output, Harness};
use emts::EmtsConfig;

fn main() {
    let h = Harness::from_env("ablation_params");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);

    let fm_configs: Vec<(String, EmtsConfig)> = [0.33, 0.1, 0.66, 1.0]
        .iter()
        .map(|&fm| {
            (
                format!("f_m = {fm}{}", if fm == 0.33 { " (paper)" } else { "" }),
                EmtsConfig {
                    fm,
                    ..EmtsConfig::emts5()
                },
            )
        })
        .collect();
    let fm_rows = compare_obs(&fm_configs, n, args.seed, h.recorder());
    h.say(format_args!(
        "Ablation: mutation fraction f_m (irregular n=100, Grelon, Model 2, {n} PTGs)\n"
    ));
    h.say(render(&fm_rows));

    let delta_configs: Vec<(String, EmtsConfig)> = [0.9, 0.5, 0.7, 1.0]
        .iter()
        .map(|&delta| {
            (
                format!("Δ = {delta}{}", if delta == 0.9 { " (paper)" } else { "" }),
                EmtsConfig {
                    delta,
                    ..EmtsConfig::emts5()
                },
            )
        })
        .collect();
    let delta_rows = compare_obs(&delta_configs, n, args.seed, h.recorder());
    h.say(format_args!(
        "Ablation: criticality threshold Δ of the seed heuristic\n"
    ));
    h.say(render(&delta_rows));

    let all: Vec<_> = fm_rows.into_iter().chain(delta_rows).collect();
    match output::write_json(&args.out, "ablation_params.json", &all) {
        Ok(path) => h.say(format_args!("wrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
