//! Figure 2 — the individual encoding (illustration).
//!
//! Reconstructs the paper's five-node example PTG and prints the genotype:
//! "the allocation s(v_i) of node v_i is stored at position i". Purely
//! illustrative (the figure carries no measurements), included so every
//! figure of the paper has a regenerating binary.

use bench::Harness;
use ptg::dot::{to_dot, DotOptions};
use ptg::PtgBuilder;
use sched::Allocation;
use std::fmt::Write;

fn main() {
    let h = Harness::from_env("fig2_encoding");
    // The figure shows a 5-node PTG whose node 1 holds 3 processors; the
    // other allocations follow the bar heights in the illustration.
    let mut b = PtgBuilder::new();
    let v1 = b.add_task("v1", 30e9, 0.05);
    let v2 = b.add_task("v2", 20e9, 0.10);
    let v3 = b.add_task("v3", 25e9, 0.05);
    let v4 = b.add_task("v4", 15e9, 0.10);
    let v5 = b.add_task("v5", 10e9, 0.05);
    for (a, c) in [(v1, v2), (v1, v3), (v2, v4), (v3, v4), (v4, v5)] {
        b.add_edge(a, c).expect("fresh edge");
    }
    let g = b.build().expect("acyclic");
    let individual = Allocation::from_vec(vec![3, 2, 4, 2, 1]);

    h.say(format_args!("Figure 2 — encoding of individuals\n"));
    h.say(format_args!(
        "PTG (DOT):\n{}",
        to_dot(&g, &DotOptions::default())
    ));
    h.say("individual I (one allele per task, allele i = s(v_i)):\n");
    let mut genotype = String::from("  position: ");
    for i in 1..=individual.len() {
        let _ = write!(genotype, "{i:>4}");
    }
    genotype.push_str("\n  allele  : ");
    for &s in individual.as_slice() {
        let _ = write!(genotype, "{s:>4}");
    }
    h.say(genotype);
    h.say(format_args!(
        "\nreading: node 1 is allocated {} processors, stored at position 1.",
        individual.as_slice()[0]
    ));
    h.finish();
}
