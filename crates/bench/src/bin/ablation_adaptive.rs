//! Ablation — fixed σ = 5 (paper) vs Rechenberg's 1/5 success rule.
//!
//! The paper fixes the mutation spread at σ₁ = σ₂ = 5; the evolution-
//! strategy literature it cites (Schwefel & Rudolph) adapts step sizes
//! online. This bench measures whether self-adaptation pays at the paper's
//! short generation budgets.

use bench::ablation::{compare, render};
use bench::{output, HarnessArgs};
use emts::EmtsConfig;

fn main() {
    let args = HarnessArgs::from_env();
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let configs = vec![
        ("fixed sigma = 5 (paper), EMTS5".to_string(), EmtsConfig::emts5()),
        (
            "1/5 success rule, EMTS5".to_string(),
            EmtsConfig {
                adaptive_sigma: true,
                ..EmtsConfig::emts5()
            },
        ),
        ("fixed sigma = 5, EMTS10".to_string(), EmtsConfig::emts10()),
        (
            "1/5 success rule, EMTS10".to_string(),
            EmtsConfig {
                adaptive_sigma: true,
                ..EmtsConfig::emts10()
            },
        ),
    ];
    let rows = compare(&configs, n, args.seed);
    println!("Ablation: step-size adaptation (irregular n=100, Grelon, Model 2, {n} PTGs)\n");
    println!("{}", render(&rows));
    match output::write_json(&args.out, "ablation_adaptive.json", &rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
