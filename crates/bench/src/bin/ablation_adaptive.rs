//! Ablation — fixed σ = 5 (paper) vs Rechenberg's 1/5 success rule.
//!
//! The paper fixes the mutation spread at σ₁ = σ₂ = 5; the evolution-
//! strategy literature it cites (Schwefel & Rudolph) adapts step sizes
//! online. This bench measures whether self-adaptation pays at the paper's
//! short generation budgets.

use bench::ablation::{compare_obs, render};
use bench::{output, Harness};
use emts::EmtsConfig;

fn main() {
    let h = Harness::from_env("ablation_adaptive");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let configs = vec![
        (
            "fixed sigma = 5 (paper), EMTS5".to_string(),
            EmtsConfig::emts5(),
        ),
        (
            "1/5 success rule, EMTS5".to_string(),
            EmtsConfig {
                adaptive_sigma: true,
                ..EmtsConfig::emts5()
            },
        ),
        ("fixed sigma = 5, EMTS10".to_string(), EmtsConfig::emts10()),
        (
            "1/5 success rule, EMTS10".to_string(),
            EmtsConfig {
                adaptive_sigma: true,
                ..EmtsConfig::emts10()
            },
        ),
    ];
    let rows = compare_obs(&configs, n, args.seed, h.recorder());
    h.say(format_args!(
        "Ablation: step-size adaptation (irregular n=100, Grelon, Model 2, {n} PTGs)\n"
    ));
    h.say(render(&rows));
    match output::write_json(&args.out, "ablation_adaptive.json", &rows) {
        Ok(path) => h.say(format_args!("wrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
