//! Ablation — the paper's (µ+λ) plus-selection (monotone, conserves the
//! best individual) vs (µ,λ) comma-selection.

use bench::ablation::{compare_obs, render};
use bench::{output, Harness};
use emts::EmtsConfig;

fn main() {
    let h = Harness::from_env("ablation_selection");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let configs = vec![
        ("(5+25) plus".to_string(), EmtsConfig::emts5()),
        (
            "(5,25) comma".to_string(),
            EmtsConfig {
                comma_selection: true,
                ..EmtsConfig::emts5()
            },
        ),
        ("(10+100) plus".to_string(), EmtsConfig::emts10()),
        (
            "(10,100) comma".to_string(),
            EmtsConfig {
                comma_selection: true,
                ..EmtsConfig::emts10()
            },
        ),
    ];
    let rows = compare_obs(&configs, n, args.seed, h.recorder());
    h.say(format_args!(
        "Ablation: selection strategy (irregular n=100, Grelon, Model 2, {n} PTGs)\n"
    ));
    h.say(render(&rows));
    match output::write_json(&args.out, "ablation_selection.json", &rows) {
        Ok(path) => h.say(format_args!("wrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
