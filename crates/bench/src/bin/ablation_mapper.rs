//! Ablation — the paper's non-insertion list scheduler vs an
//! insertion-based (backfilling) mapper, applied to the same allocations.
//! The paper's future-work section speculates about cheaper mapping; this
//! measures what a *stronger* mapper would buy instead.

use bench::ablation::ablation_workload;
use bench::{output, Harness};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{Allocator, Mcpa};
use obs::Recorder;
use platform::grelon;
use sched::{InsertionScheduler, ListScheduler, Mapper};
use serde::Serialize;
use stats::summary::ratio_summary;
use stats::{Summary, TextTable};

#[derive(Serialize)]
struct MapperRow {
    allocator: String,
    list_makespan: Summary,
    insertion_makespan: Summary,
    list_over_insertion: Summary,
}

fn main() {
    let h = Harness::from_env("ablation_mapper");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let graphs = ablation_workload(n, args.seed);
    let cluster = grelon();
    let model = SyntheticModel::default();

    let mut rows = Vec::new();
    for (name, allocator) in [("MCPA", &Mcpa as &dyn Allocator)] {
        let mut list_ms = Vec::new();
        let mut ins_ms = Vec::new();
        for g in &graphs {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
            let alloc = allocator.allocate(g, &matrix);
            let rec = h.recorder();
            list_ms.push(rec.time("list", || ListScheduler.makespan(g, &matrix, &alloc)));
            ins_ms.push(rec.time("insertion", || {
                InsertionScheduler.map(g, &matrix, &alloc).makespan()
            }));
        }
        rows.push(MapperRow {
            allocator: name.to_string(),
            list_makespan: Summary::of(&list_ms),
            insertion_makespan: Summary::of(&ins_ms),
            list_over_insertion: ratio_summary(&list_ms, &ins_ms),
        });
    }

    let mut table = TextTable::new(["allocator", "list [s]", "insertion [s]", "list / insertion"]);
    for r in &rows {
        table.push([
            r.allocator.clone(),
            r.list_makespan.format(2),
            r.insertion_makespan.format(2),
            r.list_over_insertion.format(3),
        ]);
    }
    h.say(format_args!(
        "Ablation: mapping step — list vs insertion ({n} irregular n=100 PTGs, Grelon, Model 2)\n"
    ));
    h.say(table.render());
    h.say(format_args!(
        "(ratios > 1.0: backfilling shortens the schedule)"
    ));
    match output::write_json(&args.out, "ablation_mapper.json", &rows) {
        Ok(path) => h.say(format_args!("wrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
