//! Figure 6 — side-by-side Gantt charts of MCPA and EMTS10 schedules for an
//! irregular 100-task PTG on Grelon under Model 2.
//!
//! The paper's point: MCPA's allocations stay tiny (poor utilization), while
//! EMTS stretches the big tasks across many processors. The binary prints
//! ASCII charts and writes SVG files plus utilization numbers.

use bench::{output, Harness};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::grelon;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::gantt::{ascii_gantt, svg_gantt, SvgOptions};
use sched::metrics::compute_metrics;
use sim::runner::{run_obs, Algorithm};
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn main() {
    let h = Harness::from_env("fig6_gantt");
    let args = &h.args;
    let params = DaggenParams {
        n: 100,
        width: 0.5,
        regularity: 0.2,
        density: 0.2,
        jump: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let g = random_ptg(&params, &CostConfig::default(), &mut rng);
    let cluster = grelon();
    let model = SyntheticModel::default();
    let matrix = TimeMatrix::compute(&g, &model, cluster.speed_flops(), cluster.processors);

    h.say(format_args!(
        "Figure 6 — MCPA vs EMTS10 schedules, irregular n=100 on Grelon, Model 2\n"
    ));
    for alg in [Algorithm::Mcpa, Algorithm::Emts10] {
        let (report, schedule, _) = run_obs(alg, &g, &cluster, &model, args.seed, h.recorder());
        let metrics = compute_metrics(&g, &matrix, &schedule);
        h.say(format_args!(
            "== {} ==  makespan {:.2} s, utilization {:.1} %, peak busy procs {}",
            alg.name(),
            report.makespan,
            100.0 * metrics.utilization,
            report.sim.peak_busy_processors
        ));
        h.say(ascii_gantt(&schedule, 100));
        let svg = svg_gantt(&g, &schedule, &SvgOptions::default());
        match output::write_text(&args.out, &format!("fig6_{}.svg", report.algorithm), &svg) {
            Ok(path) => h.say(format_args!("wrote {path}\n")),
            Err(e) => eprintln!("could not write SVG: {e}"),
        }
    }
    h.finish();
}
