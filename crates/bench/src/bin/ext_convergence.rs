//! Extension — convergence behaviour of the EA.
//!
//! §V-B explains EMTS10's advantage over EMTS5 by the extra individuals it
//! evaluates. This experiment plots the *trajectory*: mean best-so-far
//! makespan (normalized to the seed value) after each generation of an
//! EMTS10 run, for regular (FFT) and irregular PTGs.

use bench::{output, Harness};
use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::grelon;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use stats::TextTable;
use workloads::{daggen::random_ptg, fft::fft_ptg, CostConfig, DaggenParams};

#[derive(Serialize)]
struct Curve {
    workload: String,
    /// normalized best makespan after the seeds, then after each generation
    normalized_best: Vec<f64>,
}

fn main() {
    let h = Harness::from_env("ext_convergence");
    let args = &h.args;
    let reps = ((10.0 * args.scale.max(0.2)) as usize).max(3);
    let cluster = grelon();
    let model = SyntheticModel::default();
    let emts = Emts::new(EmtsConfig::emts10());
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let costs = CostConfig::default();

    let mut curves = Vec::new();
    for workload in ["FFT k=16", "irregular n=100"] {
        let graphs: Vec<_> = (0..reps)
            .map(|_| {
                if workload.starts_with("FFT") {
                    fft_ptg(16, &costs, &mut rng)
                } else {
                    random_ptg(
                        &DaggenParams {
                            n: 100,
                            width: 0.5,
                            regularity: 0.2,
                            density: 0.2,
                            jump: 2,
                        },
                        &costs,
                        &mut rng,
                    )
                }
            })
            .collect();
        // Average the normalized best-so-far trajectories.
        let gens = EmtsConfig::emts10().generations;
        let mut acc = vec![0.0f64; gens + 1];
        for (i, g) in graphs.iter().enumerate() {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
            let result = emts.run_recorded(g, &matrix, args.seed + i as u64, h.recorder());
            let seed_best = result.trace[0].best;
            for (j, t) in result.trace.iter().enumerate() {
                acc[j] += t.best / seed_best;
            }
        }
        for a in &mut acc {
            *a /= graphs.len() as f64;
        }
        curves.push(Curve {
            workload: workload.to_string(),
            normalized_best: acc,
        });
    }

    let mut table = TextTable::new(["generation", &curves[0].workload, &curves[1].workload]);
    for j in 0..curves[0].normalized_best.len() {
        let label = if j == 0 {
            "seeds".to_string()
        } else {
            (j - 1).to_string()
        };
        table.push([
            label,
            format!("{:.4}", curves[0].normalized_best[j]),
            format!("{:.4}", curves[1].normalized_best[j]),
        ]);
    }
    h.say(format_args!(
        "Extension: EMTS10 convergence, best-so-far makespan normalized to the seeds\n"
    ));
    h.say(table.render());
    h.say(format_args!(
        "expected: irregular PTGs keep improving across generations; regular"
    ));
    h.say(format_args!(
        "PTGs converge almost immediately (paper §V-B's explanation)."
    ));
    match output::write_json(&args.out, "ext_convergence.json", &curves) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
