//! Figure 4 — average relative makespan under Model 1 (Amdahl's law).
//!
//! For each PTG class (FFT, Strassen, layered n=100, irregular n=100) and
//! each platform (Chti, Grelon), reports the mean of
//! `T_MCPA / T_EMTS5` and `T_HCPA / T_EMTS5` with 95 % confidence
//! intervals. Run with `--full` for the paper's instance counts
//! (400/100/108/324); the default `--scale 0.1` finishes in seconds.
//!
//! Expected shape (paper §V-A): values barely above 1.0 against MCPA on
//! regular PTGs, clearly above 1.0 against HCPA and on irregular PTGs, and
//! larger improvements on the bigger platform (Grelon).

use bench::experiment::relative_makespan_grid_obs;
use bench::{output, EmtsVariant, Harness};
use exec_model::Amdahl;

fn main() {
    let h = Harness::from_env("fig4_model1");
    let args = &h.args;
    h.note(format_args!(
        "Figure 4 (Model 1, EMTS5) — scale {}, seed {} …",
        args.scale, args.seed
    ));
    let results = relative_makespan_grid_obs(
        &Amdahl,
        EmtsVariant::Emts5,
        args.scale,
        args.seed,
        h.recorder(),
    );
    h.say(format_args!(
        "Figure 4 — relative makespan vs EMTS5, Model 1 (Amdahl)\n"
    ));
    h.say(output::panel_table(&results));
    h.say(format_args!(
        "(values > 1.0: EMTS5 produced the shorter schedule)"
    ));
    match output::write_json(&args.out, "fig4_model1.json", &results) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
