//! Figure 3 â probability density of the mutation operator.
//!
//! Samples the allocation-adjustment distribution `C` (Ïâ = Ïâ = 5,
//! a = 0.2) one million times and prints its empirical density over
//! [â25, 25], reproducing the asymmetric two-humped shape of the paper's
//! Figure 3: a small negative (shrink) hump at 20 % of the mass and a large
//! positive (stretch) hump at 80 %.

use bench::Harness;
use emts::MutationOperator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stats::Histogram;

fn main() {
    let h = Harness::from_env("fig3_mutation_pdf");
    let args = &h.args;
    let op = MutationOperator::paper();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let mut hist = Histogram::new(-25.0, 26.0, 51); // integer bins â25..=25
    let samples = 1_000_000usize;
    for _ in 0..samples {
        hist.add(op.sample_delta(&mut rng) as f64);
    }
    h.say(format_args!(
        "Figure 3 â mutation operator density, sigma1=sigma2=5, a=0.2, {samples} samples\n"
    ));
    h.say(hist.render(60));

    let density = hist.density();
    let shrink_mass: f64 = density
        .iter()
        .filter(|&&(c, _)| c < 0.0)
        .map(|&(_, d)| d)
        .sum::<f64>();
    let stretch_mass: f64 = density
        .iter()
        .filter(|&&(c, _)| c > 0.0)
        .map(|&(_, d)| d)
        .sum::<f64>();
    h.say(format_args!(
        "shrink mass ≈ {:.3}, stretch mass ≈ {:.3} (paper: 0.2 / 0.8)",
        shrink_mass / (shrink_mass + stretch_mass),
        stretch_mass / (shrink_mass + stretch_mass)
    ));
    match bench::output::write_json(&args.out, "fig3_mutation_pdf.json", &density) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
