//! Figure 5 â average relative makespan under Model 2 (non-monotonic),
//! EMTS5 (top half) and EMTS10 (bottom half).
//!
//! Expected shape (paper Â§V-B): EMTS reduces the makespan more on the
//! larger platform (Grelon); EMTS10 is at least as good as EMTS5, with the
//! biggest extra gains on irregular PTGs.

use bench::experiment::relative_makespan_grid_obs;
use bench::{output, EmtsVariant, Harness};
use exec_model::SyntheticModel;

fn main() {
    let h = Harness::from_env("fig5_model2");
    let args = &h.args;
    let model = SyntheticModel::default();
    let mut all = Vec::new();
    for variant in [EmtsVariant::Emts5, EmtsVariant::Emts10] {
        h.note(format_args!(
            "Figure 5 (Model 2, {}) â scale {}, seed {} …",
            variant.label(),
            args.scale,
            args.seed
        ));
        let results =
            relative_makespan_grid_obs(&model, variant, args.scale, args.seed, h.recorder());
        h.say(format_args!(
            "\nFigure 5 ({}) — relative makespan, Model 2 (synthetic non-monotonic)\n",
            variant.label()
        ));
        h.say(output::panel_table(&results));
        all.extend(results);
    }
    h.say(format_args!(
        "(values > 1.0: EMTS produced the shorter schedule)"
    ));
    match output::write_json(&args.out, "fig5_model2.json", &all) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
