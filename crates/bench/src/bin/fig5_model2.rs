//! Figure 5 — average relative makespan under Model 2 (non-monotonic),
//! EMTS5 (top half) and EMTS10 (bottom half).
//!
//! Expected shape (paper §V-B): EMTS reduces the makespan more on the
//! larger platform (Grelon); EMTS10 is at least as good as EMTS5, with the
//! biggest extra gains on irregular PTGs.

use bench::{output, relative_makespan_grid, EmtsVariant, HarnessArgs};
use exec_model::SyntheticModel;

fn main() {
    let args = HarnessArgs::from_env();
    let model = SyntheticModel::default();
    let mut all = Vec::new();
    for variant in [EmtsVariant::Emts5, EmtsVariant::Emts10] {
        eprintln!(
            "Figure 5 (Model 2, {}) — scale {}, seed {} …",
            variant.label(),
            args.scale,
            args.seed
        );
        let results = relative_makespan_grid(&model, variant, args.scale, args.seed);
        println!(
            "\nFigure 5 ({}) — relative makespan, Model 2 (synthetic non-monotonic)\n",
            variant.label()
        );
        println!("{}", output::panel_table(&results));
        all.extend(results);
    }
    println!("(values > 1.0: EMTS produced the shorter schedule)");
    match output::write_json(&args.out, "fig5_model2.json", &all) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
