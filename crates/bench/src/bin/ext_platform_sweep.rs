//! Extension — EMTS improvement as a function of platform size.
//!
//! §V-A observes "EMTS performs comparatively better for larger platforms"
//! from two data points (Chti's 20 vs Grelon's 120 processors). This sweep
//! turns the observation into a curve: mean relative makespan
//! `T_MCPA / T_EMTS5` for clusters of 10..=160 processors at Grelon's
//! per-processor speed, irregular n=100 PTGs, Model 2.

use bench::ablation::ablation_workload;
use bench::{output, Harness};
use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{allocate_and_map, Mcpa};
use platform::Cluster;
use serde::Serialize;
use stats::summary::ratio_summary;
use stats::{Summary, TextTable};

#[derive(Serialize)]
struct SweepPoint {
    processors: u32,
    rel_makespan: Summary,
}

fn main() {
    let h = Harness::from_env("ext_platform_sweep");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let graphs = ablation_workload(n, args.seed);
    let model = SyntheticModel::default();
    let emts = Emts::new(EmtsConfig::emts5());

    let mut points = Vec::new();
    let mut table = TextTable::new(["P", "MCPA/EMTS5 (mean ± CI)"]);
    for processors in [10u32, 20, 40, 80, 120, 160] {
        let cluster = Cluster::new(format!("p{processors}"), processors, 3.1);
        let mut mcpa = Vec::new();
        let mut best = Vec::new();
        for (i, g) in graphs.iter().enumerate() {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), processors);
            mcpa.push(allocate_and_map(&Mcpa, g, &matrix).1);
            best.push(
                emts.run_recorded(g, &matrix, args.seed + i as u64, h.recorder())
                    .best_makespan,
            );
        }
        let rel = ratio_summary(&mcpa, &best);
        table.push([processors.to_string(), rel.format(3)]);
        points.push(SweepPoint {
            processors,
            rel_makespan: rel,
        });
    }
    h.say(format_args!(
        "Extension: EMTS5 improvement vs platform size ({n} irregular n=100 PTGs, Model 2)\n"
    ));
    h.say(table.render());
    h.say(format_args!(
        "expected shape: ratio grows with P (paper §V-A, generalized)"
    ));
    match output::write_json(&args.out, "ext_platform_sweep.json", &points) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
