//! Ablation — the rejection strategy proposed in the paper's conclusions.
//!
//! §VI: "it would be beneficial to design heuristics that reject solutions
//! if the current schedule does not meet certain conditions while the
//! algorithm is still in the mapping phase. With such a rejection strategy,
//! the construction of the whole schedule for inefficient solutions could
//! be avoided." We implemented it (abort once any task's start plus its
//! bottom level exceeds `slack × best-so-far`); this bench measures what it
//! buys: wall-clock per run, rejected-offspring counts, and whether
//! solution quality survives.

use bench::ablation::ablation_workload;
use bench::{output, Harness};
use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::grelon;
use serde::Serialize;
use stats::{Summary, TextTable};

#[derive(Serialize)]
struct RejectionRow {
    label: String,
    makespan: Summary,
    wall_ms: Summary,
    rejected_per_run: Summary,
}

fn main() {
    let h = Harness::from_env("ablation_rejection");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let graphs = ablation_workload(n, args.seed);
    let cluster = grelon();
    let model = SyntheticModel::default();

    let configs = vec![
        ("no rejection (paper)".to_string(), EmtsConfig::emts10()),
        (
            "rejection, slack 1.0".to_string(),
            EmtsConfig {
                rejection: true,
                rejection_slack: 1.0,
                ..EmtsConfig::emts10()
            },
        ),
        (
            "rejection, slack 1.5".to_string(),
            EmtsConfig {
                rejection: true,
                rejection_slack: 1.5,
                ..EmtsConfig::emts10()
            },
        ),
        (
            "rejection, slack 3.0".to_string(),
            EmtsConfig {
                rejection: true,
                rejection_slack: 3.0,
                ..EmtsConfig::emts10()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, cfg) in &configs {
        let emts = Emts::new(cfg.clone());
        let mut ms = Vec::new();
        let mut wall = Vec::new();
        let mut rejected = Vec::new();
        for (i, g) in graphs.iter().enumerate() {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
            let r = emts.run_recorded(g, &matrix, args.seed + i as u64, h.recorder());
            ms.push(r.best_makespan);
            wall.push(r.wall_time.as_secs_f64() * 1e3);
            rejected.push(r.rejected as f64);
        }
        rows.push(RejectionRow {
            label: label.clone(),
            makespan: Summary::of(&ms),
            wall_ms: Summary::of(&wall),
            rejected_per_run: Summary::of(&rejected),
        });
    }

    let mut table = TextTable::new(["configuration", "makespan [s]", "wall [ms]", "rejected/run"]);
    for r in &rows {
        table.push([
            r.label.clone(),
            r.makespan.format(2),
            r.wall_ms.format(1),
            format!("{:.1}", r.rejected_per_run.mean),
        ]);
    }
    h.say(format_args!(
        "Ablation: §VI rejection strategy (EMTS10, {n} irregular n=100 PTGs, Grelon, Model 2)\n"
    ));
    h.say(table.render());
    h.say(format_args!(
        "tight slack rejects more offspring (less mapping work) — watch the"
    ));
    h.say(format_args!(
        "makespan column to see whether quality pays for it."
    ));
    match output::write_json(&args.out, "ablation_rejection.json", &rows) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
