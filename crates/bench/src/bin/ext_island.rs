//! Extension — island-model parallel EMTS vs the single-population EA.
//!
//! Compares plain EMTS10 against an island model with a comparable total
//! evaluation budget (islands × per-island budget), reporting solution
//! quality and wall-clock. Islands trade per-population depth for
//! diversity and thread-level parallelism.

use bench::ablation::ablation_workload;
use bench::{output, Harness};
use emts::{Emts, EmtsConfig, IslandConfig, IslandEmts};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::grelon;
use serde::Serialize;
use stats::{Summary, TextTable};

#[derive(Serialize)]
struct IslandRow {
    label: String,
    makespan: Summary,
    wall_ms: Summary,
    evaluations: f64,
}

fn main() {
    let h = Harness::from_env("ext_island");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let graphs = ablation_workload(n, args.seed);
    let cluster = grelon();
    let model = SyntheticModel::default();

    let mut rows: Vec<IslandRow> = Vec::new();
    let mut table = TextTable::new(["configuration", "makespan [s]", "wall [ms]", "evals/run"]);

    // Plain EMTS10: 10 + 10×100 = 1010 evaluations.
    {
        let emts = Emts::new(EmtsConfig::emts10());
        let mut ms = Vec::new();
        let mut wall = Vec::new();
        let mut evals = 0usize;
        for (i, g) in graphs.iter().enumerate() {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
            let r = emts.run_recorded(g, &matrix, args.seed + i as u64, h.recorder());
            ms.push(r.best_makespan);
            wall.push(r.wall_time.as_secs_f64() * 1e3);
            evals += r.evaluations;
        }
        table.push([
            "EMTS10 (single population)".into(),
            Summary::of(&ms).format(2),
            Summary::of(&wall).format(1),
            format!("{:.0}", evals as f64 / graphs.len() as f64),
        ]);
        rows.push(IslandRow {
            label: "EMTS10".into(),
            makespan: Summary::of(&ms),
            wall_ms: Summary::of(&wall),
            evaluations: evals as f64 / graphs.len() as f64,
        });
    }

    // Island models with a similar total budget: 4 islands × (5+25)-ES ×
    // 5 generations × 2 epochs ≈ 4 × 260 × ... evaluations.
    for (label, islands, epochs) in [
        ("4 islands × 2 epochs", 4usize, 2usize),
        ("8 islands × 2 epochs", 8, 2),
    ] {
        let island = IslandEmts::new(IslandConfig {
            base: EmtsConfig::emts5(),
            islands,
            epochs,
        });
        let mut ms = Vec::new();
        let mut wall = Vec::new();
        let mut evals = 0usize;
        for (i, g) in graphs.iter().enumerate() {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
            let r = island.run(g, &matrix, args.seed + i as u64);
            ms.push(r.best_makespan);
            wall.push(r.wall_time.as_secs_f64() * 1e3);
            evals += r.evaluations;
        }
        table.push([
            label.to_string(),
            Summary::of(&ms).format(2),
            Summary::of(&wall).format(1),
            format!("{:.0}", evals as f64 / graphs.len() as f64),
        ]);
        rows.push(IslandRow {
            label: label.into(),
            makespan: Summary::of(&ms),
            wall_ms: Summary::of(&wall),
            evaluations: evals as f64 / graphs.len() as f64,
        });
    }

    h.say(format_args!(
        "Extension: island-model EMTS ({n} irregular n=100 PTGs, Grelon, Model 2)\n"
    ));
    h.say(table.render());
    match output::write_json(&args.out, "ext_island.json", &rows) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
