//! Ablation — heuristic seeding (§III-B) vs a cold start from all-ones
//! allocations. The paper claims seeding "significantly reduces the time to
//! find efficient schedules"; this quantifies the solution-quality gap at
//! the paper's small generation budgets.

use bench::ablation::{compare_obs, render};
use bench::{output, Harness};
use emts::EmtsConfig;

fn main() {
    let h = Harness::from_env("ablation_seeding");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let configs = vec![
        ("seeded (MCPA+HCPA+Δ)".to_string(), EmtsConfig::emts5()),
        (
            "cold start (all ones)".to_string(),
            EmtsConfig {
                heuristic_seeds: false,
                ..EmtsConfig::emts5()
            },
        ),
        (
            "cold start, EMTS10 budget".to_string(),
            EmtsConfig {
                heuristic_seeds: false,
                ..EmtsConfig::emts10()
            },
        ),
    ];
    let rows = compare_obs(&configs, n, args.seed, h.recorder());
    h.say(format_args!(
        "Ablation: starting solutions (irregular n=100, Grelon, Model 2, {n} PTGs)\n"
    ));
    h.say(render(&rows));
    match output::write_json(&args.out, "ablation_seeding.json", &rows) {
        Ok(path) => h.say(format_args!("wrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
