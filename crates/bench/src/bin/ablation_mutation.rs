//! Ablation — the paper's asymmetric folded-normal mutation operator vs a
//! uniform-step operator (§III-D argues uniform steps oscillate more).

use bench::ablation::{compare_obs, render};
use bench::{output, Harness};
use emts::EmtsConfig;

fn main() {
    let h = Harness::from_env("ablation_mutation");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let configs = vec![
        (
            "paper operator (folded normal)".to_string(),
            EmtsConfig::emts5(),
        ),
        (
            "uniform steps U{1..10}".to_string(),
            EmtsConfig {
                uniform_mutation: true,
                ..EmtsConfig::emts5()
            },
        ),
        (
            "symmetric (a = 0.5)".to_string(),
            EmtsConfig {
                shrink_prob: 0.5,
                ..EmtsConfig::emts5()
            },
        ),
        (
            "stretch-only (a = 0)".to_string(),
            EmtsConfig {
                shrink_prob: 0.0,
                ..EmtsConfig::emts5()
            },
        ),
    ];
    let rows = compare_obs(&configs, n, args.seed, h.recorder());
    h.say(format_args!(
        "Ablation: mutation operator (irregular n=100, Grelon, Model 2, {n} PTGs)\n"
    ));
    h.say(render(&rows));
    match output::write_json(&args.out, "ablation_mutation.json", &rows) {
        Ok(path) => h.say(format_args!("wrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
