//! Extension — multi-cluster scheduling on the combined paper platforms.
//!
//! Runs each PTG on Chti alone, Grelon alone, and the combined grid
//! (HCPA-grid and grid-EMTS5), reporting mean makespans. The combined grid
//! should dominate the smaller cluster and usually beat the larger one too
//! (140 processors, mixed speeds).

use bench::ablation::ablation_workload;
use bench::{output, Harness};
use emts::{Emts, EmtsConfig, GridEmts};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{allocate_and_map, Hcpa, HcpaGrid};
use platform::grid::grid5000_pair;
use serde::Serialize;
use stats::{Summary, TextTable};

#[derive(Serialize)]
struct Row {
    scheduler: String,
    platform: String,
    makespan: Summary,
}

fn main() {
    let h = Harness::from_env("ext_multicluster");
    let args = &h.args;
    let n = ((20.0 * args.scale.max(0.1)) as usize).max(3);
    let graphs = ablation_workload(n, args.seed);
    let grid = grid5000_pair();
    let model = SyntheticModel::default();

    let mut series: Vec<(String, String, Vec<f64>)> = vec![
        ("HCPA".into(), "Chti".into(), Vec::new()),
        ("EMTS5".into(), "Chti".into(), Vec::new()),
        ("HCPA".into(), "Grelon".into(), Vec::new()),
        ("EMTS5".into(), "Grelon".into(), Vec::new()),
        ("HCPA-grid".into(), grid.name.clone(), Vec::new()),
        ("grid-EMTS5".into(), grid.name.clone(), Vec::new()),
    ];

    for (i, g) in graphs.iter().enumerate() {
        for (c, cluster) in grid.clusters.iter().enumerate() {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
            series[2 * c].2.push(allocate_and_map(&Hcpa, g, &matrix).1);
            series[2 * c + 1].2.push(
                Emts::new(EmtsConfig::emts5())
                    .run_recorded(g, &matrix, args.seed + i as u64, h.recorder())
                    .best_makespan,
            );
        }
        let (_, hcpa_grid) = HcpaGrid.schedule(g, &model, &grid);
        series[4].2.push(hcpa_grid.makespan());
        let r = GridEmts::default().run(g, &model, &grid, args.seed + i as u64);
        series[5]
            .2
            .push(r.best_makespan.min(r.hcpa_native_makespan));
    }

    let mut table = TextTable::new(["scheduler", "platform", "makespan [s] (mean ± CI)"]);
    let mut rows = Vec::new();
    for (scheduler, platform, ms) in &series {
        let s = Summary::of(ms);
        table.push([scheduler.clone(), platform.clone(), s.format(2)]);
        rows.push(Row {
            scheduler: scheduler.clone(),
            platform: platform.clone(),
            makespan: s,
        });
    }
    h.say(format_args!(
        "Extension: multi-cluster scheduling ({n} irregular n=100 PTGs, Model 2)\n"
    ));
    h.say(table.render());
    h.say(format_args!(
        "the combined grid (140 procs) should beat either cluster alone."
    ));
    match output::write_json(&args.out, "ext_multicluster.json", &rows) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
