//! §V run-time table — wall-clock cost of the EMTS optimization itself.
//!
//! The paper reports (Python prototype, Core i5 2.53 GHz): EMTS5 between
//! 0.45 s (SD 0.01) for Strassen and 2.7 s (SD 1.1) for 100-task PTGs on
//! the Chti model, 1.3–5.5 s on Grelon; EMTS10 on Grelon between 9.6 s
//! (SD 0.5) and 38.1 s (SD 9.5). The authors expect "a reduction of the run
//! time by a factor of 10 for an optimized C program" — this Rust build
//! should comfortably beat that; EXPERIMENTS.md records the comparison.

use bench::{output, Harness};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::{chti, grelon};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use sim::Algorithm;
use stats::{Summary, TextTable};
use workloads::{daggen::random_ptg, strassen::strassen_ptg, CostConfig, DaggenParams};

#[derive(Serialize)]
struct RuntimeRow {
    algorithm: String,
    platform: String,
    workload: String,
    seconds: Summary,
}

fn main() {
    let h = Harness::from_env("table_runtime");
    let args = &h.args;
    let reps = ((10.0 * args.scale.max(0.3)) as usize).max(3);
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let costs = CostConfig::default();
    let model = SyntheticModel::default();

    // The paper's two extremes: small Strassen PTGs and 100-task PTGs.
    let strassens: Vec<_> = (0..reps).map(|_| strassen_ptg(&costs, &mut rng)).collect();
    let hundred_params = DaggenParams {
        n: 100,
        width: 0.5,
        regularity: 0.2,
        density: 0.2,
        jump: 2,
    };
    let hundreds: Vec<_> = (0..reps)
        .map(|_| random_ptg(&hundred_params, &costs, &mut rng))
        .collect();

    let mut rows = Vec::new();
    for cluster in [chti(), grelon()] {
        for (workload, graphs) in [
            ("Strassen (23 tasks)", &strassens),
            ("irregular n=100", &hundreds),
        ] {
            for alg in [Algorithm::Emts5, Algorithm::Emts10] {
                let mut secs = Vec::with_capacity(graphs.len());
                for (i, g) in graphs.iter().enumerate() {
                    let matrix =
                        TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
                    let t0 = std::time::Instant::now();
                    let _ = alg.allocate(g, &matrix, args.seed + i as u64);
                    secs.push(t0.elapsed().as_secs_f64());
                }
                rows.push(RuntimeRow {
                    algorithm: alg.name().to_string(),
                    platform: cluster.name.clone(),
                    workload: workload.to_string(),
                    seconds: Summary::of(&secs),
                });
            }
        }
    }

    let mut table = TextTable::new([
        "algorithm",
        "platform",
        "workload",
        "seconds (mean ± CI)",
        "SD",
    ]);
    for r in &rows {
        table.push([
            r.algorithm.clone(),
            r.platform.clone(),
            r.workload.clone(),
            r.seconds.format(4),
            format!("{:.4}", r.seconds.sd),
        ]);
    }
    h.say(format_args!(
        "§V run-time table — EMTS optimization wall-clock ({reps} PTGs per cell)\n"
    ));
    h.say(table.render());
    h.say(format_args!(
        "paper (Python): EMTS5 0.45–2.7 s Chti / 1.3–5.5 s Grelon; EMTS10 9.6–38.1 s Grelon"
    ));
    match output::write_json(&args.out, "table_runtime.json", &rows) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
