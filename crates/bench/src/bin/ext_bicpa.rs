//! Extension — BiCPA's bi-criteria trade-off curve.
//!
//! The paper's related work cites BiCPA (Desprez & Suter, CCGrid 2010) as
//! optimizing both completion time and resource usage. This experiment
//! prints the (makespan, work) Pareto front of the capped-CPA sweep for one
//! irregular 100-task PTG on Grelon, and compares the pure-makespan corner
//! against MCPA and EMTS5.

use bench::ablation::ablation_workload;
use bench::{output, Harness};
use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::bicpa::{pareto_front, tradeoff_curve};
use heuristics::{allocate_and_map, Mcpa};
use platform::grelon;
use serde::Serialize;
use stats::TextTable;

#[derive(Serialize)]
struct FrontPoint {
    cap: u32,
    makespan: f64,
    work: f64,
}

fn main() {
    let h = Harness::from_env("ext_bicpa");
    let args = &h.args;
    let g = &ablation_workload(1, args.seed)[0];
    let cluster = grelon();
    let model = SyntheticModel::default();
    let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);

    let curve = tradeoff_curve(g, &matrix);
    let front = pareto_front(&curve);
    let mut table = TextTable::new(["cap", "makespan [s]", "work [proc·s]"]);
    for p in &front {
        table.push([
            p.cap.to_string(),
            format!("{:.2}", p.makespan),
            format!("{:.0}", p.work),
        ]);
    }
    h.say(format_args!(
        "Extension: BiCPA (makespan, work) Pareto front — irregular n=100, Grelon, Model 2\n"
    ));
    h.say(table.render());

    let best_ms = front.first().map(|p| p.makespan).unwrap_or(f64::NAN);
    let (_, mcpa_ms) = allocate_and_map(&Mcpa, g, &matrix);
    let emts_ms = Emts::new(EmtsConfig::emts5())
        .run_recorded(g, &matrix, args.seed, h.recorder())
        .best_makespan;
    h.say(format_args!(
        "pure-makespan corner: {best_ms:.2} s   MCPA: {mcpa_ms:.2} s   EMTS5: {emts_ms:.2} s"
    ));

    let points: Vec<FrontPoint> = front
        .iter()
        .map(|p| FrontPoint {
            cap: p.cap,
            makespan: p.makespan,
            work: p.work,
        })
        .collect();
    match output::write_json(&args.out, "ext_bicpa.json", &points) {
        Ok(path) => h.say(format_args!("\nwrote {path}")),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    h.finish();
}
