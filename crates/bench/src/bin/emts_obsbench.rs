//! `emts-obsbench` — observability cost microbenchmark.
//!
//! Measures what the `obs` layer costs where it matters — the mapper hot
//! loop on the paper's hard case (irregular n=100 on Grelon, P=120) — and
//! what the flight recorder delivers at saturation:
//!
//! * `noop_overhead_pct` / `stats_overhead_pct` / `flight_overhead_pct` —
//!   one instrumented evaluation pass per recorder flavour, interleaved
//!   min-of-k against the bare (uninstrumented) mapper loop,
//! * `events_per_sec` — single-thread flight-recorder event throughput,
//! * `drop_rate_at_capacity` — fraction of events dropped when a
//!   fixed-capacity ring is pushed far past its size, with exact-drop
//!   accounting cross-checked.
//!
//! `scripts/bench_smoke.sh` writes the JSON to `BENCH_obs.json`, and
//! `emts-report regress` gates CI against the committed baseline.
//!
//! ```text
//! emts-obsbench [--out <file>] [--rounds <k>]
//! ```

use exec_model::{SyntheticModel, TimeMatrix};
use obs::{FlightRecorder, NoopRecorder, Recorder, StatsRecorder};
use platform::grelon;
use rand::{Rng, SeedableRng};
use sched::{Allocation, EvalScratch, ListScheduler};
use serde::Serialize;
use std::time::Instant;
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

const USAGE: &str = "usage: emts-obsbench [--out <file>] [--rounds <k>]";

/// Events pushed through the throughput / saturation measurements.
const EVENT_PUSHES: u64 = 1 << 20;

/// Ring capacity for the saturation measurement — small enough that
/// virtually every push overwrites, so the measured rate is the
/// steady-state overwrite path, not the growth path.
const SATURATION_CAPACITY: usize = 4096;

#[derive(Serialize)]
struct ObsBench {
    workload: String,
    rounds: usize,
    batch: usize,
    /// Bare mapper loop, no recorder type parameter in sight.
    raw_ns_per_eval: f64,
    /// Overhead of the instrumented path with each recorder flavour, in
    /// percent over `raw_ns_per_eval` (min-of-k, interleaved; negative
    /// values are measurement noise on a shared host).
    noop_overhead_pct: f64,
    stats_overhead_pct: f64,
    flight_overhead_pct: f64,
    /// Single-thread `Recorder::event` throughput into a ring big enough
    /// to never wrap during the measurement.
    events_per_sec: f64,
    /// Same, but into a `SATURATION_CAPACITY`-slot ring that wraps almost
    /// every push.
    saturated_events_per_sec: f64,
    /// Fraction of `EVENT_PUSHES` dropped by the saturated ring — exact
    /// accounting, so this is `(pushes - capacity) / pushes` by
    /// construction.
    drop_rate_at_capacity: f64,
}

fn main() {
    let mut out: Option<String> = None;
    let mut rounds = 25usize;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out = Some(iter.next().unwrap_or_else(|| die("--out needs a file"))),
            "--rounds" => {
                rounds = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| die("--rounds needs an integer ≥ 1"));
            }
            "--help" | "-h" => die(USAGE),
            other => die(&format!("unknown flag {other:?}\n{USAGE}")),
        }
    }

    let result = measure(rounds);
    let json = serde_json::to_string_pretty(&result).expect("results serialize infallibly");
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        None => println!("{json}"),
    }
    println!(
        "TRACE_OVERHEAD raw_ns_per_eval={:.0} noop_pct={:.2} stats_pct={:.2} flight_pct={:.2}",
        result.raw_ns_per_eval,
        result.noop_overhead_pct,
        result.stats_overhead_pct,
        result.flight_overhead_pct
    );
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn measure(rounds: usize) -> ObsBench {
    const LAMBDA: usize = 25;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let g = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let cluster = grelon();
    let matrix = TimeMatrix::compute(
        &g,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );
    let allocs: Vec<Allocation> = (0..LAMBDA)
        .map(|_| {
            Allocation::from_vec(
                (0..g.task_count())
                    .map(|_| rng.gen_range(1..=cluster.processors))
                    .collect(),
            )
        })
        .collect();
    let mut scratch = EvalScratch::with_capacity(g.task_count(), cluster.processors);

    // One timed pass of the whole batch through the bare mapper loop.
    let raw_pass = |scratch: &mut EvalScratch| {
        let t = Instant::now();
        for a in &allocs {
            std::hint::black_box(ListScheduler.makespan_bounded_with(
                &g,
                &matrix,
                a,
                f64::INFINITY,
                scratch,
            ));
        }
        t.elapsed().as_secs_f64()
    };
    // Same batch through the instrumented path under `rec`.
    fn obs_pass<R: Recorder>(
        g: &ptg::Ptg,
        matrix: &TimeMatrix,
        allocs: &[Allocation],
        scratch: &mut EvalScratch,
        rec: &R,
    ) -> f64 {
        let t = Instant::now();
        for a in allocs {
            std::hint::black_box(ListScheduler.evaluate_bounded_obs(
                g,
                matrix,
                a,
                f64::INFINITY,
                scratch,
                rec,
            ));
        }
        t.elapsed().as_secs_f64()
    }

    let stats = StatsRecorder::new();
    // Big enough that the mapper's per-eval flush never wraps — wrap cost
    // is measured separately below.
    let flight = FlightRecorder::with_capacity(1 << 20);

    // Warm every path once, then interleave the four sides per round so
    // host noise hits them all alike; keep each side's fastest pass.
    let _ = raw_pass(&mut scratch);
    let _ = obs_pass(&g, &matrix, &allocs, &mut scratch, &NoopRecorder);
    let _ = obs_pass(&g, &matrix, &allocs, &mut scratch, &stats);
    let _ = obs_pass(&g, &matrix, &allocs, &mut scratch, &flight);
    let (mut raw, mut noop, mut st, mut fl) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        raw = raw.min(raw_pass(&mut scratch));
        noop = noop.min(obs_pass(&g, &matrix, &allocs, &mut scratch, &NoopRecorder));
        st = st.min(obs_pass(&g, &matrix, &allocs, &mut scratch, &stats));
        fl = fl.min(obs_pass(&g, &matrix, &allocs, &mut scratch, &flight));
    }
    let pct = |side: f64| (side / raw - 1.0) * 100.0;

    // Raw event throughput into a ring that never wraps during the run.
    let big = FlightRecorder::with_capacity(EVENT_PUSHES as usize + 1);
    let t = Instant::now();
    for i in 0..EVENT_PUSHES {
        big.event("bench.tick", i);
    }
    let events_per_sec = EVENT_PUSHES as f64 / t.elapsed().as_secs_f64();
    assert_eq!(big.total_dropped(), 0, "oversized ring must not drop");

    // Saturation: a small ring wraps on almost every push; drop
    // accounting must stay exact.
    let small = FlightRecorder::with_capacity(SATURATION_CAPACITY);
    let t = Instant::now();
    for i in 0..EVENT_PUSHES {
        small.event("bench.tick", i);
    }
    let saturated_events_per_sec = EVENT_PUSHES as f64 / t.elapsed().as_secs_f64();
    assert_eq!(
        small.total_dropped(),
        EVENT_PUSHES - SATURATION_CAPACITY as u64,
        "drop accounting must be exact at capacity"
    );

    ObsBench {
        workload: format!(
            "irregular n=100 on {} (P={})",
            cluster.name, cluster.processors
        ),
        rounds,
        batch: LAMBDA,
        raw_ns_per_eval: raw * 1e9 / LAMBDA as f64,
        noop_overhead_pct: pct(noop),
        stats_overhead_pct: pct(st),
        flight_overhead_pct: pct(fl),
        events_per_sec,
        saturated_events_per_sec,
        drop_rate_at_capacity: small.total_dropped() as f64 / EVENT_PUSHES as f64,
    }
}
