//! `emts-stream` — streaming PTG scheduling throughput harness.
//!
//! Schedules an unbounded stream of DAGGEN PTGs ([`workloads::stream`])
//! through the list scheduler's fitness core without ever materializing a
//! corpus: each item is generated from `(seed, index)`, costed on the
//! Grelon cluster model, mapped, and discarded. Progress folds into an
//! order-independent [`StreamCheckpoint`] fingerprint, so an interrupted,
//! sharded, resumed run is checkable bit for bit against an uninterrupted
//! one — `scripts/ci.sh` does exactly that, and `scripts/bench_smoke.sh`
//! runs the full 100 000-item stream into `BENCH_throughput.json`.
//!
//! The reported throughput is *honest single-core end-to-end*: one thread,
//! and the clock covers generation + time-matrix construction + mapping
//! for every item of the current invocation. The separate mapper probe
//! isolates the fitness core itself (ns per evaluation and per heap pop on
//! the paper's hard case).
//!
//! ```text
//! emts-stream [--count N] [--seed S] [--shards M]
//!             [--checkpoint FILE] [--checkpoint-every N] [--stop-after N]
//!             [--out FILE] [--report FILE] [--no-probe] [--quiet]
//! ```
//!
//! `--report` writes a schema-versioned [`obs::RunReport`]: the run is
//! wrapped in a `stream` span with one `shard` child per shard processed,
//! and the checkpoint/resume life cycle surfaces as counters
//! (`stream.items`, `stream.resumed_items`, `stream.checkpoints_saved`,
//! `stream.shards_run`) — so a sharded, interrupted, resumed run leaves
//! the same audit trail `emts-sim` runs do.

use exec_model::{Amdahl, TimeMatrix};
use obs::{Recorder, StatsRecorder};
use platform::grelon;
use rand::{Rng, SeedableRng};
use sched::{Allocation, EvalScratch, ListScheduler};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use workloads::stream::{shard_len, PtgStream, StreamCheckpoint};
use workloads::{CostConfig, DaggenParams};

struct Args {
    count: u64,
    seed: u64,
    shards: u32,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    stop_after: Option<u64>,
    out: Option<PathBuf>,
    report: Option<PathBuf>,
    probe: bool,
    quiet: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            count: 100_000,
            seed: 2011,
            shards: 1,
            checkpoint: None,
            checkpoint_every: 4096,
            stop_after: None,
            out: None,
            report: None,
            probe: true,
            quiet: false,
        }
    }
}

const USAGE: &str = "usage: emts-stream [--count <items>] [--seed <u64>] [--shards <m>] \
     [--checkpoint <file>] [--checkpoint-every <items>] [--stop-after <items>] \
     [--out <file>] [--report <file>] [--no-probe] [--quiet]";

impl Args {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter().skip(1);
        fn num<T: std::str::FromStr>(v: Option<String>, flag: &str) -> Result<T, String> {
            let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
        }
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--count" => out.count = num(iter.next(), "--count")?,
                "--seed" => out.seed = num(iter.next(), "--seed")?,
                "--shards" => {
                    out.shards = num(iter.next(), "--shards")?;
                    if out.shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                }
                "--checkpoint" => {
                    out.checkpoint = Some(PathBuf::from(
                        iter.next().ok_or("--checkpoint needs a file")?,
                    ));
                }
                "--checkpoint-every" => {
                    out.checkpoint_every = num(iter.next(), "--checkpoint-every")?;
                    if out.checkpoint_every == 0 {
                        return Err("--checkpoint-every must be at least 1".into());
                    }
                }
                "--stop-after" => out.stop_after = Some(num(iter.next(), "--stop-after")?),
                "--out" => out.out = Some(PathBuf::from(iter.next().ok_or("--out needs a file")?)),
                "--report" => {
                    out.report = Some(PathBuf::from(iter.next().ok_or("--report needs a file")?));
                }
                "--no-probe" => out.probe = false,
                "--quiet" | "-q" => out.quiet = true,
                "--help" | "-h" => return Err(USAGE.into()),
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        Ok(out)
    }
}

/// Isolated fitness-core measurement on the paper's hard case (irregular
/// n=100 on Grelon): exact heap-pop count from one instrumented
/// evaluation, then best-of-5 timed batches of plain evaluations.
#[derive(Serialize)]
struct MapperProbe {
    workload: String,
    pops_per_eval: u64,
    ns_per_eval: f64,
    mapper_ns_per_pop: f64,
}

fn mapper_probe(seed: u64) -> MapperProbe {
    let costs = CostConfig::default();
    let params = DaggenParams {
        n: 100,
        width: 0.5,
        regularity: 0.2,
        density: 0.2,
        jump: 2,
    };
    let cluster = grelon();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let g = workloads::daggen::random_ptg(&params, &costs, &mut rng);
    let matrix = TimeMatrix::compute(&g, &Amdahl, cluster.speed_flops(), cluster.processors);
    let widths: Vec<u32> = (0..g.task_count())
        .map(|_| rng.gen_range(1..=cluster.processors))
        .collect();
    let alloc = Allocation::from_vec(widths);
    let mut scratch = EvalScratch::with_capacity(g.task_count(), cluster.processors);

    // Pop count: ready-queue pops (one per task) plus availability-run
    // heap pops, from one recorded evaluation.
    let stats = StatsRecorder::new();
    let _ = ListScheduler.evaluate_bounded_obs(
        &g,
        &matrix,
        &alloc,
        f64::INFINITY,
        &mut scratch,
        &stats,
    );
    let pops = stats.counter("sched.tasks_placed") + stats.counter("sched.group_pops");

    // Timing: five batches of 200 plain evaluations, keep the fastest.
    const BATCH: u32 = 200;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            let m = ListScheduler
                .makespan_bounded_with(&g, &matrix, &alloc, f64::INFINITY, &mut scratch)
                .expect("infinite cutoff never rejects");
            std::hint::black_box(m);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / BATCH as f64);
    }
    MapperProbe {
        workload: format!(
            "irregular n=100 on {} (P={})",
            cluster.name, cluster.processors
        ),
        pops_per_eval: pops,
        ns_per_eval: best,
        mapper_ns_per_pop: best / pops as f64,
    }
}

/// Result JSON written by `--out` (and printed unless `--quiet`).
#[derive(Serialize)]
struct StreamResult {
    seed: u64,
    count: u64,
    shards: u32,
    platform: String,
    model: String,
    completed: bool,
    items_done: u64,
    items_this_run: u64,
    tasks_scheduled: u64,
    mean_makespan: f64,
    fingerprint: String,
    elapsed_seconds: f64,
    throughput_ptgs_per_sec: f64,
    /// `null` unless the run completed with probing enabled (the vendored
    /// serde derive has no field-skipping, so an absent probe serializes
    /// as JSON null).
    mapper_probe: Option<MapperProbe>,
}

fn load_checkpoint(args: &Args) -> Result<StreamCheckpoint, String> {
    if let Some(path) = &args.checkpoint {
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let cp: StreamCheckpoint = serde_json::from_str(&text)
                .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
            if !cp.matches(args.seed, args.count, args.shards) {
                return Err(format!(
                    "checkpoint {} belongs to a different run \
                     (seed {} count {} shards {}, asked for seed {} count {} shards {})",
                    path.display(),
                    cp.seed,
                    cp.total,
                    cp.shard_count,
                    args.seed,
                    args.count,
                    args.shards
                ));
            }
            return Ok(cp);
        }
    }
    Ok(StreamCheckpoint::new(args.seed, args.count, args.shards))
}

fn save_checkpoint(args: &Args, cp: &StreamCheckpoint, rec: &StatsRecorder) {
    if let Some(path) = &args.checkpoint {
        let json = serde_json::to_string_pretty(cp).expect("checkpoints serialize infallibly");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write checkpoint {}: {e}", path.display());
            std::process::exit(1);
        }
        rec.add("stream.checkpoints_saved", 1);
    }
}

fn main() {
    let args = match Args::parse(std::env::args()) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut cp = match load_checkpoint(&args) {
        Ok(cp) => cp,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let costs = CostConfig::default();
    let cluster = grelon();
    let scheduler = ListScheduler;
    let mut scratch = EvalScratch::with_capacity(128, cluster.processors);
    let budget = args.stop_after.unwrap_or(u64::MAX);
    let mut processed_this_run = 0u64;
    let mut since_checkpoint = 0u64;
    let mut stopped_early = false;
    let rec = StatsRecorder::new();
    // Items already folded by a previous invocation of this checkpointed
    // run: the report distinguishes resumed progress from fresh work.
    rec.add("stream.resumed_items", cp.items_done());
    let stream_span = rec.span("stream");
    let t0 = Instant::now();

    'shards: for shard in 0..args.shards {
        let done = cp.done[shard as usize];
        if done >= shard_len(args.count, shard, args.shards) {
            continue;
        }
        let _shard_span = rec.span("shard");
        rec.add("stream.shards_run", 1);
        let mut stream = PtgStream::shard(args.seed, args.count, shard, args.shards, costs.clone());
        stream.skip_items(done);
        for mut item in stream {
            let matrix = TimeMatrix::compute(
                &item.ptg,
                &Amdahl,
                cluster.speed_flops(),
                cluster.processors,
            );
            let widths: Vec<u32> = (0..item.ptg.task_count())
                .map(|_| item.rng.gen_range(1..=cluster.processors))
                .collect();
            let alloc = Allocation::from_vec(widths);
            let makespan = scheduler
                .makespan_bounded_with(&item.ptg, &matrix, &alloc, f64::INFINITY, &mut scratch)
                .expect("infinite cutoff never rejects");
            cp.fold(shard, item.index, item.ptg.task_count() as u64, makespan);
            rec.add("stream.items", 1);
            rec.add("stream.tasks", item.ptg.task_count() as u64);
            processed_this_run += 1;
            since_checkpoint += 1;
            if since_checkpoint >= args.checkpoint_every {
                save_checkpoint(&args, &cp, &rec);
                since_checkpoint = 0;
            }
            if processed_this_run >= budget {
                stopped_early = !cp.is_complete();
                break 'shards;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(stream_span);
    save_checkpoint(&args, &cp, &rec);

    let completed = cp.is_complete();
    let result = StreamResult {
        seed: args.seed,
        count: args.count,
        shards: args.shards,
        platform: format!("{} (P={})", cluster.name, cluster.processors),
        model: "amdahl".into(),
        completed,
        items_done: cp.items_done(),
        items_this_run: processed_this_run,
        tasks_scheduled: cp.tasks,
        mean_makespan: if cp.items_done() > 0 {
            cp.result_sum / cp.items_done() as f64
        } else {
            0.0
        },
        fingerprint: format!("{:016x}", cp.fingerprint),
        elapsed_seconds: elapsed,
        throughput_ptgs_per_sec: if elapsed > 0.0 {
            processed_this_run as f64 / elapsed
        } else {
            0.0
        },
        mapper_probe: (args.probe && completed).then(|| mapper_probe(args.seed)),
    };

    if let Some(path) = &args.report {
        rec.gauge(
            "stream.throughput_ptgs_per_sec",
            result.throughput_ptgs_per_sec,
        );
        rec.gauge("stream.mean_makespan", result.mean_makespan);
        let mut report = rec.report("emts-stream");
        report.meta.insert("seed".into(), args.seed.to_string());
        report.meta.insert("count".into(), args.count.to_string());
        report.meta.insert("shards".into(), args.shards.to_string());
        report
            .meta
            .insert("completed".into(), completed.to_string());
        report
            .meta
            .insert("fingerprint".into(), result.fingerprint.clone());
        if let Err(e) = report.save(path) {
            eprintln!("cannot write report {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    let json = serde_json::to_string_pretty(&result).expect("results serialize infallibly");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if !args.quiet {
        println!("{json}");
        if stopped_early {
            println!(
                "stopped after {processed_this_run} items ({} of {} done); \
                 rerun with the same --checkpoint to resume",
                cp.items_done(),
                args.count
            );
        }
    }
}
