//! The relative-makespan experiment behind Figures 4 and 5.
//!
//! For every PTG class panel (FFT, Strassen, layered n=100, irregular
//! n=100), both platforms (Chti, Grelon) and both baselines (MCPA, HCPA),
//! compute the per-instance relative makespan `T_baseline / T_EMTS` and
//! aggregate it as mean with 95 % confidence interval — exactly the bars
//! the paper plots. Values above 1.0 mean EMTS wins.

use emts::{Emts, EmtsConfig};
use exec_model::{ExecutionTimeModel, TimeMatrix};
use heuristics::{allocate_and_map, Hcpa, Mcpa};
use obs::{NoopRecorder, Recorder};
use platform::{chti, grelon, Cluster};
use serde::{Deserialize, Serialize};
use stats::summary::ratio_summary;
use stats::Summary;
use workloads::{Corpus, CorpusEntry, CostConfig, PtgClass};

/// Which EMTS preset a figure row uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmtsVariant {
    /// (5+25)-ES, 5 generations.
    Emts5,
    /// (10+100)-ES, 10 generations.
    Emts10,
}

impl EmtsVariant {
    /// The corresponding configuration.
    pub fn config(self) -> EmtsConfig {
        match self {
            EmtsVariant::Emts5 => EmtsConfig::emts5(),
            EmtsVariant::Emts10 => EmtsConfig::emts10(),
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            EmtsVariant::Emts5 => "EMTS5",
            EmtsVariant::Emts10 => "EMTS10",
        }
    }
}

/// One bar of a figure: a (class, platform, baseline) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PanelResult {
    /// PTG class label ("FFT", "Strassen", "layered", "irregular").
    pub class: String,
    /// Platform name ("Chti" or "Grelon").
    pub platform: String,
    /// Baseline heuristic ("MCPA" or "HCPA").
    pub baseline: String,
    /// EMTS variant label.
    pub emts: String,
    /// Mean relative makespan `T_baseline / T_EMTS` with 95 % CI.
    pub rel_makespan: Summary,
    /// Number of instances aggregated.
    pub instances: usize,
}

/// The four figure panels, in the paper's order. Random-PTG panels use the
/// n = 100 instances, like the paper's "layered n=100" / "irregular n=100".
fn panels(corpus: &Corpus) -> Vec<(&'static str, Vec<&CorpusEntry>)> {
    vec![
        ("FFT", corpus.by_class(PtgClass::Fft).collect()),
        ("Strassen", corpus.by_class(PtgClass::Strassen).collect()),
        (
            "layered",
            corpus.by_class_and_size(PtgClass::Layered, 100).collect(),
        ),
        (
            "irregular",
            corpus.by_class_and_size(PtgClass::Irregular, 100).collect(),
        ),
    ]
}

/// Runs the full grid for one execution-time model and EMTS variant.
///
/// `scale` shrinks the corpus (1.0 = paper size); `seed` drives both corpus
/// generation and the EA. Instance `i` of a panel uses EA seed
/// `seed ⊕ hash(instance name)` so runs are reproducible yet independent.
pub fn relative_makespan_grid<M: ExecutionTimeModel + ?Sized>(
    model: &M,
    variant: EmtsVariant,
    scale: f64,
    seed: u64,
) -> Vec<PanelResult> {
    relative_makespan_grid_obs(model, variant, scale, seed, &NoopRecorder)
}

/// [`relative_makespan_grid`] with telemetry: corpus generation and each
/// panel get phase spans, and every EMTS run feeds the recorder.
pub fn relative_makespan_grid_obs<M: ExecutionTimeModel + ?Sized, R: Recorder>(
    model: &M,
    variant: EmtsVariant,
    scale: f64,
    seed: u64,
    rec: &R,
) -> Vec<PanelResult> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let corpus = rec.time("corpus", || {
        Corpus::paper(scale, &CostConfig::default(), &mut rng)
    });
    relative_makespan_grid_on_obs(&corpus, model, variant, seed, rec)
}

/// [`relative_makespan_grid`] over an existing corpus — lets tests and
/// custom campaigns supply arbitrarily small instance sets.
pub fn relative_makespan_grid_on<M: ExecutionTimeModel + ?Sized>(
    corpus: &Corpus,
    model: &M,
    variant: EmtsVariant,
    seed: u64,
) -> Vec<PanelResult> {
    relative_makespan_grid_on_obs(corpus, model, variant, seed, &NoopRecorder)
}

/// [`relative_makespan_grid_on`] with telemetry.
pub fn relative_makespan_grid_on_obs<M: ExecutionTimeModel + ?Sized, R: Recorder>(
    corpus: &Corpus,
    model: &M,
    variant: EmtsVariant,
    seed: u64,
    rec: &R,
) -> Vec<PanelResult> {
    let _grid_span = rec.span("grid");
    let emts = Emts::new(variant.config());
    let platforms = [chti(), grelon()];
    let mut results = Vec::new();

    for (class, entries) in panels(corpus) {
        if entries.is_empty() {
            continue;
        }
        for cluster in &platforms {
            let mut mcpa_ms = Vec::with_capacity(entries.len());
            let mut hcpa_ms = Vec::with_capacity(entries.len());
            let mut emts_ms = Vec::with_capacity(entries.len());
            for entry in &entries {
                let (mcpa, hcpa, best) = run_instance(model, &emts, cluster, entry, seed, rec);
                mcpa_ms.push(mcpa);
                hcpa_ms.push(hcpa);
                emts_ms.push(best);
                if R::ENABLED {
                    rec.add("grid.instances", 1);
                }
            }
            for (baseline, series) in [("MCPA", &mcpa_ms), ("HCPA", &hcpa_ms)] {
                results.push(PanelResult {
                    class: class.to_string(),
                    platform: cluster.name.clone(),
                    baseline: baseline.to_string(),
                    emts: variant.label().to_string(),
                    rel_makespan: ratio_summary(series, &emts_ms),
                    instances: entries.len(),
                });
            }
        }
    }
    results
}

/// Runs one corpus instance: returns `(T_MCPA, T_HCPA, T_EMTS)`.
fn run_instance<M: ExecutionTimeModel + ?Sized, R: Recorder>(
    model: &M,
    emts: &Emts,
    cluster: &Cluster,
    entry: &CorpusEntry,
    seed: u64,
    rec: &R,
) -> (f64, f64, f64) {
    let matrix = TimeMatrix::compute(&entry.ptg, model, cluster.speed_flops(), cluster.processors);
    let mcpa = rec.time("baselines", || {
        allocate_and_map(&Mcpa, &entry.ptg, &matrix).1
    });
    let hcpa = rec.time("baselines", || {
        allocate_and_map(&Hcpa, &entry.ptg, &matrix).1
    });
    let ea_seed = seed ^ fxhash_str(&entry.name);
    let result = emts.run_recorded(&entry.ptg, &matrix, ea_seed, rec);
    (mcpa, hcpa, result.best_makespan)
}

/// Tiny deterministic string hash (FNV-1a) so instances get distinct but
/// reproducible EA seeds.
fn fxhash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{Amdahl, SyntheticModel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::corpus::CorpusEntry;
    use workloads::daggen::{random_ptg, DaggenParams};
    use workloads::fft::fft_ptg;
    use workloads::strassen::strassen_ptg;

    /// A minimal corpus covering all four panels: one FFT, one Strassen,
    /// one layered n=100, one irregular n=100 — keeps the debug-mode test
    /// runtime in seconds instead of minutes.
    fn tiny_corpus() -> Corpus {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let costs = CostConfig::default();
        let mk_random = |jump: usize, rng: &mut ChaCha8Rng| {
            random_ptg(
                &DaggenParams {
                    n: 100,
                    width: 0.5,
                    regularity: 0.8,
                    density: 0.2,
                    jump,
                },
                &costs,
                rng,
            )
        };
        let entries = vec![
            CorpusEntry {
                ptg: fft_ptg(4, &costs, &mut rng),
                class: PtgClass::Fft,
                n: 15,
                name: "fft_tiny".into(),
            },
            CorpusEntry {
                ptg: strassen_ptg(&costs, &mut rng),
                class: PtgClass::Strassen,
                n: 23,
                name: "strassen_tiny".into(),
            },
            CorpusEntry {
                ptg: mk_random(0, &mut rng),
                class: PtgClass::Layered,
                n: 100,
                name: "layered_tiny".into(),
            },
            CorpusEntry {
                ptg: mk_random(2, &mut rng),
                class: PtgClass::Irregular,
                n: 100,
                name: "irregular_tiny".into(),
            },
        ];
        Corpus { entries }
    }

    #[test]
    fn grid_covers_all_panel_platform_baseline_cells() {
        let results = relative_makespan_grid_on(
            &tiny_corpus(),
            &SyntheticModel::default(),
            EmtsVariant::Emts5,
            3,
        );
        // 4 classes × 2 platforms × 2 baselines
        assert_eq!(results.len(), 16);
        for r in &results {
            assert!(r.instances > 0, "{}: empty panel", r.class);
            assert!(r.rel_makespan.mean.is_finite());
        }
    }

    #[test]
    fn emts_never_loses_on_average() {
        // Plus-selection seeds EMTS with the baselines, so every ratio is
        // ≥ 1 per instance — the mean must be too.
        let corpus = tiny_corpus();
        for model_results in [
            relative_makespan_grid_on(&corpus, &Amdahl, EmtsVariant::Emts5, 5),
            relative_makespan_grid_on(&corpus, &SyntheticModel::default(), EmtsVariant::Emts5, 5),
        ] {
            for r in model_results {
                assert!(
                    r.rel_makespan.mean >= 1.0 - 1e-9,
                    "{} {} vs {}: mean {}",
                    r.class,
                    r.platform,
                    r.baseline,
                    r.rel_makespan.mean
                );
            }
        }
    }

    #[test]
    fn results_are_reproducible() {
        let corpus = tiny_corpus();
        let a = relative_makespan_grid_on(&corpus, &Amdahl, EmtsVariant::Emts5, 9);
        let b = relative_makespan_grid_on(&corpus, &Amdahl, EmtsVariant::Emts5, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rel_makespan.mean, y.rel_makespan.mean);
        }
    }

    #[test]
    fn empty_panels_are_skipped_not_crashed() {
        let mut corpus = tiny_corpus();
        corpus.entries.retain(|e| e.class == PtgClass::Fft);
        let results = relative_makespan_grid_on(&corpus, &Amdahl, EmtsVariant::Emts5, 1);
        assert_eq!(results.len(), 4); // 1 class × 2 platforms × 2 baselines
    }

    #[test]
    fn string_hash_is_stable_and_spreads() {
        assert_eq!(fxhash_str("abc"), fxhash_str("abc"));
        assert_ne!(fxhash_str("abc"), fxhash_str("abd"));
    }
}
