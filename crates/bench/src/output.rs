//! Result output: terminal tables and JSON artifacts.

use crate::experiment::PanelResult;
use serde::Serialize;
use stats::TextTable;
use std::fs;
use std::path::Path;

/// Renders a figure grid as an aligned terminal table, one row per bar.
pub fn panel_table(results: &[PanelResult]) -> String {
    let mut table = TextTable::new([
        "class",
        "platform",
        "baseline",
        "emts",
        "rel. makespan (mean ± 95% CI)",
        "n",
    ]);
    for r in results {
        table.push([
            r.class.clone(),
            r.platform.clone(),
            r.baseline.clone(),
            r.emts.clone(),
            r.rel_makespan.format(3),
            r.instances.to_string(),
        ]);
    }
    table.render()
}

/// Writes any serializable result as pretty JSON under `dir/name`.
/// Creates the directory if needed and returns the path written.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<String> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let json = serde_json::to_string_pretty(value).expect("results serialize infallibly");
    fs::write(&path, json)?;
    Ok(path.display().to_string())
}

/// Writes a plain text artifact (e.g. an SVG or an ASCII chart).
pub fn write_text(dir: &Path, name: &str, content: &str) -> std::io::Result<String> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::Summary;

    fn sample_results() -> Vec<PanelResult> {
        vec![PanelResult {
            class: "FFT".into(),
            platform: "Chti".into(),
            baseline: "MCPA".into(),
            emts: "EMTS5".into(),
            rel_makespan: Summary::of(&[1.05, 1.10, 1.08]),
            instances: 3,
        }]
    }

    #[test]
    fn table_contains_all_cells() {
        let txt = panel_table(&sample_results());
        assert!(txt.contains("FFT"));
        assert!(txt.contains("Chti"));
        assert!(txt.contains("MCPA"));
        assert!(txt.contains('±'));
    }

    #[test]
    fn json_artifacts_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("emts_bench_test_{}", std::process::id()));
        let path = write_json(&dir, "panel.json", &sample_results()).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        let back: Vec<PanelResult> = serde_json::from_str(&content).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].class, "FFT");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn text_artifacts_are_written_verbatim() {
        let dir = std::env::temp_dir().join(format!("emts_bench_txt_{}", std::process::id()));
        let path = write_text(&dir, "chart.txt", "hello\n").unwrap();
        assert_eq!(fs::read_to_string(path).unwrap(), "hello\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
