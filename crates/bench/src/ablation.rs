//! Shared machinery for the ablation benches.
//!
//! DESIGN.md calls out the design choices the paper fixes without
//! measurement (mutation operator shape, heuristic seeding, plus-selection,
//! non-insertion mapping, `f_m`, Δ). Each ablation binary compares EMTS
//! configurations on a common set of irregular 100-task PTGs — the workload
//! where the paper sees the largest effects — and reports mean makespans
//! and pairwise ratios.

use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use obs::{NoopRecorder, Recorder};
use platform::grelon;
use ptg::Ptg;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use stats::summary::ratio_summary;
use stats::Summary;
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

/// The standard ablation workload: irregular 100-task PTGs.
pub fn ablation_workload(count: usize, seed: u64) -> Vec<Ptg> {
    let params = DaggenParams {
        n: 100,
        width: 0.5,
        regularity: 0.2,
        density: 0.2,
        jump: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_ptg(&params, &CostConfig::default(), &mut rng))
        .collect()
}

/// Per-configuration makespans over a workload (Grelon, Model 2).
pub fn run_config(cfg: &EmtsConfig, graphs: &[Ptg], seed: u64) -> Vec<f64> {
    run_config_obs(cfg, graphs, seed, &NoopRecorder)
}

/// [`run_config`] with telemetry: every EA run feeds the recorder.
pub fn run_config_obs<R: Recorder>(
    cfg: &EmtsConfig,
    graphs: &[Ptg],
    seed: u64,
    rec: &R,
) -> Vec<f64> {
    let cluster = grelon();
    let model = SyntheticModel::default();
    let emts = Emts::new(cfg.clone());
    graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
            emts.run_recorded(g, &matrix, seed + i as u64, rec)
                .best_makespan
        })
        .collect()
}

/// One row of an ablation report.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Makespan summary across the workload.
    pub makespan: Summary,
    /// Mean ratio of this configuration's makespan to the baseline's
    /// (> 1.0 means the baseline wins).
    pub vs_baseline: Summary,
}

/// Compares labeled configurations against the first one (the baseline).
pub fn compare(
    configs: &[(String, EmtsConfig)],
    workload_size: usize,
    seed: u64,
) -> Vec<AblationRow> {
    compare_obs(configs, workload_size, seed, &NoopRecorder)
}

/// [`compare`] with telemetry: each configuration gets its own phase span
/// under `ablation/`, so a report shows where the comparison spent time.
pub fn compare_obs<R: Recorder>(
    configs: &[(String, EmtsConfig)],
    workload_size: usize,
    seed: u64,
    rec: &R,
) -> Vec<AblationRow> {
    assert!(
        !configs.is_empty(),
        "need at least a baseline configuration"
    );
    let _span = rec.span("ablation");
    let graphs = rec.time("workload", || ablation_workload(workload_size, seed));
    let baseline = rec.time("baseline", || {
        run_config_obs(&configs[0].1, &graphs, seed, rec)
    });
    configs
        .iter()
        .map(|(label, cfg)| {
            let ms = rec.time("config", || run_config_obs(cfg, &graphs, seed, rec));
            AblationRow {
                label: label.clone(),
                makespan: Summary::of(&ms),
                vs_baseline: ratio_summary(&ms, &baseline),
            }
        })
        .collect()
}

/// Renders ablation rows as a terminal table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut table = stats::TextTable::new(["configuration", "makespan [s]", "× baseline"]);
    for r in rows {
        table.push([
            r.label.clone(),
            r.makespan.format(2),
            r.vs_baseline.format(3),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_ratio_is_exactly_one() {
        let configs = vec![
            ("base".to_string(), EmtsConfig::emts5()),
            (
                "no-seeds".to_string(),
                EmtsConfig {
                    heuristic_seeds: false,
                    ..EmtsConfig::emts5()
                },
            ),
        ];
        let rows = compare(&configs, 2, 1);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].vs_baseline.mean - 1.0).abs() < 1e-12);
        assert!(rows[1].makespan.mean.is_finite());
    }

    #[test]
    fn workload_is_reproducible() {
        let a = ablation_workload(2, 5);
        let b = ablation_workload(2, 5);
        assert_eq!(a[0].tasks(), b[0].tasks());
        assert_eq!(a[1].edge_count(), b[1].edge_count());
    }

    #[test]
    fn render_lists_every_row() {
        let configs = vec![("base".to_string(), EmtsConfig::emts5())];
        let rows = compare(&configs, 1, 2);
        let txt = render(&rows);
        assert!(txt.contains("base"));
        assert!(txt.contains("× baseline"));
    }
}
