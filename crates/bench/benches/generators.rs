//! Criterion bench: workload generator throughput (corpus construction is
//! the fixed cost of every experiment sweep).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::{
    daggen::random_ptg, fft::fft_ptg, strassen::strassen_ptg, CostConfig, DaggenParams,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let costs = CostConfig::default();
    for k in [4u32, 16] {
        group.bench_with_input(BenchmarkId::new("fft", k), &k, |b, &k| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| black_box(fft_ptg(k, &costs, &mut rng).task_count()))
        });
    }
    group.bench_function("strassen", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| black_box(strassen_ptg(&costs, &mut rng).task_count()))
    });
    for n in [20usize, 100] {
        let params = DaggenParams {
            n,
            width: 0.5,
            regularity: 0.2,
            density: 0.8,
            jump: 4,
        };
        group.bench_with_input(BenchmarkId::new("daggen", n), &params, |b, p| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| black_box(random_ptg(p, &costs, &mut rng).task_count()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
