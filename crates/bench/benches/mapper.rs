//! Criterion bench: the list-scheduling mapping function — the EA's fitness
//! evaluation and, per the paper, the dominant cost of EMTS.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::{chti, grelon};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, InsertionScheduler, ListScheduler, Mapper};
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn bench_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper");
    for (cluster, n) in [(chti(), 20usize), (grelon(), 100)] {
        let params = DaggenParams {
            n,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let matrix = TimeMatrix::compute(
            &g,
            &SyntheticModel::default(),
            cluster.speed_flops(),
            cluster.processors,
        );
        let alloc = Allocation::from_vec(
            (0..n)
                .map(|_| rng.gen_range(1..=cluster.processors))
                .collect(),
        );
        let label = format!("{}_n{}", cluster.name, n);
        group.bench_with_input(
            BenchmarkId::new("list_makespan_only", &label),
            &(&g, &matrix, &alloc),
            |b, (g, m, a)| b.iter(|| black_box(ListScheduler.makespan(g, m, a))),
        );
        group.bench_with_input(
            BenchmarkId::new("list_full_schedule", &label),
            &(&g, &matrix, &alloc),
            |b, (g, m, a)| b.iter(|| black_box(ListScheduler.map(g, m, a).makespan())),
        );
        group.bench_with_input(
            BenchmarkId::new("insertion", &label),
            &(&g, &matrix, &alloc),
            |b, (g, m, a)| b.iter(|| black_box(InsertionScheduler.map(g, m, a).makespan())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapper);
criterion_main!(benches);
