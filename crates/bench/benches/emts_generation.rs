//! Criterion bench: full EMTS runs — backs the paper's §V run-time
//! discussion (EMTS5 vs EMTS10 on small and large PTGs/platforms).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::{chti, grelon};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::{daggen::random_ptg, strassen::strassen_ptg, CostConfig, DaggenParams};

fn bench_emts(c: &mut Criterion) {
    let mut group = c.benchmark_group("emts");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let small = strassen_ptg(&costs, &mut rng);
    let large = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    for cluster in [chti(), grelon()] {
        for (wname, g) in [("strassen", &small), ("n100", &large)] {
            let matrix = TimeMatrix::compute(
                g,
                &SyntheticModel::default(),
                cluster.speed_flops(),
                cluster.processors,
            );
            for (cname, cfg) in [("EMTS5", EmtsConfig::emts5()), ("EMTS10", EmtsConfig::emts10())] {
                let emts = Emts::new(cfg);
                let label = format!("{}_{}_{}", cname, cluster.name, wname);
                group.bench_with_input(
                    BenchmarkId::from_parameter(&label),
                    &(g, &matrix),
                    |b, (g, m)| b.iter(|| black_box(emts.run(g, m, 42).best_makespan)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_emts);
criterion_main!(benches);
