//! Criterion bench: full EMTS runs — backs the paper's §V run-time
//! discussion (EMTS5 vs EMTS10 on small and large PTGs/platforms) — plus
//! the fitness-engine comparison (scoped threads vs persistent pool vs
//! memo-cache hits) behind `scripts/bench_smoke.sh`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emts::parallel::{evaluate_fitness_bounded, EvalPool, FitnessEngine};
use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use obs::{FlightRecorder, NoopRecorder, Recorder};
use platform::{chti, grelon};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::Allocation;
use workloads::{daggen::random_ptg, strassen::strassen_ptg, CostConfig, DaggenParams};

fn bench_emts(c: &mut Criterion) {
    let mut group = c.benchmark_group("emts");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let small = strassen_ptg(&costs, &mut rng);
    let large = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    for cluster in [chti(), grelon()] {
        for (wname, g) in [("strassen", &small), ("n100", &large)] {
            let matrix = TimeMatrix::compute(
                g,
                &SyntheticModel::default(),
                cluster.speed_flops(),
                cluster.processors,
            );
            for (cname, cfg) in [
                ("EMTS5", EmtsConfig::emts5()),
                ("EMTS10", EmtsConfig::emts10()),
            ] {
                let emts = Emts::new(cfg);
                let label = format!("{}_{}_{}", cname, cluster.name, wname);
                group.bench_with_input(
                    BenchmarkId::from_parameter(&label),
                    &(g, &matrix),
                    |b, (g, m)| b.iter(|| black_box(emts.run(g, m, 42).best_makespan)),
                );
            }
        }
    }
    group.finish();
}

/// The paper's headline hard case — irregular n=100 on Grelon (P=120) —
/// evaluated as one generation-sized batch (λ = 25) through each fitness
/// path. `prepr_baseline` reproduces the pre-engine implementation exactly
/// (a fresh thread scope per batch, fresh buffers and a per-processor
/// availability heap per evaluation); `scoped` is that same dispatch over
/// the new grouped-run mapper core; `pooled` is the persistent worker
/// pool; `memo_hit` is the steady-state cost once the cache knows the
/// batch.
fn bench_fitness_engine(c: &mut Criterion) {
    const LAMBDA: usize = 25;
    let mut group = c.benchmark_group("fitness");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = CostConfig::default();
    let g = random_ptg(
        &DaggenParams {
            n: 100,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let cluster = grelon();
    let matrix = TimeMatrix::compute(
        &g,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );
    let allocs: Vec<Allocation> = (0..LAMBDA)
        .map(|_| {
            Allocation::from_vec(
                (0..g.task_count())
                    .map(|_| rng.gen_range(1..=cluster.processors))
                    .collect(),
            )
        })
        .collect();

    group.bench_function("prepr_baseline_grelon_n100_batch25", |b| {
        b.iter(|| {
            // The pre-engine fitness path: one thread scope per batch, each
            // evaluation allocating its own buffers and walking one heap
            // entry per processor (ListScheduler::makespan_bounded_reference
            // preserves that core as the correctness oracle).
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(allocs.len());
            let mut results: Vec<Option<f64>> = vec![None; allocs.len()];
            let chunk = allocs.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (ac, rc) in allocs.chunks(chunk).zip(results.chunks_mut(chunk)) {
                    scope.spawn(|| {
                        for (a, r) in ac.iter().zip(rc.iter_mut()) {
                            *r = sched::ListScheduler.makespan_bounded_reference(
                                &g,
                                &matrix,
                                a,
                                f64::INFINITY,
                            );
                        }
                    });
                }
            });
            black_box(results)
        })
    });
    group.bench_function("scoped_grelon_n100_batch25", |b| {
        b.iter(|| {
            black_box(evaluate_fitness_bounded(
                &g,
                &matrix,
                &allocs,
                true,
                f64::INFINITY,
            ))
        })
    });
    EvalPool::with(&g, &matrix, true, |pool| {
        group.bench_function("pooled_grelon_n100_batch25", |b| {
            b.iter(|| black_box(pool.run_batch(allocs.clone(), f64::INFINITY)))
        });
    });
    EvalPool::with(&g, &matrix, false, |pool| {
        group.bench_function("serial_scratch_grelon_n100_batch25", |b| {
            b.iter(|| black_box(pool.run_batch(allocs.clone(), f64::INFINITY)))
        });
    });
    EvalPool::with(&g, &matrix, false, |pool| {
        let mut engine = FitnessEngine::new(pool);
        let _ = engine.evaluate(&allocs, f64::INFINITY);
        group.bench_function("memo_hit_grelon_n100_batch25", |b| {
            b.iter(|| black_box(engine.evaluate(&allocs, f64::INFINITY)))
        });
    });
    // The incremental path on the EA's dominant case: a batch of
    // single-gene mutants of one recorded parent, evaluated by prefix
    // replay + suffix simulation (sched-level, so the memo cache cannot
    // short-circuit repeated iterations).
    {
        use obs::NoopRecorder;
        use ptg::critpath::BlRepairer;
        let parent = allocs[0].clone();
        let mut scratch = sched::EvalScratch::new();
        let mut repairer = BlRepairer::new(&g);
        let record = sched::ListScheduler.evaluate_recorded(
            &g,
            &matrix,
            &parent,
            &mut scratch,
            &NoopRecorder,
        );
        // Mutants come from the paper's operator (Gaussian width change,
        // σ = 5, m = 1 gene) so the measured reuse matches what the EA
        // actually feeds the delta path; zero-width draws are skipped.
        let op = emts::MutationOperator::paper();
        let mutants: Vec<(Allocation, ptg::TaskId)> = std::iter::repeat_with(|| {
            let mut c = parent.clone();
            let changed = op.mutate(&mut c, 1, cluster.processors, &mut rng);
            changed.first().map(|&t| (c, t))
        })
        .flatten()
        .take(LAMBDA)
        .collect();
        group.bench_function("delta_single_gene_grelon_n100_batch25", |b| {
            b.iter(|| {
                for (c, t) in &mutants {
                    black_box(sched::ListScheduler.evaluate_delta(
                        &g,
                        &matrix,
                        &record,
                        c,
                        std::slice::from_ref(t),
                        f64::INFINITY,
                        &mut scratch,
                        &mut repairer,
                        &NoopRecorder,
                    ));
                }
            })
        });
        let mut reused = 0u64;
        let mut total = 0u64;
        for (c, t) in &mutants {
            let d = sched::ListScheduler.evaluate_delta(
                &g,
                &matrix,
                &record,
                c,
                std::slice::from_ref(t),
                f64::INFINITY,
                &mut scratch,
                &mut repairer,
                &NoopRecorder,
            );
            reused += u64::from(d.events_reused);
            total += u64::from(d.events_total);
        }
        println!(
            "DELTA_STATS reused_events={reused} total_events={total} reuse_rate={:.4}",
            reused as f64 / total as f64
        );
    }
    group.finish();

    print_two_tier_stats(&g, &matrix, &cluster, &mut rng);

    assert_noop_recorder_overhead(&g, &matrix, &allocs);
    assert_flight_recorder_overhead(&g, &matrix, &allocs);

    // Cache/delta behaviour of real EMTS10 runs, parsed by
    // scripts/bench_smoke.sh. The headline grelon/n=100 case mutates ≥ 3
    // genes per offspring on P=120, so exact duplicates are essentially
    // impossible there — the small chti/n=20 case is where the
    // within-generation dedupe and no-op skips actually fire (late
    // generations mutate a single gene that frequently clamps back).
    let r = Emts::new(EmtsConfig::emts10()).run(&g, &matrix, 42);
    print_cache_stats("grelon_n100", &r);
    let small_g = random_ptg(
        &DaggenParams {
            n: 20,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        },
        &costs,
        &mut rng,
    );
    let small_cluster = chti();
    let small_matrix = TimeMatrix::compute(
        &small_g,
        &SyntheticModel::default(),
        small_cluster.speed_flops(),
        small_cluster.processors,
    );
    let rs = Emts::new(EmtsConfig::emts10()).run(&small_g, &small_matrix, 42);
    assert!(
        rs.trace.cache_hits > 0,
        "dedupe/no-op skips must fire on the small EMTS10 run"
    );
    print_cache_stats("chti_n20", &rs);

    // Telemetry of a real run, written next to the BENCH_fitness.json
    // artifact by scripts/bench_smoke.sh.
    if let Ok(path) = std::env::var("EMTS_RUN_REPORT") {
        use serde::Serialize;
        let rec = obs::StatsRecorder::new();
        let r = Emts::new(EmtsConfig::emts10()).run_recorded(&g, &matrix, 42, &rec);
        let mut report = rec.report("bench_emts_generation");
        report
            .meta
            .insert("workload".into(), "irregular_n100".into());
        report.meta.insert("platform".into(), "Grelon".into());
        report.meta.insert("config".into(), "EMTS10".into());
        report.convergence = Some(r.trace.to_value());
        report
            .save(std::path::Path::new(&path))
            .expect("can write EMTS_RUN_REPORT");
        println!("RUN_REPORT path={path}");
    }
}

/// Two-tier fitness pipeline vs the pooled all-exact baseline on a
/// converged-shape EMTS10 generation: the best heuristic seed plus µ−1
/// single-gene perturbations as parents (tight fitness spread, like a late
/// population), λ = 100 full-strength offspring, and the EA's live
/// rejection/survival cutoff. One machine-parsable `TWO_TIER_STATS` line
/// for `scripts/bench_smoke.sh`.
///
/// Honest baseline note: against the *bounded* exact batch at the same
/// cutoff the pipeline measures at parity (the exact core's first-pop
/// reject test embeds the same bounds the surrogate rungs compute), so the
/// speedup reported here is rung screening *plus* cutoff-bounded rejection
/// over full evaluation — the cost a generation pays without the engine.
/// EXPERIMENTS.md records the ceiling analysis.
fn print_two_tier_stats(
    g: &ptg::Ptg,
    matrix: &TimeMatrix,
    cluster: &platform::Cluster,
    rng: &mut ChaCha8Rng,
) {
    const ROUNDS: usize = 9;
    let cfg = EmtsConfig {
        rejection: true,
        two_tier: true,
        ..EmtsConfig::emts10()
    };
    let op = emts::MutationOperator::paper();
    let seeds = emts::seeds::initial_population(&cfg, &op, g, matrix, rng);
    let elite = seeds
        .iter()
        .min_by(|a, b| a.fitness.total_cmp(&b.fitness))
        .expect("non-empty seed population");
    let parents: Vec<(Allocation, f64)> = (0..cfg.mu)
        .map(|k| {
            let mut a = elite.alloc.clone();
            if k > 0 {
                op.mutate(&mut a, 1, cluster.processors, rng);
            }
            let f = sched::Mapper::makespan(&sched::ListScheduler, g, matrix, &a);
            (a, f)
        })
        .collect();
    let best = parents.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let worst = parents.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let cutoff = (best * cfg.rejection_slack).min(worst);
    let m = (cfg.fm * g.task_count() as f64).round() as usize;
    let batch: Vec<Allocation> = (0..cfg.lambda)
        .map(|_| {
            let pidx = rng.gen_range(0..parents.len());
            let mut child = parents[pidx].0.clone();
            op.mutate(&mut child, m, cluster.processors, rng);
            child
        })
        .collect();

    let sur = sched::Surrogate::screening();
    let mut best_exact = f64::INFINITY;
    let mut best_tiered = f64::INFINITY;
    let mut screened = 0usize;
    EvalPool::with(g, matrix, true, |pool| {
        // Warm both paths; count screens once.
        black_box(pool.run_batch(batch.clone(), f64::INFINITY));
        let tiered = pool.run_batch_two_tier(batch.clone(), cutoff, &sur);
        screened = tiered
            .iter()
            .filter(|t| matches!(t, sched::TwoTierEval::Screened(_)))
            .count();
        for _ in 0..ROUNDS {
            let t = std::time::Instant::now();
            black_box(pool.run_batch(batch.clone(), f64::INFINITY));
            best_exact = best_exact.min(t.elapsed().as_secs_f64());
            let t = std::time::Instant::now();
            black_box(pool.run_batch_two_tier(batch.clone(), cutoff, &sur));
            best_tiered = best_tiered.min(t.elapsed().as_secs_f64());
        }
    });
    let exact_ns = best_exact * 1e9 / batch.len() as f64;
    let tiered_ns = best_tiered * 1e9 / batch.len() as f64;
    println!(
        "TWO_TIER_STATS all_exact_ns_per_eval={exact_ns:.1} two_tier_ns_per_eval={tiered_ns:.1} \
         surrogate_screen_rate={:.4} speedup_two_tier_vs_all_exact={:.2}",
        screened as f64 / batch.len() as f64,
        exact_ns / tiered_ns
    );
}

/// One machine-parsable line per real run for `scripts/bench_smoke.sh`.
fn print_cache_stats(workload: &str, r: &emts::EmtsResult) {
    println!(
        "CACHE_STATS workload={workload} hits={} misses={} rate={:.4} noop_skips={} \
         lb_pruned={} prefix_reuse_events={} pruned={}",
        r.trace.cache_hits,
        r.trace.cache_misses,
        r.trace.cache_hit_rate(),
        r.trace.noop_skips,
        r.trace.lb_pruned,
        r.trace.prefix_reuse_events,
        r.pruned,
    );
}

/// Proves the default [`obs::NoopRecorder`] erases the telemetry probes:
/// the instrumented serial engine path must cost about the same as a bare
/// mapper loop. Interleaved min-of-k timing suppresses one-off scheduler
/// noise, but this container shares its host — quiet-machine runs measure
/// ~0.6% overhead while noisy ones swing by several percent either way,
/// so the gate allows 5% before declaring the probes non-free.
fn assert_noop_recorder_overhead(g: &ptg::Ptg, matrix: &TimeMatrix, allocs: &[Allocation]) {
    const ROUNDS: usize = 25;
    let mut scratch = sched::EvalScratch::new();
    let mut raw_best = f64::INFINITY;
    let mut noop_best = f64::INFINITY;
    // `run_batch` consumes its batch, so both sides get a fresh identical
    // clone per round — the timed regions differ only in the code path.
    let mut batches: Vec<Vec<Allocation>> = (0..2 * ROUNDS + 1).map(|_| allocs.to_vec()).collect();
    EvalPool::with(g, matrix, false, |pool| {
        // Warm both paths before timing.
        for a in allocs {
            black_box(sched::ListScheduler.evaluate_bounded_with(
                g,
                matrix,
                a,
                f64::INFINITY,
                &mut scratch,
            ));
        }
        black_box(pool.run_batch(batches.pop().expect("one batch per side"), f64::INFINITY));
        while batches.len() >= 2 {
            let batch = batches.pop().expect("one batch per side");
            let t = std::time::Instant::now();
            for a in &batch {
                black_box(sched::ListScheduler.evaluate_bounded_with(
                    g,
                    matrix,
                    a,
                    f64::INFINITY,
                    &mut scratch,
                ));
            }
            raw_best = raw_best.min(t.elapsed().as_secs_f64());
            drop(batch);
            let batch = batches.pop().expect("one batch per side");
            let t = std::time::Instant::now();
            black_box(pool.run_batch(batch, f64::INFINITY));
            noop_best = noop_best.min(t.elapsed().as_secs_f64());
        }
    });
    let ratio = noop_best / raw_best;
    println!(
        "NOOP_OVERHEAD raw_ns={:.0} noop_ns={:.0} ratio={ratio:.4}",
        raw_best * 1e9,
        noop_best * 1e9
    );
    assert!(
        ratio <= 1.05,
        "no-op recorder path is {:.2}% slower than the bare mapper loop",
        (ratio - 1.0) * 100.0
    );
}

/// The live-tracing counterpart: with a [`obs::FlightRecorder`] attached,
/// the same mapper loop must stay within its ≤5% overhead budget.
/// Quiet-machine runs measure ~3% (one sampled heap-pop event plus the
/// span/latency flush per eval), and the same shared-host noise that the
/// no-op gate absorbs applies here, so the gate allows 12% — still well
/// under the 15% the pre-optimised per-event `Weak::upgrade` path cost.
fn assert_flight_recorder_overhead(g: &ptg::Ptg, matrix: &TimeMatrix, allocs: &[Allocation]) {
    const ROUNDS: usize = 25;
    fn pass<R: Recorder>(
        g: &ptg::Ptg,
        matrix: &TimeMatrix,
        allocs: &[Allocation],
        scratch: &mut sched::EvalScratch,
        rec: &R,
    ) -> f64 {
        let t = std::time::Instant::now();
        for a in allocs {
            black_box(sched::ListScheduler.evaluate_bounded_obs(
                g,
                matrix,
                a,
                f64::INFINITY,
                scratch,
                rec,
            ));
        }
        t.elapsed().as_secs_f64()
    }

    let mut scratch = sched::EvalScratch::new();
    // Large enough that the measurement never wraps the ring — overwrite
    // throughput is `emts-obsbench`'s saturation case, not this budget.
    let flight = FlightRecorder::with_capacity(1 << 20);
    let _ = pass(g, matrix, allocs, &mut scratch, &NoopRecorder);
    let _ = pass(g, matrix, allocs, &mut scratch, &flight);
    let mut noop_best = f64::INFINITY;
    let mut flight_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        noop_best = noop_best.min(pass(g, matrix, allocs, &mut scratch, &NoopRecorder));
        flight_best = flight_best.min(pass(g, matrix, allocs, &mut scratch, &flight));
    }
    let ratio = flight_best / noop_best;
    println!(
        "TRACE_OVERHEAD noop_ns={:.0} flight_ns={:.0} ratio={ratio:.4}",
        noop_best * 1e9,
        flight_best * 1e9
    );
    assert!(
        ratio <= 1.12,
        "flight recorder path is {:.2}% slower than the compiled-out loop",
        (ratio - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_emts, bench_fitness_engine);
criterion_main!(benches);
