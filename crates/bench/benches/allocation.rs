//! Criterion bench: the allocation procedures (CPA family and the
//! Δ-critical seed heuristic) — the O(V(V+E)P) startup cost of EMTS.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{Allocator, Cpa, DeltaCritical, Hcpa, Mcpa};
use platform::grelon;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    let cluster = grelon();
    for n in [20usize, 50, 100] {
        let params = DaggenParams {
            n,
            width: 0.5,
            regularity: 0.2,
            density: 0.2,
            jump: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let matrix = TimeMatrix::compute(
            &g,
            &SyntheticModel::default(),
            cluster.speed_flops(),
            cluster.processors,
        );
        for (name, alloc) in [
            ("CPA", &Cpa::default() as &dyn Allocator),
            ("HCPA", &Hcpa),
            ("MCPA", &Mcpa),
            ("DeltaCritical", &DeltaCritical::default()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &(&g, &matrix), |b, (g, m)| {
                b.iter(|| black_box(alloc.allocate(g, m)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
