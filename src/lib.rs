//! Umbrella crate for the EMTS reproduction workspace.
//!
//! This package exists to host the runnable `examples/` and the
//! cross-crate integration tests in `tests/`; the actual functionality
//! lives in the `crates/*` members, re-exported here for convenience so
//! downstream code can use one import surface:
//!
//! * [`ptg`] — parallel task graphs,
//! * [`exec_model`] — execution-time models (Amdahl, synthetic
//!   non-monotonic, Downey, tabulated),
//! * [`platform`] — homogeneous clusters (Chti, Grelon presets),
//! * [`sched`] — allocations, list-scheduling mapper, Gantt charts,
//! * [`heuristics`] — CPA / HCPA / MCPA / Δ-critical baselines,
//! * [`emts`] — the evolutionary scheduler (the paper's contribution),
//! * [`workloads`] — FFT / Strassen / DAGGEN generators and the corpus,
//! * [`sim`] — discrete-event replay and the end-to-end runner,
//! * [`stats`] — means, confidence intervals, histograms, tables.

pub use emts;
pub use exec_model;
pub use heuristics;
pub use platform;
pub use ptg;
pub use sched;
pub use sim;
pub use stats;
pub use workloads;
